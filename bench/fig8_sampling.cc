/**
 * @file
 * Figure 8 — sensitivity to the probabilistic-update sampling
 * probability.
 *
 * Left: traffic overhead (bytes per useful data byte) vs sampling
 * probability — proportional to p until other sources dominate.
 * Right: coverage vs sampling probability — decreases only
 * logarithmically as updates are dropped, because streams are either
 * long (a later address still gets indexed) or recur frequently (an
 * older occurrence's entry still points at valid history).
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<double> probabilities = {0.01, 0.03125, 0.0625,
                                               0.125, 0.25, 0.5, 1.0};

    std::vector<std::string> headers = {"sampling"};
    for (const auto &info : standardSuite())
        headers.push_back(info.label);

    Table traffic(headers);
    Table coverage(headers);

    for (double p : probabilities) {
        std::vector<std::string> t_row = {Table::pct(p, 1)};
        std::vector<std::string> c_row = {Table::pct(p, 1)};
        for (const auto &info : standardSuite()) {
            const Trace &trace = cachedTrace(info.name, records);
            StmsConfig config;
            config.samplingProbability = p;
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            t_row.push_back(Table::num(overheadPerBaseByte(out)));
            c_row.push_back(Table::pct(out.stmsCoverage, 0));
        }
        traffic.addRow(t_row);
        coverage.addRow(c_row);
    }

    std::printf("Figure 8 (left): traffic overhead (bytes/useful byte) "
                "vs sampling probability\n\n%s\n",
                traffic.toString().c_str());
    std::printf("Figure 8 (right): coverage vs sampling probability\n\n"
                "%s", coverage.toString().c_str());
    std::printf("\nShape check: traffic falls roughly linearly in p; "
                "coverage falls only\nlogarithmically (Sec. 5.5), so "
                "12.5%% is the sweet spot the paper picks.\n");
    return 0;
}
