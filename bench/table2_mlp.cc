/**
 * @file
 * Table 2 — memory-level parallelism of off-chip reads in the base
 * system (stride prefetcher only, no STMS).
 *
 * MLP is the time-weighted average number of outstanding off-chip
 * reads while at least one is outstanding. Paper values: Web 1.5,
 * OLTP 1.3, DSS 1.6, em3d 1.7, moldyn 1.0, ocean 1.2 — low MLP is
 * what makes lookup round-trips cheap relative to fragmentation
 * losses (Sec. 5.4).
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(384 * 1024);
    Table table({"group", "workload", "mlp", "paper-mlp", "per-core"});

    for (const auto &info : standardSuite()) {
        const Trace &trace = cachedTrace(info.name, records);
        RunOutput base = runTrace(trace, defaultSimConfig(),
                                  std::nullopt);
        std::string per_core;
        for (double mlp : base.sim.mlpPerCore)
            per_core += Table::num(mlp) + " ";
        table.addRow({info.group, info.label,
                      Table::num(base.sim.meanMlp),
                      Table::num(info.paperMlp, 1), per_core});
    }

    std::printf("Table 2: MLP of off-chip reads (base system)\n\n%s",
                table.toString().c_str());
    std::printf("\nShape check: moldyn is fully serial (1.0); "
                "commercial workloads sit in the\n1.2-1.8 band; no "
                "workload is deeply parallel (pointer chasing).\n");
    return 0;
}
