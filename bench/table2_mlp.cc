/**
 * @file
 * Back-compat stub: this bench is now the "table2" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment table2 [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("table2", argc, argv);
}
