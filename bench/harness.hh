/**
 * @file
 * Shared bench-harness helpers.
 *
 * Every figure/table bench follows the same recipe: synthesize the
 * workload trace once, run the base system (stride prefetcher only)
 * and one or more STMS/idealized-TMS configurations on it, and report
 * coverage in excess of the stride prefetcher (Sec. 5.1), traffic
 * overhead per useful data byte (Fig. 7), and speedup versus the base
 * system's aggregate user IPC.
 */

#ifndef STMS_BENCH_HARNESS_HH
#define STMS_BENCH_HARNESS_HH

#include <optional>
#include <string>

#include "core/stms.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

namespace stms::bench
{

/** Everything one simulation run yields for reporting. */
struct RunOutput
{
    SimResult sim;
    PrefetcherStats stride;
    PrefetcherStats stms;       ///< Zeroed when no STMS was attached.
    StmsStats stmsInternal;     ///< Copy of STMS-internal stats.
    std::uint64_t stmsMetaBytes = 0;

    /** STMS coverage in excess of the stride prefetcher. */
    double stmsCoverage = 0.0;
    /** Fully covered fraction only (Fig. 9 split). */
    double stmsFullCoverage = 0.0;
    /** Partially covered fraction only. */
    double stmsPartialCoverage = 0.0;
};

/** Table-1 system configuration. @p functional zeroes memory timing
 *  for trace-based coverage sweeps (Sec. 5.1 methodology). */
SimConfig defaultSimConfig(bool functional = false);

/** Generate the trace for a named workload (cached per process). */
const Trace &cachedTrace(const std::string &workload,
                         std::uint64_t records_per_core);

/**
 * Run one configuration on a trace.
 * @param stms_config attach an STMS prefetcher when present.
 * @param warmup_fraction fraction of records before the stats reset.
 */
RunOutput runTrace(const Trace &trace, const SimConfig &sim_config,
                   const std::optional<StmsConfig> &stms_config,
                   double warmup_fraction = 0.25);

/** Relative speedup of @p opt over @p base (0.10 = +10%). */
double speedup(const SimResult &base, const SimResult &opt);

/**
 * Overhead bytes per base-system data byte, the paper's Fig. 7/8
 * normalization: useful traffic counts demand fetches, writebacks,
 * and consumed prefetches (data the base system would move anyway);
 * overhead counts meta-data traffic and erroneous prefetches.
 */
double overheadPerBaseByte(const RunOutput &out);

/** Records-per-core for benches, overridable via STMS_BENCH_RECORDS. */
std::uint64_t benchRecords(std::uint64_t fallback);

} // namespace stms::bench

#endif // STMS_BENCH_HARNESS_HH
