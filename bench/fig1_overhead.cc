/**
 * @file
 * Back-compat stub: this bench is now the "fig1-overhead" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment fig1-overhead [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("fig1-overhead", argc, argv);
}
