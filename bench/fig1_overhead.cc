/**
 * @file
 * Figure 1 (right) — memory traffic overheads of prior off-chip
 * meta-data designs (EBCP, ULMT, TSE), re-measured mechanically in
 * our simulator rather than copied from their papers.
 *
 * EBCP: fixed-depth single table, epoch-gated lookups, RMW updates.
 * ULMT: fixed-depth single table, lookup + RMW update on every miss.
 * TSE-like: split-table streaming with always-on (100%) index update
 * and no bucket buffer — the un-sampled traffic structure STMS fixes.
 *
 * Paper shape: overhead traffic around 3x the baseline read traffic,
 * dominated by meta-data updates and lookups.
 */

#include <cstdio>

#include "harness.hh"
#include "prefetch/correlation_table.hh"
#include "prefetch/stride.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

namespace
{

struct Breakdown
{
    double lookup = 0.0;
    double update = 0.0;
    double erroneous = 0.0;

    double total() const { return lookup + update + erroneous; }
};

/** Overhead per baseline read byte, from the traffic counters. */
Breakdown
breakdownOf(const SimResult &result)
{
    const double reads = static_cast<double>(
        result.traffic.bytesFor(TrafficClass::DemandRead));
    Breakdown b;
    if (reads <= 0)
        return b;
    b.lookup = static_cast<double>(
                   result.traffic.bytesFor(TrafficClass::MetaLookup)) /
               reads;
    b.update =
        static_cast<double>(
            result.traffic.bytesFor(TrafficClass::MetaUpdate) +
            result.traffic.bytesFor(TrafficClass::MetaRecord)) /
        reads;
    // Erroneous = prefetched bytes never consumed.
    double issued_bytes = 0.0;
    for (const auto &pf : result.prefetchers)
        issued_bytes += static_cast<double>(pf.erroneous) * kBlockBytes;
    b.erroneous = issued_bytes / reads;
    return b;
}

SimResult
runCorrelation(const Trace &trace, bool epoch_mode)
{
    SimConfig config = defaultSimConfig(true);
    config.warmupRecords = trace.totalRecords() / 4;
    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);
    CorrelationConfig cc;
    cc.offchipMeta = true;
    cc.epochMode = epoch_mode;
    CorrelationPrefetcher corr(cc);
    system.addPrefetcher(&corr);
    return system.run();
}

} // namespace

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<std::string> commercial = {
        "web-apache", "web-zeus", "oltp-db2", "oltp-oracle"};

    Breakdown ebcp, ulmt, tse;
    for (const auto &name : commercial) {
        const Trace &trace = cachedTrace(name, records);

        SimResult r_ebcp = runCorrelation(trace, /*epoch=*/true);
        SimResult r_ulmt = runCorrelation(trace, /*epoch=*/false);

        // TSE-like: STMS machinery, 100% updates, no bucket buffer.
        StmsConfig tse_config;
        tse_config.samplingProbability = 1.0;
        tse_config.bucketBufferBuckets = 1;
        RunOutput r_tse =
            runTrace(trace, defaultSimConfig(true), tse_config);

        auto add = [](Breakdown &acc, const Breakdown &b) {
            acc.lookup += b.lookup;
            acc.update += b.update;
            acc.erroneous += b.erroneous;
        };
        add(ebcp, breakdownOf(r_ebcp));
        add(ulmt, breakdownOf(r_ulmt));
        add(tse, breakdownOf(r_tse.sim));
    }
    const double n = static_cast<double>(commercial.size());

    Table table({"design", "lookup", "update", "erroneous", "total"});
    auto row = [&](const char *name, Breakdown b) {
        table.addRow({name, Table::num(b.lookup / n),
                      Table::num(b.update / n),
                      Table::num(b.erroneous / n),
                      Table::num(b.total() / n)});
    };
    row("EBCP-like (epoch, fixed depth)", ebcp);
    row("ULMT-like (per-miss, fixed depth)", ulmt);
    row("TSE-like (split table, unsampled)", tse);

    std::printf("Figure 1 (right): overhead accesses per baseline read "
                "(commercial mean)\n\n%s", table.toString().c_str());
    std::printf("\nShape check: prior designs cost on the order of the "
                "baseline read traffic\nagain (or more), dominated by "
                "meta-data updates/lookups (Sec. 3).\n");
    return 0;
}
