/**
 * @file
 * Ablation — history-buffer organization and stream-slot count.
 *
 * Per-core vs shared history: the paper keeps one history buffer per
 * core because "when accesses from multiple cores are interleaved,
 * repetitive sequences are obscured" (Sec. 4.2). The shared index
 * table is kept in both configurations.
 *
 * Stream slots per core: the engine's ability to track several
 * concurrent streams (TSE-style) vs a single stream.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<std::string> workloads = {
        "web-apache", "oltp-db2", "sci-em3d"};

    Table history({"workload", "history", "coverage", "accuracy"});
    for (const auto &name : workloads) {
        const Trace &trace = cachedTrace(name, records);
        for (bool shared : {false, true}) {
            StmsConfig config = makeIdealTmsConfig();
            config.sharedHistory = shared;
            // Shared mode needs a bounded HB to be meaningful; use the
            // same aggregate capacity in both arms.
            config.historyEntriesPerCore =
                shared ? 4ULL << 20 : 1ULL << 20;
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            history.addRow({name, shared ? "shared" : "per-core",
                            Table::pct(out.stmsCoverage),
                            Table::pct(out.stms.accuracy())});
        }
    }
    std::printf("Ablation: per-core vs shared history buffer "
                "(Sec. 4.2)\n\n%s\n", history.toString().c_str());

    Table slots({"workload", "slots/core", "coverage", "accuracy"});
    for (const auto &name : workloads) {
        const Trace &trace = cachedTrace(name, records);
        for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
            StmsConfig config = makeIdealTmsConfig();
            config.streamsPerCore = n;
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            slots.addRow({name, std::to_string(n),
                          Table::pct(out.stmsCoverage),
                          Table::pct(out.stms.accuracy())});
        }
    }
    std::printf("Ablation: stream slots per core engine\n\n%s",
                slots.toString().c_str());
    std::printf("\nShape check: interleaving cores into one shared "
                "history obscures recurrence\n(coverage drops); a few "
                "stream slots per core beat a single slot.\n");
    return 0;
}
