/**
 * @file
 * Back-compat stub: this bench is now the "ablate-sharing" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment ablate-sharing [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("ablate-sharing", argc, argv);
}
