/**
 * @file
 * Figure 9 — the headline result: practical STMS with off-chip
 * meta-data vs idealized on-chip lookup.
 *
 * Left: coverage of idealized TMS vs off-chip STMS (12.5% sampling),
 * with STMS coverage split into fully- and partially-covered misses.
 * Right: speedup of both over the stride-only base system.
 *
 * Paper shape: STMS achieves ~90% of the idealized design's coverage
 * and performance while keeping all predictor meta-data in main
 * memory.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(384 * 1024);
    Table table({"group", "workload", "ideal-cov", "stms-cov",
                 "stms-full", "stms-partial", "ideal-speedup",
                 "stms-speedup", "stms/ideal"});

    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (const auto &info : standardSuite()) {
        const Trace &trace = cachedTrace(info.name, records);
        const SimConfig sim = defaultSimConfig();

        RunOutput base = runTrace(trace, sim, std::nullopt);
        RunOutput ideal = runTrace(trace, sim, makeIdealTmsConfig());
        StmsConfig practical;  // Defaults: off-chip, 12.5% sampling.
        RunOutput stms = runTrace(trace, sim, practical);

        const double ideal_speedup = speedup(base.sim, ideal.sim);
        const double stms_speedup = speedup(base.sim, stms.sim);
        double ratio = 0.0;
        if (ideal_speedup > 0.005) {
            ratio = stms_speedup / ideal_speedup;
            ratio_sum += ratio;
            ++ratio_count;
        }

        table.addRow({info.group, info.label,
                      Table::pct(ideal.stmsCoverage),
                      Table::pct(stms.stmsCoverage),
                      Table::pct(stms.stmsFullCoverage),
                      Table::pct(stms.stmsPartialCoverage),
                      Table::pct(ideal_speedup),
                      Table::pct(stms_speedup),
                      ideal_speedup > 0.005 ? Table::pct(ratio, 0)
                                            : "-"});
    }

    std::printf("Figure 9: idealized TMS vs practical STMS "
                "(off-chip meta-data, 12.5%% sampling)\n\n%s",
                table.toString().c_str());
    if (ratio_count > 0) {
        std::printf("\nMean STMS/ideal speedup ratio: %.0f%%  "
                    "(paper: ~90%%)\n",
                    100.0 * ratio_sum / ratio_count);
    }
    return 0;
}
