/**
 * @file
 * Figure 4 — Prefetching potential of idealized temporal memory
 * streaming.
 *
 * Left graph: prefetch coverage (fraction of off-chip read misses
 * eliminated, in excess of the stride prefetcher) of an idealized
 * prefetcher with magic on-chip meta-data. Right graph: speedup over
 * the stride-only base system.
 *
 * Paper shape: Web/OLTP 40-60% coverage, Sci up to 99%, DSS ~20%;
 * speedups 5-18% for OLTP/Web and up to ~80% for scientific codes.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(384 * 1024);
    Table table({"group", "workload", "coverage", "speedup",
                 "base-ipc", "ideal-ipc", "mlp"});

    for (const auto &info : standardSuite()) {
        const Trace &trace = cachedTrace(info.name, records);
        const SimConfig sim = defaultSimConfig();

        RunOutput base = runTrace(trace, sim, std::nullopt);
        RunOutput ideal = runTrace(trace, sim, makeIdealTmsConfig());

        table.addRow({info.group, info.label,
                      Table::pct(ideal.stmsCoverage),
                      Table::pct(speedup(base.sim, ideal.sim)),
                      Table::num(base.sim.ipc),
                      Table::num(ideal.sim.ipc),
                      Table::num(base.sim.meanMlp)});
    }

    std::printf("Figure 4: potential of idealized temporal streaming\n");
    std::printf("(coverage in excess of stride; speedup vs stride-only "
                "base)\n\n%s", table.toString().c_str());
    return 0;
}
