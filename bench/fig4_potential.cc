/**
 * @file
 * Back-compat stub: this bench is now the "fig4" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment fig4 [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("fig4", argc, argv);
}
