/**
 * @file
 * google-benchmark micro-benchmarks of the data-plane structures:
 * index-table lookup/update, history-buffer append, prefetch-buffer
 * operations, cache accesses, and the event-queue kernel. These bound
 * the simulator's own throughput, not the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/addr_map.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "core/history_buffer.hh"
#include "core/index_table.hh"
#include "core/sharded_index_table.hh"
#include "prefetch/prefetch_buffer.hh"
#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/run.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

using namespace stms;

namespace
{

void
BM_IndexTableUpdate(benchmark::State &state)
{
    IndexTable table(16ULL << 20);
    Rng rng(1);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        const Addr block = blockAddress(rng.below(1ULL << 24));
        table.update(block, HistoryPointer{0, seq++});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexTableUpdate);

void
BM_IndexTableLookup(benchmark::State &state)
{
    IndexTable table(16ULL << 20);
    Rng rng(2);
    for (std::uint64_t i = 0; i < 1'000'000; ++i) {
        table.update(blockAddress(rng.below(1ULL << 24)),
                     HistoryPointer{0, i});
    }
    Rng probe(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(blockAddress(probe.below(1ULL << 24))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexTableLookup);

/**
 * Scalar vs batched probe throughput on a table big enough that every
 * random probe misses the host LLC: Arg(0)=0 probes one at a time
 * through lookup(), Arg(0)=1 routes the same addresses through
 * lookupBatch(), whose one-batch-ahead __builtin_prefetch overlaps
 * each probe's bucket fetch with the previous probes' work. The two
 * variants are bit-identical in results and stats (asserted in
 * tests/core/batched_probe_test.cc); this bench measures the only
 * difference that is allowed to exist — host-side throughput.
 */
void
BM_BatchedIndexProbe(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;
    IndexTable table(64ULL << 20);
    Rng rng(11);
    for (std::uint64_t i = 0; i < 4'000'000; ++i) {
        table.update(blockAddress(rng.below(1ULL << 24)),
                     HistoryPointer{0, i});
    }
    constexpr std::size_t kBatch = 256;
    std::vector<Addr> blocks(kBatch);
    std::vector<std::optional<HistoryPointer>> results(kBatch);
    Rng probe(12);
    for (auto _ : state) {
        for (auto &block : blocks)
            block = blockAddress(probe.below(1ULL << 24));
        if (batched) {
            table.lookupBatch(blocks, results);
        } else {
            for (std::size_t i = 0; i < kBatch; ++i)
                results[i] = table.lookup(blocks[i]);
        }
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_BatchedIndexProbe)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"batched"});

/**
 * Concurrent mixed lookup/update traffic against the sharded table:
 * Arg(0) is the shard count, ->Threads() the hammering threads. With
 * one shard every thread serializes on a single mutex — the
 * single-map bottleneck the driver's index_contention experiment
 * quantifies end to end; more shards stripe the same traffic across
 * independent locks.
 */
void
BM_ShardedIndexMixed(benchmark::State &state)
{
    static ShardedIndexTable *table = nullptr;
    if (state.thread_index() == 0) {
        table = new ShardedIndexTable(
            16ULL << 20, 12,
            static_cast<std::uint32_t>(state.range(0)));
        Rng warm(7);
        for (std::uint64_t i = 0; i < 1'000'000; ++i) {
            table->update(blockAddress(warm.below(1ULL << 24)),
                          HistoryPointer{0, i});
        }
    }
    Rng rng(100 + static_cast<std::uint64_t>(state.thread_index()));
    std::uint64_t seq = 0;
    for (auto _ : state) {
        const Addr block = blockAddress(rng.below(1ULL << 24));
        if (seq % 4 == 0)
            table->update(block, HistoryPointer{0, seq});
        else
            benchmark::DoNotOptimize(table->lookup(block));
        ++seq;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0) {
        delete table;
        table = nullptr;
    }
}
BENCHMARK(BM_ShardedIndexMixed)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->ThreadRange(1, 4)
    ->UseRealTime();

void
BM_HistoryBufferAppend(benchmark::State &state)
{
    HistoryBuffer buffer(1ULL << 20);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            buffer.append(blockAddress(rng.below(1ULL << 24))));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryBufferAppend);

void
BM_PrefetchBuffer(benchmark::State &state)
{
    PrefetchBuffer buffer(32);
    Rng rng(5);
    for (auto _ : state) {
        const Addr block = blockAddress(rng.below(1024));
        if (!buffer.consume(block))
            buffer.insert(block);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetchBuffer);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{"bench-l2", 8 * 1024 * 1024, 16,
                            ReplPolicy::Lru, 7});
    Rng rng(6);
    for (auto _ : state) {
        const Addr block = blockAddress(rng.below(1ULL << 18));
        if (!cache.access(block, false))
            cache.fill(block);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

/**
 * The cache-probe fast path: repeated hits on a hot set, i.e. the
 * per-record L1 probe every simulated access pays (inlined
 * access()/findLine()/LRU touch). A regression here is a regression
 * on every record of every sweep, visible without running one.
 */
void
BM_CacheProbeHit(benchmark::State &state)
{
    Cache cache(CacheConfig{"bench-l1", 64 * 1024, 2,
                            ReplPolicy::Lru, 7});
    // Resident hot set, as the L1 sees between misses.
    constexpr std::uint64_t kHotBlocks = 256;
    for (std::uint64_t b = 0; b < kHotBlocks; ++b)
        cache.fill(blockAddress(b));
    Rng rng(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(blockAddress(rng.below(kHotBlocks)), false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeHit);

/**
 * The batched record-dispatch loop, end to end: one functional-mode
 * runTrace() over a pregenerated trace — TraceCore walking cursor
 * chunks with a plain pointer, the warmup-barrier counter, the L1
 * fast path, and the event queue behind it. Items = trace records,
 * so items/sec here is the same records/sec unit perf_suite tracks;
 * this is the bench that catches inner-loop regressions without a
 * full sweep.
 */
void
BM_RecordDispatch(benchmark::State &state)
{
    WorkloadSpec spec = makeWorkload("oltp-db2", 16384);
    const Trace trace = WorkloadGenerator(spec).generate();
    RunConfig config;
    config.sim = defaultSimConfig(true);
    for (auto _ : state) {
        RunOutput out = runTrace(trace, config);
        benchmark::DoNotOptimize(out.sim.mem.accesses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.totalRecords()));
}
BENCHMARK(BM_RecordDispatch);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue queue;
        std::uint64_t count = 0;
        for (int i = 0; i < 1000; ++i) {
            queue.schedule(static_cast<Cycle>(i % 37),
                           [&count]() { ++count; });
        }
        queue.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

/**
 * Steady-state event throughput: a fixed population of self-
 * rescheduling events, the pattern a running simulation puts on the
 * queue (cores and the memory controller keep a bounded number of
 * events in flight and every pop schedules a successor). This is the
 * bench that shows heap regrowth and per-event allocation churn —
 * the reserved vector heap holds capacity across the whole run.
 */
void
BM_EventQueueSteadyState(benchmark::State &state)
{
    const std::int64_t population = state.range(0);
    EventQueue queue;
    std::uint64_t executed = 0;
    // Self-rescheduling closure: each firing schedules the next, with
    // a varying delay so heap order actually gets exercised.
    std::function<void()> tick;
    Cycle delay = 1;
    tick = [&]() {
        ++executed;
        delay = delay % 41 + 1;
        queue.schedule(delay, tick);
    };
    for (std::int64_t i = 0; i < population; ++i)
        queue.schedule(static_cast<Cycle>(i % 13), tick);

    static constexpr std::uint64_t kBatch = 1024;
    for (auto _ : state) {
        const std::uint64_t target = executed + kBatch;
        while (executed < target)
            queue.runUntil(queue.now() + 8);
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(64)->Arg(1024)->Arg(16384);

/**
 * The scan kernel itself at bucket-shaped sizes: Arg(0) is the element
 * count (12 = one index bucket, 32 = MSHR-file scale, 256 = history
 * window segment), Arg(1)=0 pins the scalar reference, Arg(1)=1 runs
 * the dispatched kernel (whatever activeIsa() reports for this host /
 * STMS_SIMD config). Probes alternate hit positions and misses so
 * neither branch prediction nor an early first-lane hit flatters the
 * vector path.
 */
void
BM_FindFirstEqual(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    const bool dispatched = state.range(1) != 0;
    std::vector<std::uint64_t> keys(count + simd::kScanPadU64,
                                    ~0ULL);  // padding never matches
    for (std::size_t i = 0; i < count; ++i)
        keys[i] = 0x1000 + i;
    // Probe mix: every position once, plus as many misses.
    std::vector<std::uint64_t> probes;
    for (std::size_t i = 0; i < count; ++i) {
        probes.push_back(0x1000 + i);
        probes.push_back(0xdead0000 + i);
    }
    if (probes.empty())
        probes.push_back(0xdead0000);
    std::size_t next = 0;
    for (auto _ : state) {
        const std::uint64_t probe = probes[next];
        next = next + 1 == probes.size() ? 0 : next + 1;
        const std::size_t hit =
            dispatched
                ? simd::findFirstEqual(keys.data(), count, probe)
                : simd::findFirstEqualScalar(keys.data(), count,
                                             probe);
        benchmark::DoNotOptimize(hit);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(dispatched ? simd::activeIsa() : "scalar-ref");
}
BENCHMARK(BM_FindFirstEqual)
    ->Args({12, 0})
    ->Args({12, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->ArgNames({"count", "simd"});

/** History-window scan (stream re-lookup shape): one SIMD sweep over
 *  a wrapped bounded log vs the entry-at-a-time walk it replaced. */
void
BM_HistoryScanWindow(benchmark::State &state)
{
    constexpr std::uint64_t kCapacity = 4096;
    HistoryBuffer buffer(kCapacity);
    Rng rng(21);
    for (std::uint64_t i = 0; i < kCapacity + kCapacity / 2; ++i)
        buffer.append(blockAddress(rng.below(1ULL << 16)));
    const SeqNum oldest = buffer.head() - kCapacity;
    Rng probe(22);
    for (auto _ : state) {
        benchmark::DoNotOptimize(buffer.scanWindow(
            oldest, blockAddress(probe.below(1ULL << 16))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryScanWindow);

/** MSHR-file churn: the probe/insert/extract mix every off-chip
 *  transfer puts on the flat map, at demand-window occupancy. */
void
BM_FlatAddrMapChurn(benchmark::State &state)
{
    FlatAddrMap<std::uint64_t> map;
    constexpr std::uint64_t kWindow = 32;  // in-flight blocks
    for (std::uint64_t i = 0; i < kWindow; ++i)
        map.emplace(blockAddress(i), std::uint64_t{i});
    Rng rng(23);
    std::uint64_t next = kWindow;
    for (auto _ : state) {
        // 3 probes (demand checks) per fill+extract pair.
        for (int p = 0; p < 3; ++p) {
            benchmark::DoNotOptimize(
                map.contains(blockAddress(rng.below(2 * kWindow))));
        }
        const std::size_t victim =
            static_cast<std::size_t>(rng.below(map.size()));
        benchmark::DoNotOptimize(map.take(victim));
        map.emplace(blockAddress(next), std::uint64_t{next});
        ++next;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatAddrMapChurn);

/**
 * Per-run structure teardown/rebuild cost: the allocation storm at
 * every sweep point. Arg(0)=0 takes it from the global heap (no
 * arena installed), Arg(0)=1 from a reused ScopedRunArena — the
 * difference is what --pipeline workers stop paying per run.
 */
void
BM_ArenaRunCycle(benchmark::State &state)
{
    const bool arena = state.range(0) != 0;
    constexpr std::size_t kBuffers = 64;
    constexpr std::size_t kElems = 4096;
    for (auto _ : state) {
        std::optional<ScopedRunArena> scope;
        if (arena)
            scope.emplace();
        std::vector<ArenaBuffer<std::uint64_t>> buffers;
        buffers.reserve(kBuffers);
        for (std::size_t i = 0; i < kBuffers; ++i) {
            buffers.emplace_back(kElems);
            buffers.back()[0] = i;        // touch first...
            buffers.back()[kElems - 1] = i;  // ...and last page
        }
        benchmark::DoNotOptimize(buffers.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kBuffers));
}
BENCHMARK(BM_ArenaRunCycle)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"arena"});

} // namespace

BENCHMARK_MAIN();
