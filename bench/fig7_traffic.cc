/**
 * @file
 * Figure 7 — off-chip traffic overhead breakdown, without (100%) and
 * with (12.5%) probabilistic index update.
 *
 * Overhead bytes per useful data byte (demand fetches + writebacks),
 * split into: recording streams (history appends + end marks), index
 * updates, stream lookups (index + history reads), and incorrect
 * prefetches. Paper shape: at 100% sampling, index updates dominate
 * and exceed the useful traffic for many workloads; 12.5% sampling
 * removes most of it.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    Table table({"workload", "sampling", "record", "update", "lookup",
                 "incorrect", "total"});

    for (const auto &info : standardSuite()) {
        const Trace &trace = cachedTrace(info.name, records);
        for (double p : {1.0, 0.125}) {
            StmsConfig config;
            config.samplingProbability = p;
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);

            // Fig. 7 normalization: base-system data traffic, i.e.
            // demand fetches + writebacks + consumed prefetches (the
            // base system would fetch those blocks on demand).
            double useful = static_cast<double>(
                out.sim.traffic.bytesFor(TrafficClass::DemandRead) +
                out.sim.traffic.bytesFor(
                    TrafficClass::DemandWriteback));
            for (const auto &pf : out.sim.prefetchers) {
                useful += static_cast<double>(pf.useful + pf.partial) *
                          kBlockBytes;
            }
            auto share = [&](TrafficClass cls) {
                return useful == 0
                           ? 0.0
                           : static_cast<double>(
                                 out.sim.traffic.bytesFor(cls)) /
                                 useful;
            };
            const double record = share(TrafficClass::MetaRecord);
            const double update = share(TrafficClass::MetaUpdate);
            const double lookup = share(TrafficClass::MetaLookup);
            const double incorrect =
                useful == 0 ? 0.0
                            : static_cast<double>(out.stms.erroneous) *
                                  kBlockBytes / useful;
            table.addRow({info.label, Table::pct(p, 1),
                          Table::num(record), Table::num(update),
                          Table::num(lookup), Table::num(incorrect),
                          Table::num(record + update + lookup +
                                     incorrect)});
        }
    }

    std::printf("Figure 7: overhead bytes per useful data byte, "
                "100%% vs 12.5%% sampling\n\n%s",
                table.toString().c_str());
    std::printf("\nShape check: at 100%% sampling index updates "
                "dominate; 12.5%% cuts update\ntraffic ~8x while "
                "record traffic stays negligible (1 write per 12 "
                "misses).\n");
    return 0;
}
