/**
 * @file
 * Stub: the index-table contention bench is the "index_contention"
 * experiment of the unified driver (src/driver). Equivalent:
 *
 *   driver --experiment index_contention shards=1,2,4,8 threads=1,2,4
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("index_contention", argc, argv);
}
