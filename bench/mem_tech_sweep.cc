/**
 * @file
 * Back-compat stub: this bench is the "mem_tech_sweep" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment mem_tech_sweep [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("mem_tech_sweep", argc, argv);
}
