#include "harness.hh"

#include <cstdlib>
#include <map>

#include "common/log.hh"
#include "prefetch/stride.hh"

namespace stms::bench
{

SimConfig
defaultSimConfig(bool functional)
{
    SimConfig config;  // Defaults already copy Table 1.
    config.memory.mem.functional = functional;
    if (functional) {
        // Trace-based mode: timing out of the picture, coverage only.
        config.memory.l1Latency = 0;
        config.memory.l2Latency = 0;
        config.memory.prefetchBufLatency = 0;
    }
    return config;
}

const Trace &
cachedTrace(const std::string &workload, std::uint64_t records_per_core)
{
    static std::map<std::pair<std::string, std::uint64_t>, Trace> cache;
    const auto key = std::make_pair(workload, records_per_core);
    auto it = cache.find(key);
    if (it == cache.end()) {
        WorkloadGenerator generator(
            makeWorkload(workload, records_per_core));
        it = cache.emplace(key, generator.generate()).first;
    }
    return it->second;
}

RunOutput
runTrace(const Trace &trace, const SimConfig &sim_config,
         const std::optional<StmsConfig> &stms_config,
         double warmup_fraction)
{
    SimConfig config = sim_config;
    config.warmupRecords = static_cast<std::uint64_t>(
        warmup_fraction * static_cast<double>(trace.totalRecords()));

    CmpSystem system(config, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);

    std::optional<StmsPrefetcher> stms;
    if (stms_config) {
        stms.emplace(*stms_config);
        system.addPrefetcher(&*stms);
    }

    RunOutput out;
    out.sim = system.run();
    out.stride = out.sim.prefetchers.at(0);
    if (stms) {
        out.stms = out.sim.prefetchers.at(1);
        out.stmsInternal = stms->stats();
        out.stmsMetaBytes = stms->metaFootprintBytes();
        const double full = static_cast<double>(out.stms.useful);
        const double partial = static_cast<double>(out.stms.partial);
        const double uncovered =
            static_cast<double>(out.sim.mem.offchipReads);
        const double denom = full + partial + uncovered;
        if (denom > 0) {
            out.stmsCoverage = (full + partial) / denom;
            out.stmsFullCoverage = full / denom;
            out.stmsPartialCoverage = partial / denom;
        }
    }
    return out;
}

double
speedup(const SimResult &base, const SimResult &opt)
{
    if (base.ipc <= 0.0)
        return 0.0;
    return opt.ipc / base.ipc - 1.0;
}

double
overheadPerBaseByte(const RunOutput &out)
{
    const auto &traffic = out.sim.traffic;
    double useful = static_cast<double>(
        traffic.bytesFor(TrafficClass::DemandRead) +
        traffic.bytesFor(TrafficClass::DemandWriteback));
    double overhead = static_cast<double>(
        traffic.bytesFor(TrafficClass::MetaLookup) +
        traffic.bytesFor(TrafficClass::MetaUpdate) +
        traffic.bytesFor(TrafficClass::MetaRecord));
    for (const auto &pf : out.sim.prefetchers) {
        useful += static_cast<double>(pf.useful + pf.partial) *
                  kBlockBytes;
        overhead += static_cast<double>(pf.erroneous) * kBlockBytes;
    }
    return useful > 0.0 ? overhead / useful : 0.0;
}

std::uint64_t
benchRecords(std::uint64_t fallback)
{
    if (const char *env = std::getenv("STMS_BENCH_RECORDS")) {
        const std::uint64_t value = std::strtoull(env, nullptr, 0);
        if (value > 0)
            return value;
    }
    return fallback;
}

} // namespace stms::bench
