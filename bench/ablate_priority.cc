/**
 * @file
 * Back-compat stub: this bench is now the "ablate-priority" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment ablate-priority [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("ablate-priority", argc, argv);
}
