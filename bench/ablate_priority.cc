/**
 * @file
 * Ablation — arbitration priority of predictor meta-data traffic.
 *
 * The paper: "We find that assigning a low priority to predictor
 * memory traffic is essential to minimize queueing-related stalls"
 * (Sec. 4.3). This bench runs STMS with meta-data traffic at low
 * (default) and demand priority and compares IPC and coverage under
 * full timing.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(192 * 1024);
    const std::vector<std::string> workloads = {
        "web-apache", "oltp-db2", "sci-em3d", "sci-ocean"};

    Table table({"workload", "meta-priority", "ipc", "speedup-vs-base",
                 "coverage", "mem-utilization"});
    for (const auto &name : workloads) {
        const Trace &trace = cachedTrace(name, records);
        RunOutput base =
            runTrace(trace, defaultSimConfig(), std::nullopt);
        for (bool high : {false, true}) {
            SimConfig sim = defaultSimConfig();
            sim.memory.metaHighPriority = high;
            StmsConfig config;  // Off-chip, 12.5% sampling.
            RunOutput out = runTrace(trace, sim, config);
            table.addRow({name, high ? "demand" : "low",
                          Table::num(out.sim.ipc, 3),
                          Table::pct(speedup(base.sim, out.sim)),
                          Table::pct(out.stmsCoverage),
                          Table::pct(out.sim.memUtilization)});
        }
    }

    std::printf("Ablation: meta-data traffic priority (Sec. 4.3)\n\n%s",
                table.toString().c_str());
    std::printf("\nShape check: demand-priority meta-data steals "
                "channel slots from demand\nfetches; low priority wins "
                "on IPC especially when bandwidth is tight.\n");
    return 0;
}
