/**
 * @file
 * Figure 5 — off-chip meta-data storage requirements.
 *
 * Left: coverage vs history-buffer size. Paper shape: commercial
 * workloads improve smoothly with history size (a spectrum of reuse
 * distances); scientific workloads are bimodal — negligible coverage
 * until the buffer holds a full iteration, near-perfect after.
 *
 * Right: coverage vs index-table size with an unbounded history.
 * Paper shape: saturation at a fraction of the idealized prefetcher's
 * entry count, because in-bucket LRU retains the useful pointers.
 *
 * Axes are in MB at the paper's packing density (12 entries / 64B);
 * absolute saturation points are ~5x below the paper's because traces
 * are scaled down (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "common/config.hh"
#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);

    // --- Left: history-buffer sweep -------------------------------
    const std::vector<std::uint64_t> history_entries = {
        1ULL << 13, 1ULL << 14, 1ULL << 15, 1ULL << 16, 1ULL << 17,
        1ULL << 18, 1ULL << 19, 1ULL << 20};

    std::vector<std::string> headers = {"hb-size(total)"};
    for (const auto &info : standardSuite())
        headers.push_back(info.label);
    Table left(headers);

    for (std::uint64_t entries : history_entries) {
        StmsConfig config = makeIdealTmsConfig();
        config.historyEntriesPerCore = entries;
        std::vector<std::string> row;
        // 4 cores x entries, packed 12/block.
        row.push_back(formatSize(4 * divCeil(entries, 12) * kBlockBytes));
        for (const auto &info : standardSuite()) {
            const Trace &trace = cachedTrace(info.name, records);
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            row.push_back(Table::pct(out.stmsCoverage, 0));
        }
        left.addRow(row);
    }

    std::printf("Figure 5 (left): coverage vs aggregate history-buffer "
                "size\n\n%s\n", left.toString().c_str());

    // --- Right: index-table sweep ---------------------------------
    const std::vector<std::uint64_t> index_bytes = {
        256ULL << 10, 512ULL << 10, 1ULL << 20, 2ULL << 20, 4ULL << 20,
        8ULL << 20, 16ULL << 20, 32ULL << 20};

    std::vector<std::string> right_headers = headers;
    right_headers[0] = "index-size";
    Table right(right_headers);
    for (std::uint64_t bytes : index_bytes) {
        StmsConfig config = makeIdealTmsConfig();
        config.indexBytes = bytes;  // History stays unbounded.
        std::vector<std::string> row;
        row.push_back(formatSize(bytes));
        for (const auto &info : standardSuite()) {
            const Trace &trace = cachedTrace(info.name, records);
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            row.push_back(Table::pct(out.stmsCoverage, 0));
        }
        right.addRow(row);
    }
    std::printf("Figure 5 (right): coverage vs index-table size "
                "(unbounded history)\n\n%s", right.toString().c_str());
    std::printf("\nShape check: commercial curves grow smoothly with "
                "history size; scientific\ncurves are bimodal (nothing "
                "until one iteration fits, then near-max). The index\n"
                "table saturates at a few MB thanks to in-bucket LRU "
                "(Sec. 5.3).\n");
    return 0;
}
