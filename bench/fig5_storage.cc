/**
 * @file
 * Back-compat stub: this bench is now the "fig5" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment fig5 [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("fig5", argc, argv);
}
