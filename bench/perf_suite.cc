/**
 * @file
 * Stub: the simulator-throughput bench is the "perf_suite"
 * experiment of the unified driver (src/driver). Equivalent:
 *
 *   driver --experiment perf_suite records=65536 threads=2
 *
 * tools/bench_report.py owns the canonical invocation and the
 * BENCH_*.json trajectory artifact (docs/PERF.md).
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("perf_suite", argc, argv);
}
