/**
 * @file
 * Ablation — index-table bucket organization (Sec. 5.4).
 *
 * The paper packs 12 {address, pointer} pairs into one 64-byte bucket
 * so a lookup costs exactly one memory access, relying on in-bucket
 * LRU to retain useful pointers. This bench sweeps entries-per-bucket
 * at fixed table size: fewer entries per bucket means more buckets
 * but less associativity (more conflict churn); more would not fit a
 * block.
 */

#include <cstdio>

#include "common/config.hh"
#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<std::string> workloads = {"web-apache",
                                                "oltp-db2"};
    const std::vector<std::uint32_t> entries = {1, 2, 4, 8, 12};
    const std::vector<std::uint64_t> sizes = {512ULL << 10, 2ULL << 20,
                                              8ULL << 20};

    Table table({"workload", "index-size", "entries/bucket",
                 "coverage", "index-hit-rate"});
    for (const auto &name : workloads) {
        const Trace &trace = cachedTrace(name, records);
        for (std::uint64_t size : sizes) {
            for (std::uint32_t epb : entries) {
                StmsConfig config = makeIdealTmsConfig();
                config.indexBytes = size;
                config.entriesPerBucket = epb;
                RunOutput out =
                    runTrace(trace, defaultSimConfig(true), config);
                const auto &idx = out.stmsInternal;
                const double hit_rate =
                    idx.lookups == 0
                        ? 0.0
                        : static_cast<double>(idx.lookupHits) /
                              static_cast<double>(idx.lookups);
                table.addRow({name, formatSize(size),
                              std::to_string(epb),
                              Table::pct(out.stmsCoverage),
                              Table::pct(hit_rate)});
            }
        }
    }

    std::printf("Ablation: entries per 64B index bucket\n\n%s",
                table.toString().c_str());
    std::printf("\nShape check: low associativity (1-2 entries/bucket) "
                "churns useful pointers\nat small table sizes; 12/bucket "
                "recovers most of the loss without extra accesses.\n");
    return 0;
}
