/**
 * @file
 * Back-compat stub: this bench is now the "ablate-bucket" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment ablate-bucket [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("ablate-bucket", argc, argv);
}
