/**
 * @file
 * Figure 6 — amortizing off-chip lookups.
 *
 * Left: cumulative distribution of streamed blocks vs the length of
 * the stream they came from (commercial workloads). Paper shape: half
 * of all streamed blocks come from streams longer than ~10 blocks,
 * with a tail reaching hundreds — fixed-depth tables fragment these.
 *
 * Right: coverage loss vs restricted prefetch depth (the single-table
 * designs' fixed depth), relative to unbounded depth. Paper shape:
 * small depths lose tens of percent of coverage; the loss shrinks as
 * depth grows but is still visible at depth 15.
 */

#include <cstdio>

#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<std::string> commercial = {
        "web-apache", "web-zeus", "oltp-db2", "oltp-oracle", "dss-db2"};

    // --- Left: stream-length CDF ----------------------------------
    std::vector<std::string> headers = {"stream-length<="};
    for (const auto &name : commercial)
        headers.push_back(name);
    Table left(headers);

    std::vector<Log2Histogram> hists;
    for (const auto &name : commercial) {
        const Trace &trace = cachedTrace(name, records);
        RunOutput out = runTrace(trace, defaultSimConfig(true),
                                 makeIdealTmsConfig());
        hists.push_back(out.stmsInternal.streamLengths);
    }
    for (std::size_t bucket = 0; bucket < 14; ++bucket) {
        std::vector<std::string> row;
        row.push_back(std::to_string((2ULL << bucket) - 1));
        for (const auto &hist : hists)
            row.push_back(Table::pct(hist.cumulativeFraction(bucket), 0));
        left.addRow(row);
    }
    std::printf("Figure 6 (left): cumulative %% of streamed blocks by "
                "temporal-stream length\n(idealized prefetcher, "
                "commercial workloads)\n\n%s\n", left.toString().c_str());

    // --- Right: coverage loss vs fixed prefetch depth --------------
    const std::vector<std::uint64_t> depths = {1, 2, 3, 4, 6, 8, 12, 15};
    Table right(headers);
    std::vector<double> unbounded;
    for (const auto &name : commercial) {
        const Trace &trace = cachedTrace(name, records);
        RunOutput out = runTrace(trace, defaultSimConfig(true),
                                 makeIdealTmsConfig());
        unbounded.push_back(out.stmsCoverage);
    }
    for (std::uint64_t depth : depths) {
        std::vector<std::string> row;
        row.push_back(std::to_string(depth));
        for (std::size_t w = 0; w < commercial.size(); ++w) {
            StmsConfig config = makeIdealTmsConfig();
            config.maxStreamDepth = depth;
            const Trace &trace = cachedTrace(commercial[w], records);
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            const double loss = unbounded[w] - out.stmsCoverage;
            row.push_back(Table::pct(loss, 0));
        }
        right.addRow(row);
    }
    // Rename first header for the second table's semantics.
    std::printf("Figure 6 (right): coverage LOSS vs fixed prefetch "
                "depth (vs unbounded)\n\n%s", right.toString().c_str());
    std::printf("\nShape check: half the streamed blocks come from "
                "streams >10 long; restricting\ndepth to the 3-6 of "
                "single-table designs forfeits a large coverage slice "
                "(Sec. 5.4).\n");
    return 0;
}
