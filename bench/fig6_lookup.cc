/**
 * @file
 * Back-compat stub: this bench is now the "fig6" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment fig6 [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("fig6", argc, argv);
}
