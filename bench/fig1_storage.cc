/**
 * @file
 * Back-compat stub: this bench is now the "fig1-storage" experiment of the
 * unified driver (src/driver). Equivalent invocation:
 *
 *   driver --experiment fig1-storage [--threads N] [--json out.json]
 */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::experimentMain("fig1-storage", argc, argv);
}
