/**
 * @file
 * Figure 1 (left) — correlation-table entries required for a given
 * coverage in commercial server workloads.
 *
 * An idealized (zero-latency, on-chip) prefetcher is swept over
 * bounded index-table sizes. Paper shape: coverage keeps growing past
 * 10^6 entries (which at the paper's packing is ~64MB — impractical
 * on chip, the whole motivation for off-chip meta-data).
 */

#include <cstdio>

#include "common/config.hh"
#include "harness.hh"
#include "stats/table.hh"

using namespace stms;
using namespace stms::bench;

int
main()
{
    const std::uint64_t records = benchRecords(256 * 1024);
    const std::vector<std::string> commercial = {
        "web-apache", "web-zeus", "oltp-db2", "oltp-oracle"};
    const std::vector<std::uint64_t> entry_counts = {
        1ULL << 14, 1ULL << 15, 1ULL << 16, 1ULL << 17, 1ULL << 18,
        1ULL << 19, 1ULL << 20, 1ULL << 21};

    Table table({"entries", "bytes", "mean-coverage", "per-workload"});
    for (std::uint64_t entries : entry_counts) {
        StmsConfig config = makeIdealTmsConfig();
        // Bounded index, everything else idealized.
        config.indexBytes = divCeil(entries, config.entriesPerBucket) *
                            kBlockBytes;

        double sum = 0.0;
        std::string detail;
        for (const auto &name : commercial) {
            const Trace &trace = cachedTrace(name, records);
            RunOutput out =
                runTrace(trace, defaultSimConfig(true), config);
            sum += out.stmsCoverage;
            detail += Table::pct(out.stmsCoverage, 0) + " ";
        }
        table.addRow({std::to_string(entries),
                      formatSize(config.indexBytes),
                      Table::pct(sum / commercial.size()), detail});
    }

    std::printf("Figure 1 (left): coverage vs correlation-table "
                "entries\n(idealized lookup, commercial workloads: "
                "apache zeus oltp-db2 oltp-oracle)\n\n%s",
                table.toString().c_str());
    std::printf("\nShape check: coverage should rise smoothly and only "
                "saturate at >10^6-entry\ntables, which is megabytes of "
                "storage -- impractical on chip (Sec. 3).\n");
    return 0;
}
