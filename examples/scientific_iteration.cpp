/**
 * @file
 * Scientific-computing scenario (Sec. 5.3's bimodal observation).
 *
 * Scientific codes like em3d/ocean/moldyn miss on one long irregular
 * sequence per computational iteration, and that sequence repeats
 * exactly. The history buffer either holds a full iteration (coverage
 * near-perfect) or it does not (coverage negligible) — this example
 * makes that cliff visible by sweeping the history size around the
 * iteration length, one functional-mode runTrace() point per size.
 *
 * Usage: scientific_iteration [workload=sci-ocean] [records=262144]
 */

#include <cstdio>

#include "common/config.hh"
#include "driver/trace_cache.hh"
#include "sim/run.hh"
#include "workload/workloads.hh"

using namespace stms;

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string name = options.get("workload", "sci-ocean");
    if (!isKnownWorkload(name)) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    const auto records = options.getUint("records", 256 * 1024);
    const WorkloadSpec spec = makeWorkload(name, records);
    const Trace &trace = driver::globalTraceCache().get(name, records);

    std::printf("%s: iteration stream of %u blocks per core "
                "(plus %0.f%% noise/on-chip work)\n\n",
                name.c_str(), spec.minStreamLen,
                100.0 * (spec.noiseFraction + spec.hotFraction));
    std::printf("%-18s %-12s %s\n", "history(entries)", "coverage",
                "verdict");

    // Sweep history capacity around the iteration length.
    const std::uint64_t iteration = spec.minStreamLen;
    const std::uint64_t points[] = {
        iteration / 8, iteration / 4, iteration / 2,
        (iteration * 3) / 4, iteration + iteration / 4,
        iteration * 2, iteration * 4};

    for (std::uint64_t entries : points) {
        StmsConfig config = makeIdealTmsConfig();
        config.historyEntriesPerCore = entries;
        // Trace-based coverage run: functional memory timing.
        RunOutput out =
            runTrace(trace, defaultSimConfig(true), config);
        std::printf("%-18llu %-12.1f %s\n",
                    static_cast<unsigned long long>(entries),
                    100.0 * out.stmsCoverage,
                    entries > iteration
                        ? "holds a full iteration -> streams"
                        : "iteration does not fit -> blind");
    }

    std::printf("\nThe cliff sits at one iteration's miss footprint "
                "(Sec. 5.3: coverage for\nscientific workloads is "
                "bimodal in history-buffer size).\n");
    return 0;
}
