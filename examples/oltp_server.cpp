/**
 * @file
 * OLTP scenario — the workload class that motivated temporal memory
 * streaming (pointer-chasing transaction processing, Sec. 1).
 *
 * Runs the two OLTP workloads through base / idealized / practical
 * STMS configurations and prints a capacity-planning style summary:
 * how much main-memory meta-data buys how much transaction
 * throughput, and what it costs in memory bandwidth.
 *
 * Usage: oltp_server [records=262144] [sampling=0.125] [history=1M]
 *        [index=16M]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

using namespace stms;

namespace
{

struct Outcome
{
    SimResult result;
    double coverage = 0.0;
    std::uint64_t metaBytes = 0;
};

Outcome
run(const Trace &trace, const StmsConfig *config)
{
    SimConfig sim;
    sim.warmupRecords = trace.totalRecords() / 4;
    CmpSystem system(sim, trace);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);

    Outcome out;
    if (!config) {
        out.result = system.run();
        return out;
    }
    StmsPrefetcher stms(*config);
    system.addPrefetcher(&stms);
    out.result = system.run();
    const auto &pf = out.result.prefetchers.at(1);
    const double covered = static_cast<double>(pf.useful + pf.partial);
    const double denom =
        covered + static_cast<double>(out.result.mem.offchipReads);
    out.coverage = denom > 0 ? covered / denom : 0.0;
    out.metaBytes = stms.metaFootprintBytes();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const auto records = options.getUint("records", 256 * 1024);

    StmsConfig practical;
    practical.samplingProbability = options.getDouble("sampling", 0.125);
    practical.historyEntriesPerCore =
        options.getUint("history", 1ULL << 20);
    practical.indexBytes = options.getUint("index", 16ULL << 20);

    for (const char *name : {"oltp-db2", "oltp-oracle"}) {
        WorkloadGenerator generator(makeWorkload(name, records));
        const Trace trace = generator.generate();

        Outcome base = run(trace, nullptr);
        StmsConfig ideal = makeIdealTmsConfig();
        Outcome magic = run(trace, &ideal);
        Outcome stms = run(trace, &practical);

        std::printf("== %s (%llu accesses)\n", name,
                    static_cast<unsigned long long>(
                        trace.totalRecords()));
        std::printf("   base IPC %.3f (stride prefetcher only)\n",
                    base.result.ipc);
        std::printf("   idealized TMS: IPC %.3f (%+.1f%%), coverage "
                    "%.1f%% -- needs impossible on-chip tables\n",
                    magic.result.ipc,
                    100.0 * (magic.result.ipc / base.result.ipc - 1.0),
                    100.0 * magic.coverage);
        std::printf("   practical STMS: IPC %.3f (%+.1f%%), coverage "
                    "%.1f%%\n",
                    stms.result.ipc,
                    100.0 * (stms.result.ipc / base.result.ipc - 1.0),
                    100.0 * stms.coverage);
        std::printf("   STMS meta-data: %s of main memory; traffic "
                    "overhead %.2f bytes/useful byte\n",
                    formatSize(stms.metaBytes).c_str(),
                    stms.result.overheadPerDataByte);
        const double fraction =
            magic.result.ipc > base.result.ipc
                ? (stms.result.ipc - base.result.ipc) /
                      (magic.result.ipc - base.result.ipc)
                : 0.0;
        std::printf("   -> STMS delivers %.0f%% of the idealized "
                    "speedup with zero on-chip tables\n\n",
                    100.0 * fraction);
    }
    return 0;
}
