/**
 * @file
 * OLTP scenario — the workload class that motivated temporal memory
 * streaming (pointer-chasing transaction processing, Sec. 1).
 *
 * Runs the two OLTP workloads through base / idealized / practical
 * STMS configurations — three runTrace() points per workload on the
 * shared engine — and prints a capacity-planning style summary: how
 * much main-memory meta-data buys how much transaction throughput,
 * and what it costs in memory bandwidth.
 *
 * Usage: oltp_server [records=262144] [sampling=0.125] [history=1M]
 *        [index=16M]
 */

#include <cstdio>

#include "common/config.hh"
#include "driver/trace_cache.hh"
#include "sim/run.hh"
#include "workload/workloads.hh"

using namespace stms;

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const auto records = options.getUint("records", 256 * 1024);

    StmsConfig practical;
    practical.samplingProbability = options.getDouble("sampling", 0.125);
    practical.historyEntriesPerCore =
        options.getUint("history", 1ULL << 20);
    practical.indexBytes = options.getUint("index", 16ULL << 20);

    for (const char *name : {"oltp-db2", "oltp-oracle"}) {
        const Trace &trace =
            driver::globalTraceCache().get(name, records);

        RunOutput base = runTrace(trace, RunConfig{});
        RunOutput magic =
            runTrace(trace, defaultSimConfig(), makeIdealTmsConfig());
        RunOutput stms =
            runTrace(trace, defaultSimConfig(), practical);

        std::printf("== %s (%llu accesses)\n", name,
                    static_cast<unsigned long long>(
                        trace.totalRecords()));
        std::printf("   base IPC %.3f (stride prefetcher only)\n",
                    base.sim.ipc);
        std::printf("   idealized TMS: IPC %.3f (%+.1f%%), coverage "
                    "%.1f%% -- needs impossible on-chip tables\n",
                    magic.sim.ipc,
                    100.0 * speedup(base.sim, magic.sim),
                    100.0 * magic.stmsCoverage);
        std::printf("   practical STMS: IPC %.3f (%+.1f%%), coverage "
                    "%.1f%%\n",
                    stms.sim.ipc, 100.0 * speedup(base.sim, stms.sim),
                    100.0 * stms.stmsCoverage);
        std::printf("   STMS meta-data: %s of main memory; traffic "
                    "overhead %.2f bytes/useful byte\n",
                    formatSize(stms.stmsMetaBytes).c_str(),
                    stms.sim.overheadPerDataByte);
        const double fraction =
            magic.sim.ipc > base.sim.ipc
                ? (stms.sim.ipc - base.sim.ipc) /
                      (magic.sim.ipc - base.sim.ipc)
                : 0.0;
        std::printf("   -> STMS delivers %.0f%% of the idealized "
                    "speedup with zero on-chip tables\n\n",
                    100.0 * fraction);
    }
    return 0;
}
