/**
 * @file
 * Bandwidth-tuning scenario — picking the sampling probability.
 *
 * The central practicality trade-off of the paper: index-update
 * traffic is directly proportional to the sampling probability, while
 * coverage decays only logarithmically as updates are dropped
 * (Sec. 4.4, Fig. 8). This example sweeps the probability on one
 * workload under full timing — one runTrace() point per probability —
 * so the bandwidth interaction (meta-data competing with demand
 * fetches) is visible in IPC, and reports the knee.
 *
 * Usage: bandwidth_tuning [workload=web-apache] [records=262144]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "driver/trace_cache.hh"
#include "sim/run.hh"
#include "workload/workloads.hh"

using namespace stms;

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string name = options.get("workload", "web-apache");
    if (!isKnownWorkload(name)) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    const auto records = options.getUint("records", 256 * 1024);
    const Trace &trace = driver::globalTraceCache().get(name, records);

    RunOutput base = runTrace(trace, RunConfig{});
    std::printf("%s, base IPC %.3f, memory utilization %.0f%%\n\n",
                name.c_str(), base.sim.ipc,
                100.0 * base.sim.memUtilization);
    std::printf("%-10s %-8s %-10s %-10s %-10s %s\n", "sampling",
                "ipc", "speedup", "coverage", "overhead", "mem-util");

    double best_ipc = 0.0;
    double best_p = 0.0;
    for (double p : std::vector<double>{1.0, 0.5, 0.25, 0.125, 0.0625,
                                        0.03125}) {
        StmsConfig config;
        config.samplingProbability = p;
        RunOutput out = runTrace(trace, defaultSimConfig(), config);
        std::printf("%-10.4f %-8.3f %-10.1f %-10.1f %-10.2f %.0f%%\n",
                    p, out.sim.ipc,
                    100.0 * speedup(base.sim, out.sim),
                    100.0 * out.stmsCoverage,
                    out.sim.overheadPerDataByte,
                    100.0 * out.sim.memUtilization);
        if (out.sim.ipc > best_ipc) {
            best_ipc = out.sim.ipc;
            best_p = p;
        }
    }
    std::printf("\nBest IPC at sampling probability %.4f "
                "(the paper picks 0.125 as the balance\npoint across "
                "its suite, Sec. 5.6). Note how 100%% sampling can "
                "LOSE performance\nwhen update traffic crowds out "
                "demand fetches.\n", best_p);
    return 0;
}
