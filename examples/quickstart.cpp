/**
 * @file
 * Quickstart: simulate one workload on the Table-1 CMP with the STMS
 * prefetcher and print coverage, traffic, and speedup.
 *
 * Usage:
 *   quickstart [workload=oltp-db2] [records=131072] [sampling=0.125]
 *              [ideal=false]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/stms.hh"
#include "prefetch/stride.hh"
#include "sim/system.hh"
#include "workload/workloads.hh"

using namespace stms;

namespace
{

/** Run one configuration of the CMP over @p trace. */
SimResult
runOnce(const Trace &trace, StmsPrefetcher *stms)
{
    SimConfig config;  // Defaults are the paper's Table 1 system.
    config.warmupRecords = trace.totalRecords() / 4;

    CmpSystem system(config, trace);
    StridePrefetcher stride;  // The base system includes one.
    system.addPrefetcher(&stride);
    if (stms)
        system.addPrefetcher(stms);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string workload = options.get("workload", "oltp-db2");
    if (!isKnownWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        std::fprintf(stderr, "known workloads:");
        for (const auto &info : standardSuite())
            std::fprintf(stderr, " %s", info.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const auto records = options.getUint("records", 128 * 1024);
    WorkloadGenerator generator(makeWorkload(workload, records));
    const Trace trace = generator.generate();
    std::printf("workload %s: %llu records, %llu distinct blocks\n",
                workload.c_str(),
                static_cast<unsigned long long>(trace.totalRecords()),
                static_cast<unsigned long long>(trace.footprintBlocks()));

    // Base system: stride prefetcher only.
    SimResult base = runOnce(trace, nullptr);

    // STMS on top of the base system.
    StmsConfig stms_config;
    stms_config.samplingProbability =
        options.getDouble("sampling", 0.125);
    stms_config.ideal = options.getBool("ideal", false);
    if (stms_config.ideal) {
        stms_config = makeIdealTmsConfig();
    }
    StmsPrefetcher stms(stms_config);
    SimResult with_stms = runOnce(trace, &stms);

    const auto &pf = with_stms.prefetchers.at(1);
    const double covered =
        static_cast<double>(pf.useful + pf.partial);
    const double denom =
        covered + static_cast<double>(with_stms.mem.offchipReads);
    const double coverage = denom > 0 ? covered / denom : 0.0;

    std::printf("\n-- base system (stride only) --\n");
    std::printf("ipc           %.3f\n", base.ipc);
    std::printf("offchip reads %llu\n",
                static_cast<unsigned long long>(base.mem.offchipReads));
    std::printf("\n-- with STMS (%s meta-data) --\n",
                stms_config.ideal ? "ideal on-chip" : "off-chip");
    std::printf("ipc           %.3f  (%+.1f%%)\n", with_stms.ipc,
                100.0 * (with_stms.ipc / base.ipc - 1.0));
    std::printf("coverage      %.1f%%  (full %.1f%%, partial %.1f%%)\n",
                100.0 * coverage,
                100.0 * static_cast<double>(pf.useful) /
                    (denom > 0 ? denom : 1.0),
                100.0 * static_cast<double>(pf.partial) /
                    (denom > 0 ? denom : 1.0));
    std::printf("accuracy      %.1f%%\n", 100.0 * pf.accuracy());
    std::printf("overhead      %.2f bytes/useful byte\n",
                with_stms.overheadPerDataByte);
    std::printf("meta footprint %llu bytes in main memory\n",
                static_cast<unsigned long long>(
                    stms.metaFootprintBytes()));
    std::printf("streams: %llu started, mean mlp %.2f\n",
                static_cast<unsigned long long>(
                    stms.stats().streamsStarted),
                with_stms.meanMlp);
    return 0;
}
