/**
 * @file
 * Quickstart: simulate one workload on the Table-1 CMP with the STMS
 * prefetcher and print coverage, traffic, and speedup. Uses the
 * shared runTrace() entry point (src/sim/run.hh) — the same engine
 * the unified experiment driver runs on.
 *
 * Usage:
 *   quickstart [workload=oltp-db2] [records=131072] [sampling=0.125]
 *              [ideal=false]
 */

#include <cstdio>

#include "common/config.hh"
#include "driver/trace_cache.hh"
#include "sim/run.hh"
#include "workload/workloads.hh"

using namespace stms;

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string workload = options.get("workload", "oltp-db2");
    if (!isKnownWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        std::fprintf(stderr, "known workloads:");
        for (const auto &info : standardSuite())
            std::fprintf(stderr, " %s", info.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const auto records = options.getUint("records", 128 * 1024);
    const Trace &trace =
        driver::globalTraceCache().get(workload, records);
    std::printf("workload %s: %llu records, %llu distinct blocks\n",
                workload.c_str(),
                static_cast<unsigned long long>(trace.totalRecords()),
                static_cast<unsigned long long>(trace.footprintBlocks()));

    // Base system: stride prefetcher only.
    RunOutput base = runTrace(trace, RunConfig{});

    // STMS on top of the base system.
    RunConfig config;
    config.stms.emplace();
    config.stms->samplingProbability =
        options.getDouble("sampling", 0.125);
    if (options.getBool("ideal", false))
        config.stms = makeIdealTmsConfig();
    RunOutput with_stms = runTrace(trace, config);

    std::printf("\n-- base system (stride only) --\n");
    std::printf("ipc           %.3f\n", base.sim.ipc);
    std::printf("offchip reads %llu\n",
                static_cast<unsigned long long>(
                    base.sim.mem.offchipReads));
    std::printf("\n-- with STMS (%s meta-data) --\n",
                config.stms->ideal ? "ideal on-chip" : "off-chip");
    std::printf("ipc           %.3f  (%+.1f%%)\n", with_stms.sim.ipc,
                100.0 * speedup(base.sim, with_stms.sim));
    std::printf("coverage      %.1f%%  (full %.1f%%, partial %.1f%%)\n",
                100.0 * with_stms.stmsCoverage,
                100.0 * with_stms.stmsFullCoverage,
                100.0 * with_stms.stmsPartialCoverage);
    std::printf("accuracy      %.1f%%\n",
                100.0 * with_stms.stms.accuracy());
    std::printf("overhead      %.2f bytes/useful byte\n",
                with_stms.sim.overheadPerDataByte);
    std::printf("meta footprint %llu bytes in main memory\n",
                static_cast<unsigned long long>(
                    with_stms.stmsMetaBytes));
    std::printf("streams: %llu started, mean mlp %.2f\n",
                static_cast<unsigned long long>(
                    with_stms.stmsInternal.streamsStarted),
                with_stms.sim.meanMlp);
    return 0;
}
