/**
 * @file
 * Trace tool — generate, save, inspect, and replay workload traces.
 *
 * The binary trace format lets experiments run against identical
 * inputs across configurations and machines, standing in for the
 * public trace files ChampSim-style studies distribute. Replay runs
 * through the shared runTrace() engine.
 *
 * Usage:
 *   trace_tool mode=gen workload=oltp-db2 records=65536 out=t.trace
 *   trace_tool mode=info in=t.trace
 *   trace_tool mode=run in=t.trace [ideal=false]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/run.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

using namespace stms;

namespace
{

int
generate(const Options &options)
{
    const std::string workload = options.get("workload", "oltp-db2");
    const std::string out = options.get("out", workload + ".trace");
    if (!isKnownWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return 1;
    }
    WorkloadGenerator generator(makeWorkload(
        workload, options.getUint("records", 64 * 1024)));
    const Trace trace = generator.generate();
    if (!trace_io::save(trace, out)) {
        std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s: %llu records, %u cores\n", out.c_str(),
                static_cast<unsigned long long>(trace.totalRecords()),
                trace.numCores());
    return 0;
}

int
info(const Options &options)
{
    Trace trace;
    const std::string in = options.get("in", "");
    if (!trace_io::load(trace, in)) {
        std::fprintf(stderr, "failed to read '%s'\n", in.c_str());
        return 1;
    }
    std::printf("trace '%s': %u cores, %llu records, %llu distinct "
                "blocks (%s footprint)\n",
                trace.name.c_str(), trace.numCores(),
                static_cast<unsigned long long>(trace.totalRecords()),
                static_cast<unsigned long long>(
                    trace.footprintBlocks()),
                formatSize(trace.footprintBlocks() * kBlockBytes)
                    .c_str());
    for (CoreId c = 0; c < trace.numCores(); ++c) {
        std::uint64_t writes = 0;
        std::uint64_t dependent = 0;
        double think = 0.0;
        for (const auto &record : trace.perCore[c]) {
            writes += record.isWrite() ? 1 : 0;
            dependent += record.isDependent() ? 1 : 0;
            think += record.think;
        }
        const double n =
            static_cast<double>(trace.perCore[c].size());
        std::printf("  core %u: %zu records, %.1f%% writes, %.1f%% "
                    "dependent, mean think %.0f cycles\n",
                    c, trace.perCore[c].size(),
                    n > 0 ? 100.0 * static_cast<double>(writes) / n : 0,
                    n > 0 ? 100.0 * static_cast<double>(dependent) / n
                          : 0,
                    n > 0 ? think / n : 0);
    }
    return 0;
}

int
replay(const Options &options)
{
    Trace trace;
    const std::string in = options.get("in", "");
    if (!trace_io::load(trace, in)) {
        std::fprintf(stderr, "failed to read '%s'\n", in.c_str());
        return 1;
    }
    RunConfig config;
    config.stms.emplace();
    if (options.getBool("ideal", false))
        config.stms = makeIdealTmsConfig();
    RunOutput out = runTrace(trace, config);
    std::printf("replayed %s: ipc %.3f, STMS coverage %.1f%%, "
                "overhead %.2f bytes/useful byte\n",
                in.c_str(), out.sim.ipc, 100.0 * out.stmsCoverage,
                out.sim.overheadPerDataByte);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string mode = options.get("mode", "gen");
    if (mode == "gen")
        return generate(options);
    if (mode == "info")
        return info(options);
    if (mode == "run")
        return replay(options);
    std::fprintf(stderr, "unknown mode '%s' (gen|info|run)\n",
                 mode.c_str());
    return 1;
}
