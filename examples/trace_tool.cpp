/**
 * @file
 * Trace tool — generate, export, inspect, and replay workload traces.
 *
 * Exercises the trace_io subsystem end to end: generation exports to
 * the native versioned format or to ChampSim-compatible files
 * (format=native|champsim), while info/run *stream* the input —
 * records flow through a bounded per-lane chunk, never a whole
 * in-memory trace — which is exactly how the driver ingests
 * multi-gigabyte traces. See docs/TRACE_FORMATS.md for the on-disk
 * layouts.
 *
 * Usage:
 *   trace_tool mode=gen workload=oltp-db2 records=65536 out=t.stms
 *   trace_tool mode=gen workload=dss-db2 format=champsim out=t.champsim
 *   trace_tool mode=info in=t.stms
 *   trace_tool mode=run in=t.stms [ideal=false] [chunk=4096]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/run.hh"
#include "trace_io/champsim.hh"
#include "trace_io/format.hh"
#include "trace_io/native.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

using namespace stms;

namespace
{

/** Build the streaming source named by in= (and optional format=). */
std::unique_ptr<trace_io::StreamingTraceSource>
openInput(const Options &options, std::string &error)
{
    trace_io::IngestSpec spec;
    std::string joined = options.get("in", "");
    const std::string format = options.get("format", "");
    if (!format.empty())
        joined += ",format=" + format;
    if (!trace_io::parseIngestSpec(
            joined, options.getUint("chunk", trace_io::kDefaultChunkRecords),
            spec, error)) {
        return nullptr;
    }
    return trace_io::openSource(spec, error);
}

int
generate(const Options &options)
{
    const std::string workload = options.get("workload", "oltp-db2");
    const std::string format = options.get("format", "native");
    const std::string out = options.get(
        "out",
        workload + (format == "champsim" ? ".champsim" : ".stms"));
    if (!isKnownWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return 1;
    }
    WorkloadGenerator generator(makeWorkload(
        workload, options.getUint("records", 64 * 1024)));
    const Trace trace = generator.generate();

    std::vector<std::string> written;
    if (format == "native") {
        if (trace_io::save(trace, out))
            written.push_back(out);
    } else if (format == "champsim") {
        written = trace_io::writeChampSim(trace, out);
    } else {
        std::fprintf(stderr, "unknown format '%s' (native|champsim)\n",
                     format.c_str());
        return 1;
    }
    if (written.empty()) {
        std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
        return 1;
    }
    for (const std::string &path : written) {
        std::printf("wrote %s (%s format)\n", path.c_str(),
                    format.c_str());
    }
    std::printf("%llu records, %u cores\n",
                static_cast<unsigned long long>(trace.totalRecords()),
                trace.numCores());
    return 0;
}

int
info(const Options &options)
{
    std::string error;
    auto source = openInput(options, error);
    if (!source) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::printf("trace '%s': %u cores", source->name().c_str(),
                source->numCores());
    if (source->totalRecords() > 0) {
        std::printf(", %llu records declared",
                    static_cast<unsigned long long>(
                        source->totalRecords()));
    }
    std::printf("\n");

    // Stream each lane through its bounded cursor; nothing below
    // materializes a whole lane.
    for (CoreId c = 0; c < source->numCores(); ++c) {
        auto cursor = source->openLane(c);
        std::uint64_t records = 0;
        std::uint64_t writes = 0;
        std::uint64_t dependent = 0;
        double think = 0.0;
        while (const TraceRecord *record = cursor->peek()) {
            ++records;
            writes += record->isWrite() ? 1 : 0;
            dependent += record->isDependent() ? 1 : 0;
            think += record->think;
            cursor->next();
        }
        const double n = static_cast<double>(records);
        std::printf("  core %u: %llu records, %.1f%% writes, %.1f%% "
                    "dependent, mean think %.0f cycles\n",
                    c, static_cast<unsigned long long>(records),
                    n > 0 ? 100.0 * static_cast<double>(writes) / n : 0,
                    n > 0 ? 100.0 * static_cast<double>(dependent) / n
                          : 0,
                    n > 0 ? think / n : 0);
    }
    std::printf("  peak resident: %zu records/lane (chunked "
                "streaming)\n",
                source->peakChunkRecords());
    return 0;
}

int
replay(const Options &options)
{
    std::string error;
    auto source = openInput(options, error);
    if (!source) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    RunConfig config;
    config.stms.emplace();
    if (options.getBool("ideal", false))
        config.stms = makeIdealTmsConfig();
    RunOutput out = runTrace(*source, config);
    std::printf("replayed %s: ipc %.3f, STMS coverage %.1f%%, "
                "overhead %.2f bytes/useful byte\n",
                options.get("in", "").c_str(), out.sim.ipc,
                100.0 * out.stmsCoverage,
                out.sim.overheadPerDataByte);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = Options::fromArgs(argc, argv);
    const std::string mode = options.get("mode", "gen");
    if (mode == "gen")
        return generate(options);
    if (mode == "info")
        return info(options);
    if (mode == "run")
        return replay(options);
    std::fprintf(stderr, "unknown mode '%s' (gen|info|run)\n",
                 mode.c_str());
    return 1;
}
