#!/usr/bin/env python3
"""Render driver telemetry: sampled metric series and trace files.

Two input kinds, auto-detected by shape:

  python3 tools/telemetry_report.py report.json
      a driver --json report produced with --sample-every N: prints
      each run's counter ramp (coverage, accuracy, MLP, queue depths,
      ... per sampling epoch) as an aligned table, plus a first->last
      summary per run;

  python3 tools/telemetry_report.py trace.json [--validate]
      a --trace-out Perfetto/Chrome trace: prints per-span-name
      counts and total duration, counter-track ranges, and the thread
      roster. --validate additionally checks the trace-event schema
      invariants the exporter guarantees — no unterminated duration
      events (every async "b" has its "e"), monotonic timestamps,
      known phase set — and exits nonzero on violation (the CI
      telemetry job gates on this).

Options:
  --run ID        restrict report rendering to one run id
  --columns A,B   restrict sample columns (default: all)
  --validate      trace mode: schema-check and exit 1 on violations

Both renderings are plain text on stdout; no dependencies beyond the
standard library (CI and air-gapped checkouts run it as-is).
"""

import argparse
import json
import sys
from collections import defaultdict

KNOWN_PHASES = {"X", "C", "b", "e", "M"}


def fmt_table(rows):
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in rows)


def fmt_value(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(int(value))


# ---------------------------------------------------------------- report


def render_report(report, run_filter, column_filter):
    """Sampled series live under timing.runs[].samples with the column
    names in timing.sample_columns (driver/report.cc)."""
    reports = report if isinstance(report, list) else [report]
    rendered_any = False
    for entry in reports:
        timing = entry.get("timing", {})
        columns = timing.get("sample_columns", [])
        if not columns:
            continue
        selected = column_filter or columns
        unknown = [c for c in selected if c not in columns]
        if unknown:
            sys.exit(f"unknown sample columns {unknown}; "
                     f"available: {columns}")
        indices = [columns.index(c) for c in selected]
        for run in timing.get("runs", []):
            samples = run.get("samples", [])
            if not samples or (run_filter and run["id"] != run_filter):
                continue
            rendered_any = True
            print(f"\n[{entry.get('experiment', '?')}] {run['id']} — "
                  f"{len(samples)} epochs x {timing['sample_every']} "
                  f"accesses")
            rows = [("accesses", "cycle", *selected)]
            for row in samples:
                accesses, cycle, values = row[0], row[1], row[2:]
                rows.append((str(accesses), str(cycle),
                             *(fmt_value(values[i]) for i in indices)))
            print(fmt_table(rows))
            first, last = samples[0][2:], samples[-1][2:]
            deltas = ", ".join(
                f"{selected[n]} {fmt_value(first[i])} -> "
                f"{fmt_value(last[i])}"
                for n, i in enumerate(indices))
            print(f"  ramp: {deltas}")
    if not rendered_any:
        sys.exit("no sampled series found (run the driver with "
                 "--sample-every N and without --no-timing)")


# ----------------------------------------------------------------- trace


def validate_trace(events):
    errors = []
    open_async = defaultdict(int)
    last_ts = None
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if ts is None:
            errors.append(f"event {i}: missing ts")
        elif last_ts is not None and ts < last_ts:
            errors.append(f"event {i}: timestamp {ts} < {last_ts} "
                          f"(not monotonic)")
        else:
            last_ts = ts
        if phase == "X" and event.get("dur") is None:
            errors.append(f"event {i}: complete span without dur")
        if phase == "b":
            open_async[(event["cat"], event["id"])] += 1
        if phase == "e":
            key = (event["cat"], event["id"])
            if open_async[key] <= 0:
                errors.append(f"event {i}: async end without begin "
                              f"({key})")
            else:
                open_async[key] -= 1
    for key, depth in open_async.items():
        if depth > 0:
            errors.append(f"unterminated async span {key} "
                          f"(depth {depth})")
    return errors


def render_trace(events, validate):
    threads = {e["tid"]: e["args"]["name"]
               for e in events if e.get("ph") == "M"}
    spans = defaultdict(lambda: [0, 0])
    counters = {}
    async_count = 0
    for e in events:
        phase = e.get("ph")
        if phase == "X":
            entry = spans[(e.get("cat", ""), e["name"])]
            entry[0] += 1
            entry[1] += e.get("dur", 0)
        elif phase == "C":
            value = e["args"]["value"]
            track = counters.setdefault(
                e["name"], {"n": 0, "min": value, "max": value,
                            "last": value})
            track["n"] += 1
            track["min"] = min(track["min"], value)
            track["max"] = max(track["max"], value)
            track["last"] = value
        elif phase == "b":
            async_count += 1

    print(f"{len(events)} events, {len(threads)} named threads, "
          f"{async_count} run spans")
    if threads:
        roster = ", ".join(threads[tid]
                           for tid in sorted(threads))
        print(f"threads: {roster}")
    if spans:
        rows = [("span", "count", "total ms")]
        for (cat, name), (count, dur) in sorted(spans.items()):
            rows.append((f"{cat}:{name}", str(count),
                         f"{dur / 1000:.2f}"))
        print("\n" + fmt_table(rows))
    if counters:
        rows = [("counter track", "samples", "min", "max", "last")]
        for name, track in sorted(counters.items()):
            rows.append((name, str(track["n"]),
                         fmt_value(track["min"]),
                         fmt_value(track["max"]),
                         fmt_value(track["last"])))
        print("\n" + fmt_table(rows))

    if validate:
        errors = validate_trace(events)
        if errors:
            print(f"\ntrace INVALID ({len(errors)} violations):",
                  file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            return 1
        print(f"\ntrace valid: phases within {sorted(KNOWN_PHASES)}, "
              f"timestamps monotonic, all async spans terminated")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="driver --json report or "
                                     "--trace-out trace file")
    parser.add_argument("--run", default=None)
    parser.add_argument("--columns", default=None)
    parser.add_argument("--validate", action="store_true")
    args = parser.parse_args()

    with open(args.path) as handle:
        payload = json.load(handle)

    if isinstance(payload, dict) and "traceEvents" in payload:
        return render_trace(payload["traceEvents"], args.validate)
    columns = args.columns.split(",") if args.columns else None
    render_report(payload, args.run, columns)
    return 0


if __name__ == "__main__":
    sys.exit(main())
