#!/usr/bin/env python3
"""Canonical perf_suite invocation + BENCH_*.json trajectory writer.

This script owns how the repo measures its own throughput:

  python3 tools/bench_report.py --driver build/driver

runs the pinned perf_suite sweep (fig7 plan, records=65536 unless
overridden), prints the throughput table, and appends one entry to the
repo-root trajectory artifact (BENCH_10.json by default; an absent
artifact is seeded from the newest earlier BENCH_*.json so the
trajectory stays one unbroken series across PRs). Each entry records
the SIMD kernel path the driver selected (timing.simd_isa), so the
trajectory distinguishes scalar-build numbers from vectorized ones.

Gating policy (docs/PERF.md): determinism gates — the model metrics
(everything not ending in a timing suffix: _s, _per_sec, _kb, _ratio,
or _chunks) must be bit-identical across thread counts and
schedules — plus one *resource* gate: the chunked pipeline's peak RSS
must stay within 1.25x serial (the whole point of streaming bounded
chunks instead of whole traces). Throughput numbers are
informational: they are recorded in the trajectory, never asserted
against, because shared CI runners make wall-clock assertions flaky.

Options:
  --records N            sweep length per core (default 65536; CI
                         smoke uses something small like 8192)
  --threads N            pipelined-schedule simulator pool (default 1
                         — same simulator count as the serial
                         schedule, so the RSS gate compares
                         inter-stage buffering, which is what the
                         chunked pipeline changed, instead of the
                         fan-out memory scaling any extra concurrent
                         run brings)
  --gate                 run the sweep at two pipeline thread counts
                         and fail unless all model metrics match;
                         also fail if pipeline peak RSS exceeds
                         1.25x serial (requires per-schedule RSS
                         isolation, i.e. writable /proc/self/clear_refs;
                         skipped with a warning when unavailable)
  --reference-binary P   also time an older driver binary on the same
                         pinned sweep (plain `--experiment fig7`) and
                         record the speedup of the current binary
  --simd-off-driver P    SIMD bit-identity gate: run the pinned sweep
                         once through a scalar (STMS_SIMD=OFF) driver
                         build and fail unless its model_digest — the
                         FNV-1a over every model metric — equals the
                         main driver's. This is the whole-sweep
                         counterpart of the per-kernel identity tests:
                         vectorization must never change the model
  --telemetry-gate       measure the pinned fig7 sweep with telemetry
                         off vs on (--trace-out + --sample-every 4096)
                         and fail if enabled telemetry costs more
                         than 2% throughput (docs/OBSERVABILITY.md).
                         Interleaved best-of-N (--telemetry-reps)
                         using the driver's own records_per_sec, so
                         process startup and runner-to-runner noise
                         mostly cancel
  --telemetry-reps N     repetitions per arm of the telemetry gate
                         (default 5)
  --out PATH             trajectory file (default BENCH_8.json next
                         to this repo's root)
  --no-write             measure and print, do not touch the artifact
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TIMING_SUFFIXES = ("_s", "_per_sec", "_kb", "_ratio", "_chunks")

# The chunked pipeline's resource gate: streaming bounded chunks must
# keep pipelined peak RSS within this factor of the serial schedule.
RSS_GATE_RATIO = 1.25

# Telemetry overhead gate: the fig7 sweep with --trace-out +
# --sample-every enabled must keep >= this fraction of the
# telemetry-off throughput (i.e. <= 2% overhead).
TELEMETRY_GATE_RATIO = 0.98


def is_timing_metric(name: str) -> bool:
    return name.endswith(TIMING_SUFFIXES)


def sanitizer_build(binary) -> str | None:
    """Name of the sanitizer baked into ``binary``, or None.

    Sanitized builds run 2-20x slower, so their numbers must never
    enter the BENCH trajectory — one ASan entry would read as a
    catastrophic regression. Detected from the runtime symbols the
    instrumentation links in (works for static and shared runtimes).
    """
    try:
        blob = pathlib.Path(binary).read_bytes()
    except OSError:
        return None
    for marker, name in ((b"__tsan_init", "thread"),
                         (b"__asan_init", "address"),
                         (b"__ubsan_handle", "undefined")):
        if marker in blob:
            return name
    return None


def run_perf_suite(driver, records, threads, extra=()):
    """Run perf_suite once; return its full report dict."""
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            str(driver), "--experiment", "perf_suite", "--json",
            tmp.name, f"records={records}", f"threads={threads}",
            *extra,
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        return json.load(open(tmp.name))


def model_digest(metrics):
    return "%08x%08x" % (int(metrics["model_digest_hi"]),
                         int(metrics["model_digest_lo"]))


def time_reference_sweep(binary, records):
    """Wall-time a plain fig7 sweep — the invocation shape every
    driver version supports, so old binaries can be compared."""
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            str(binary), "--experiment", "fig7", "--json", tmp.name,
            f"records={records}",
        ]
        start = time.monotonic()
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        return time.monotonic() - start


def compare_reference_sweep(reference, current, records, reps=3):
    """Interleaved best-of-N wall times for both binaries. Same
    rationale as the telemetry gate: transient host slowdowns hit
    both arms, and best-of discards them — a single-shot pair on a
    shared machine can swing the ratio by +/-10%."""
    ref_best = float("inf")
    cur_best = float("inf")
    for _ in range(reps):
        ref_best = min(ref_best,
                       time_reference_sweep(reference, records))
        cur_best = min(cur_best,
                       time_reference_sweep(current, records))
    return ref_best, cur_best


def fig7_records_per_sec(driver, records, extra=(), out_dir=None):
    """One pinned fig7 sweep; return the driver-reported aggregate
    throughput (excludes process startup, unlike wall-timing the
    subprocess)."""
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     dir=out_dir) as tmp:
        cmd = [
            str(driver), "--experiment", "fig7", "--json", tmp.name,
            f"records={records}", *extra,
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        report = json.load(open(tmp.name))
    return report["timing"]["records_per_sec"]


def measure_telemetry_overhead(driver, records, reps):
    """Interleaved best-of-N throughput with telemetry off vs fully
    on. Interleaving + best-of makes a 2% gate meaningful on noisy
    shared runners: transient slowdowns hit both arms equally and the
    best rep approaches each arm's true speed."""
    with tempfile.TemporaryDirectory() as scratch:
        on_extra = ("--trace-out", f"{scratch}/trace.json",
                    "--sample-every", "4096")
        off_best = 0.0
        on_best = 0.0
        for _ in range(reps):
            off_best = max(off_best,
                           fig7_records_per_sec(driver, records))
            on_best = max(on_best,
                          fig7_records_per_sec(driver, records,
                                               on_extra))
    return off_best, on_best


def model_metrics(metrics):
    return {k: v for k, v in metrics.items() if not is_timing_metric(k)}


def print_table(metrics):
    rows = [("schedule", "records/s", "wall s", "peak RSS MB")]
    for mode in ("serial", "pipeline"):
        rows.append((
            mode,
            f"{metrics[f'{mode}.records_per_sec']:,.0f}",
            f"{metrics[f'{mode}.wall_s']:.2f}",
            f"{metrics[f'{mode}.peak_rss_kb'] / 1024:.1f}",
        ))
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    for r in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--driver", default=REPO_ROOT / "build/driver")
    parser.add_argument("--records", type=int, default=65536)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--gate", action="store_true")
    parser.add_argument("--reference-binary")
    parser.add_argument("--simd-off-driver")
    parser.add_argument("--telemetry-gate", action="store_true")
    parser.add_argument("--telemetry-reps", type=int, default=5)
    parser.add_argument("--out", default=REPO_ROOT / "BENCH_10.json")
    parser.add_argument("--no-write", action="store_true")
    args = parser.parse_args()

    report = run_perf_suite(args.driver, args.records, args.threads)
    metrics = report["metrics"]
    simd_isa = report.get("timing", {}).get("simd_isa", "unknown")
    print_table(metrics)
    print(f"simd kernel path: {simd_isa}")

    if args.gate:
        # Determinism gate: a different pipelined worker count must
        # reproduce every model metric bit for bit. (perf_suite
        # additionally asserts serial == pipelined internally.)
        other = run_perf_suite(args.driver, args.records,
                               args.threads + 1)["metrics"]
        a, b = model_metrics(metrics), model_metrics(other)
        if not a or a != b:
            print("determinism gate FAILED:", file=sys.stderr)
            for key in sorted(set(a) | set(b)):
                if a.get(key) != b.get(key):
                    print(f"  {key}: {a.get(key)} != {b.get(key)}",
                          file=sys.stderr)
            return 1
        print(f"determinism gate OK: {len(a)} model metrics "
              f"bit-identical across pipeline thread counts "
              f"{args.threads} and {args.threads + 1}")

        # Resource gate: the chunked pipeline exists to bound
        # residency, so its peak RSS must stay within
        # RSS_GATE_RATIO x serial. Only meaningful when the driver
        # could isolate each schedule's watermark (clear_refs).
        if metrics.get("rss_isolated_ratio", 0.0) >= 1.0:
            serial_rss = metrics["serial.peak_rss_kb"]
            pipeline_rss = metrics["pipeline.peak_rss_kb"]
            ratio = pipeline_rss / max(serial_rss, 1.0)
            if ratio > RSS_GATE_RATIO:
                print(f"RSS gate FAILED: pipeline peak RSS "
                      f"{pipeline_rss / 1024:.1f} MB is {ratio:.2f}x "
                      f"serial ({serial_rss / 1024:.1f} MB), limit "
                      f"{RSS_GATE_RATIO}x", file=sys.stderr)
                return 1
            print(f"RSS gate OK: pipeline peak RSS is {ratio:.2f}x "
                  f"serial (limit {RSS_GATE_RATIO}x)")
        else:
            print("RSS gate skipped: /proc/self/clear_refs not "
                  "writable, per-schedule RSS isolation unavailable",
                  file=sys.stderr)

    simd_gate = None
    if args.simd_off_driver:
        # SIMD bit-identity gate: the same pinned sweep through a
        # scalar build must land on the same model digest — one number
        # covering every model metric of every run in the suite.
        off_report = run_perf_suite(args.simd_off_driver,
                                    args.records, args.threads)
        off_isa = off_report.get("timing", {}).get("simd_isa",
                                                   "unknown")
        if off_isa != "scalar":
            print(f"SIMD gate FAILED: --simd-off-driver reports "
                  f"kernel path '{off_isa}', expected 'scalar' "
                  f"(is it an STMS_SIMD=OFF build?)", file=sys.stderr)
            return 1
        native_digest = model_digest(metrics)
        off_digest = model_digest(off_report["metrics"])
        if native_digest != off_digest:
            print(f"SIMD gate FAILED: model digest diverges between "
                  f"kernel paths — {simd_isa}={native_digest} vs "
                  f"scalar={off_digest}", file=sys.stderr)
            for key in sorted(model_metrics(metrics)):
                off_value = off_report["metrics"].get(key)
                if metrics[key] != off_value:
                    print(f"  {key}: {metrics[key]} != {off_value}",
                          file=sys.stderr)
            return 1
        print(f"SIMD gate OK: model digest {native_digest} identical "
              f"between '{simd_isa}' and 'scalar' kernel paths")
        simd_gate = {"simd_off_isa": off_isa,
                     "simd_off_model_digest": off_digest}

    telemetry = None
    if args.telemetry_gate:
        off_rps, on_rps = measure_telemetry_overhead(
            args.driver, args.records, args.telemetry_reps)
        ratio = on_rps / off_rps if off_rps > 0 else 0.0
        telemetry = {
            "telemetry_off_records_per_sec": off_rps,
            "telemetry_on_records_per_sec": on_rps,
            "telemetry_on_off_ratio": ratio,
        }
        if ratio < TELEMETRY_GATE_RATIO:
            print(f"telemetry overhead gate FAILED: enabled telemetry "
                  f"runs at {ratio:.3f}x the disabled throughput "
                  f"({on_rps:,.0f} vs {off_rps:,.0f} records/s, "
                  f"limit {TELEMETRY_GATE_RATIO}x)", file=sys.stderr)
            return 1
        print(f"telemetry overhead gate OK: enabled telemetry keeps "
              f"{ratio:.3f}x of disabled throughput "
              f"(limit {TELEMETRY_GATE_RATIO}x, best of "
              f"{args.telemetry_reps})")

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "git": git_describe(),
        "records": int(metrics["records"]),
        "runs": int(metrics["runs"]),
        "model_digest": model_digest(metrics),
        # Which scan-kernel path produced these numbers (PR 10):
        # "scalar" for STMS_SIMD=OFF builds, else the ISA the runtime
        # probe picked. Timing context, not a model input — the SIMD
        # gate above proves the digest doesn't depend on it.
        "simd_isa": simd_isa,
    }
    for mode in ("serial", "pipeline"):
        for field in ("records_per_sec", "wall_s", "acquire_s",
                      "simulate_s", "encode_s", "peak_rss_kb"):
            entry[f"{mode}_{field}"] = metrics[f"{mode}.{field}"]
    # Chunked-pipeline residency telemetry (PR 6): the chunk size the
    # sweep ran with, how many chunks were ever live at once, and the
    # RSS ratio the gate above enforces (with whether the per-schedule
    # watermark isolation that makes the ratio meaningful was active).
    for field in ("pipeline.chunk_records_chunks",
                  "pipeline.peak_resident_chunks",
                  "pipeline_rss_ratio", "rss_isolated_ratio"):
        if field in metrics:
            entry[field.replace(".", "_")] = metrics[field]
    # Telemetry overhead measurement (PR 8): instrumentation-off vs
    # -on throughput on the same pinned sweep.
    if telemetry is not None:
        entry.update(telemetry)
    # SIMD bit-identity gate outcome (PR 10), when a scalar build was
    # supplied for cross-checking.
    if simd_gate is not None:
        entry.update(simd_gate)

    if args.reference_binary:
        # Same pinned sweep, same machine, both binaries, identical
        # external invocation (plain fig7) — the apples-to-apples
        # basis of the speedup claim.
        ref_wall, new_wall = compare_reference_sweep(
            args.reference_binary, args.driver, args.records)
        entry["reference"] = {
            "binary": str(args.reference_binary),
            "fig7_wall_s": ref_wall,
            "current_fig7_wall_s": new_wall,
            "speedup": ref_wall / new_wall if new_wall > 0 else 0.0,
        }
        print(f"reference sweep: {ref_wall:.2f}s -> {new_wall:.2f}s "
              f"({ref_wall / new_wall:.2f}x)")

    if args.no_write:
        return 0

    sanitizer = sanitizer_build(args.driver)
    if sanitizer is not None:
        print(f"NOT recording: driver is a {sanitizer}-sanitizer "
              "build; sanitized timings never enter the BENCH "
              "trajectory (rerun with --no-write to silence this)")
        return 0

    out = pathlib.Path(args.out)
    trajectory = {"bench": "perf_suite",
                  "pinned_sweep": "fig7 (standard suite x {1.0, "
                                  "0.125} sampling, functional mode)",
                  "entries": []}
    if out.exists() and out.stat().st_size > 0:
        trajectory = json.load(open(out))
    else:
        seed = newest_earlier_trajectory(out)
        if seed is not None:
            trajectory = json.load(open(seed))
            print(f"seeded {out.name} from {seed.name} "
                  f"({len(trajectory['entries'])} prior entries)")
    trajectory["entries"].append(entry)
    tmp = out.with_suffix(".tmp")
    tmp.write_text(json.dumps(trajectory, indent=2) + "\n")
    tmp.replace(out)
    print(f"recorded entry {len(trajectory['entries'])} in {out}")
    return 0


def newest_earlier_trajectory(out):
    """The BENCH_*.json (other than @p out) with the highest numeric
    suffix — the previous PR's artifact, whose entries seed this one
    so the trajectory stays one unbroken series across PRs."""
    candidates = []
    for path in out.parent.glob("BENCH_*.json"):
        if path.name == out.name:
            continue
        suffix = path.stem.removeprefix("BENCH_")
        if suffix.isdigit():
            candidates.append((int(suffix), path))
    if not candidates:
        return None
    return max(candidates)[1]


def git_describe():
    try:
        return subprocess.run(
            ["git", "-C", str(REPO_ROOT), "describe", "--always",
             "--dirty"],
            check=True, capture_output=True,
            text=True).stdout.strip()
    except Exception:
        return "unknown"


if __name__ == "__main__":
    sys.exit(main())
