#!/usr/bin/env python3
"""Run the canonical baseline sweep and (re)write committed baselines.

The CI results gate runs a small fixed sweep into a result store and
diffs it against ``tests/data/baselines/ci_smoke.jsonl`` (see
docs/RESULTS.md, "Baseline refresh workflow"). This script is the one
definition of that sweep, used two ways:

  tools/refresh_baselines.py --driver build/driver
      run the sweep and rewrite the committed baseline from its
      experiment-kind records (do this deliberately, after verifying
      a figure-shape change is intended — the diff gate exists to
      catch the unintended ones);

  tools/refresh_baselines.py --driver ./driver --store DIR --no-write
      run the sweep into DIR and leave the baseline untouched (what
      CI does before diffing DIR against the committed baseline).

Baseline records keep their provenance (git describe + timestamp);
the diff engine ignores both, comparing scalars only.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

# The canonical CI sweep: small enough for a CI minute, wide enough
# to cover the traffic figures and the MLP table. Keep in sync with
# docs/RESULTS.md.
SWEEP_EXPERIMENTS = ["fig7", "table2"]
SWEEP_OPTIONS = ["records=4096"]


def run_sweep(driver: pathlib.Path, store: pathlib.Path) -> None:
    # Resolve: Path("./driver") collapses to "driver", which a
    # shell-less subprocess would look up in PATH, not the cwd.
    cmd = [str(driver.resolve())]
    for experiment in SWEEP_EXPERIMENTS:
        cmd += ["--experiment", experiment]
    # Store summaries ("N of M runs resumed, K executed") print at
    # info level; CI greps them from stderr to verify resume worked.
    cmd += ["--store", str(store), "--log-level", "info",
            *SWEEP_OPTIONS]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def experiment_records(store: pathlib.Path) -> list[str]:
    lines = []
    for line in (store / "records.jsonl").read_text().splitlines():
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "experiment":
            lines.append((record["fingerprint"], line))
    # Fingerprint-sorted for stable, reviewable baseline diffs.
    return [line for _, line in sorted(lines)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--driver", default="build/driver",
                        help="driver binary (default: build/driver)")
    parser.add_argument("--store", default=None,
                        help="store directory to sweep into "
                             "(default: a temp dir)")
    parser.add_argument("--out",
                        default="tests/data/baselines/ci_smoke.jsonl",
                        help="baseline file to write")
    parser.add_argument("--no-write", action="store_true",
                        help="run the sweep only; do not touch the "
                             "baseline")
    args = parser.parse_args()

    driver = pathlib.Path(args.driver)
    if not driver.exists():
        print(f"driver not found: {driver}", file=sys.stderr)
        return 1

    if args.store is None:
        tmp = tempfile.TemporaryDirectory(prefix="stms_baseline_")
        store = pathlib.Path(tmp.name)
    else:
        store = pathlib.Path(args.store)

    run_sweep(driver, store)
    records = experiment_records(store)
    print(f"sweep complete: {len(records)} experiment records "
          f"in {store}")

    if args.no_write:
        return 0

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("".join(line + "\n" for line in records))
    print(f"wrote {out} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
