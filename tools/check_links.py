#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/*.md.

Scans markdown inline links/images (``[text](target)``) in the files
the repo's docs job cares about, resolves relative targets against
the containing file, and exits nonzero listing every target that does
not exist. External (http/https/mailto) links and pure in-page
anchors are skipped; a ``#fragment`` on a relative link is stripped
before the existence check.

Usage: python3 tools/check_links.py [repo_root]
"""

import pathlib
import re
import sys

# Inline links, tolerating one level of nested brackets in the text
# (e.g. image-in-link). Reference-style links are not used here.
LINK = re.compile(r"\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are illustrative, not navigable.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path}: dead link -> {target}")
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    # Docs other pages or CI depend on by name: their *absence* must
    # fail too, not just dead links to them.
    for required in ("ARCHITECTURE.md", "OBSERVABILITY.md", "PERF.md",
                     "RESULTS.md", "STATIC_ANALYSIS.md",
                     "TRACE_FORMATS.md"):
        if root / "docs" / required not in files:
            files.append(root / "docs" / required)
    errors = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"missing expected file: {path}")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} markdown files, "
          f"{len(errors)} dead links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
