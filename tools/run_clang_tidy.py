#!/usr/bin/env python3
"""Zero-warning clang-tidy gate over src/ (.clang-tidy has the tuned
check set).

Usage: run_clang_tidy.py [--build-dir DIR] [--jobs N] [FILES...]

Runs clang-tidy against every src/ translation unit using the
compile_commands.json from --build-dir (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON).  Any diagnostic fails the gate
(WarningsAsErrors: '*' in .clang-tidy).

When clang-tidy is not installed the gate SKIPS with exit 0 and a
loud notice: the dev container ships gcc only, so the binding run is
the CI static-analysis job (which apt-installs clang-tidy).  Pass
--require to turn a missing binary into a failure, as CI does.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def source_files(build_dir: pathlib.Path) -> list[str]:
    """src/ translation units from the compilation database."""
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        sys.exit(
            f"error: {database} not found — configure with "
            "cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    entries = json.loads(database.read_text())
    files = []
    src_prefix = (REPO_ROOT / "src").as_posix() + "/"
    for entry in entries:
        path = pathlib.Path(entry["directory"], entry["file"])
        posix = path.resolve().as_posix()
        if posix.startswith(src_prefix) and posix not in files:
            files.append(posix)
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", type=pathlib.Path,
                        default=REPO_ROOT / "build")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--require", action="store_true",
        help="fail (exit 2) when clang-tidy is not installed",
    )
    parser.add_argument("files", nargs="*",
                        help="restrict the run to these files")
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        message = ("clang-tidy not found on PATH; the gate runs in "
                   "the CI static-analysis job")
        if args.require:
            print(f"error: {message}", file=sys.stderr)
            return 2
        print(f"SKIP: {message}")
        return 0

    files = args.files or source_files(args.build_dir)
    print(f"clang-tidy gate: {len(files)} file(s) with {tidy}")

    def run_one(path: str) -> tuple[str, int, str]:
        result = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True, text=True,
        )
        return path, result.returncode, result.stdout + result.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = pathlib.Path(path)
            try:
                rel = rel.relative_to(REPO_ROOT)
            except ValueError:
                pass
            if code != 0:
                failures += 1
                print(f"FAIL {rel}\n{output}")
            else:
                print(f"  ok {rel}")

    if failures:
        print(f"FAIL: {failures}/{len(files)} file(s) with "
              "diagnostics", file=sys.stderr)
        return 1
    print(f"OK: {len(files)} file(s) clang-tidy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
