"""Observer-only telemetry lint: instrumentation may watch the model,
never steer it.

The telemetry contract (docs/OBSERVABILITY.md): every hook is guarded
by an enabled-check so the disabled path costs one relaxed load, and
the simulation layers (src/sim, src/core) contain no telemetry calls
at all outside the registered probe chokepoints — model code must be
bit-identical with telemetry on or off, and the cheapest way to keep
that true is to keep telemetry out of the model entirely.

Checks:

1. No ``telemetry::`` reference or ``telemetry/`` include in src/sim
   or src/core outside the chokepoint allowlist (src/sim/system.hh:
   the EpochSampler/SampleSeries members that carry sampled series
   out of the model — data containers, not emission sites).
2. No unguarded sink dereference ``traceSink()->...`` anywhere: a
   deref must sit behind the idiomatic
   ``if (TraceSink *sink = traceSink())`` guard so the disabled path
   never touches the sink.
3. Sink pointers may be bound only in that guard form; the only file
   allowed to hold a sink outside a guard is the owner
   (src/driver/cli.cc installs/clears the process-wide sink).
"""

from __future__ import annotations

import re

from lintlib import (
    Violation,
    iter_source_files,
    line_of,
    strip_comments,
    strip_strings,
)

LINT_NAME = "observer-only"

#: Model-layer files allowed to mention telemetry: probe chokepoints
#: registered in docs/OBSERVABILITY.md.
MODEL_ALLOWLIST = frozenset({"src/sim/system.hh"})

#: The sink's owner: installs the process-wide pointer at startup.
SINK_OWNER = "src/driver/cli.cc"

_MODEL_PREFIXES = ("src/sim/", "src/core/")
_TELEMETRY_REF_RE = re.compile(
    r"\btelemetry::|#include\s+\"telemetry/"
)
_UNGUARDED_DEREF_RE = re.compile(r"traceSink\s*\(\s*\)\s*->")
_SINK_BIND_RE = re.compile(
    r"(?:telemetry::)?TraceSink\s*\*\s*\w+\s*="
)
_GUARD_RE = re.compile(
    r"if\s*\(\s*(?:telemetry::)?TraceSink\s*\*\s*\w+\s*=\s*"
    r"(?:telemetry::)?traceSink\s*\(\s*\)\s*\)"
)


def check(root):
    violations = []
    for rel, text in iter_source_files(root):
        code = strip_strings(strip_comments(text))

        # Rule 1: the model layers are telemetry-free.
        if rel.startswith(_MODEL_PREFIXES) and rel not in MODEL_ALLOWLIST:
            # Includes live in raw (string-bearing) text.
            stripped = strip_comments(text)
            for match in _TELEMETRY_REF_RE.finditer(stripped):
                violations.append(
                    Violation(
                        rel,
                        line_of(stripped, match.start()),
                        LINT_NAME,
                        "telemetry reference in model layer "
                        f"({rel.split('/')[1]}): instrumentation is "
                        "observer-only and lives outside src/sim and "
                        "src/core (chokepoints: "
                        + ", ".join(sorted(MODEL_ALLOWLIST))
                        + ")",
                    )
                )

        if rel.startswith("src/telemetry/"):
            continue  # The subsystem itself is exempt from 2 and 3.

        # Rule 2: no immediate deref of the global sink.
        for match in _UNGUARDED_DEREF_RE.finditer(code):
            violations.append(
                Violation(
                    rel,
                    line_of(code, match.start()),
                    LINT_NAME,
                    "unguarded traceSink()-> dereference: bind the "
                    "sink in an enabled-check first — "
                    "if (TraceSink *sink = traceSink())",
                )
            )

        # Rule 3: sink pointers bind only inside the guard.
        if rel == SINK_OWNER:
            continue
        for match in _SINK_BIND_RE.finditer(code):
            window = code[max(0, match.start() - 16) : match.end() + 48]
            if _GUARD_RE.search(window):
                continue
            violations.append(
                Violation(
                    rel,
                    line_of(code, match.start()),
                    LINT_NAME,
                    "TraceSink pointer bound outside the "
                    "if (TraceSink *sink = traceSink()) guard; only "
                    f"{SINK_OWNER} owns an unguarded sink",
                )
            )
    return violations
