"""Lock-discipline lint: RAII guards only, and no std::function on
hot paths.

Two invariants the concurrency work depends on:

1. Mutexes are held through RAII guards (lock_guard / unique_lock /
   scoped_lock / shared_lock), never via naked ``mutex.lock()`` /
   ``mutex.unlock()`` calls — an early return or exception between a
   naked pair deadlocks the pipeline.  Calling ``.lock()`` /
   ``.unlock()`` *on a guard object* (unique_lock's deliberate
   unlock-relock window in trace_cache.cc) is the sanctioned
   exception, so the lint resolves the receiver: a call is flagged
   only when the receiver variable was not declared as a guard type
   in the same file.
2. The event-queue hot path was converted from std::function to
   InplaceFunction (no heap allocation per scheduled event);
   reintroducing std::function there is a silent perf regression the
   benchmarks only catch later.  The ban list names the converted
   files; cold callbacks elsewhere may keep std::function.
3. The per-run data-plane structures (index buckets, history buffers,
   prefetch buffers, the flat MSHR map) allocate through the run
   arena (common/arena.hh: ArenaBuffer / ArenaAllocator); raw ``new``,
   ``malloc``-family calls, or ``make_unique`` in those files
   reintroduce the per-run global-heap traffic the arena exists to
   eliminate — and bypass the SIMD padded-read allocation contract
   (simd.hh) the arena-backed buffers encode.  ZeroedBuffer (calloc
   semantics for stat counters) stays sanctioned: it lives outside the
   banned files and is not a per-run hot-path allocation.
"""

from __future__ import annotations

import re

from lintlib import (
    Violation,
    iter_source_files,
    line_of,
    strip_comments,
    strip_strings,
)

LINT_NAME = "lock-discipline"

#: Files PR 5 converted to InplaceFunction; std::function is banned
#: here (hot path: per-event / per-record allocation).
HOT_PATH_NO_STD_FUNCTION = frozenset(
    {
        "src/sim/event_queue.hh",
        "src/common/types.hh",
    }
)

#: Arena-managed hot-path files (PR 10): every allocation here must go
#: through ArenaBuffer / ArenaAllocator, never the global heap.
ARENA_MANAGED_NO_RAW_ALLOC = frozenset(
    {
        "src/common/addr_map.hh",
        "src/core/history_buffer.cc",
        "src/core/history_buffer.hh",
        "src/core/index_bucket.hh",
        "src/prefetch/prefetch_buffer.cc",
        "src/prefetch/prefetch_buffer.hh",
    }
)

_GUARD_DECL_RE = re.compile(
    r"std::(?:unique_lock|lock_guard|scoped_lock|shared_lock)\s*"
    r"<[^>]*>\s+(\w+)"
)
_LOCK_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)")
_STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")
_RAW_ALLOC_RE = re.compile(
    r"\bnew\b|\b(?:malloc|calloc|realloc)\s*\(|\bmake_unique\s*<"
)


def check(root):
    violations = []
    for rel, text in iter_source_files(root):
        code = strip_strings(strip_comments(text))

        guard_names = set(_GUARD_DECL_RE.findall(code))
        for match in _LOCK_CALL_RE.finditer(code):
            receiver, method = match.group(1), match.group(2)
            if receiver in guard_names:
                continue
            violations.append(
                Violation(
                    rel,
                    line_of(code, match.start()),
                    LINT_NAME,
                    f"naked {receiver}.{method}(): hold mutexes "
                    "through an RAII guard (std::lock_guard / "
                    "std::unique_lock) so early returns and "
                    "exceptions cannot leak the lock",
                )
            )

        if rel in HOT_PATH_NO_STD_FUNCTION:
            for match in _STD_FUNCTION_RE.finditer(code):
                violations.append(
                    Violation(
                        rel,
                        line_of(code, match.start()),
                        LINT_NAME,
                        "std::function on a hot path converted to "
                        "InplaceFunction (common/inplace_function.hh)"
                        ": std::function heap-allocates per callback "
                        "and regresses the event queue",
                    )
                )

        if rel in ARENA_MANAGED_NO_RAW_ALLOC:
            for match in _RAW_ALLOC_RE.finditer(code):
                violations.append(
                    Violation(
                        rel,
                        line_of(code, match.start()),
                        LINT_NAME,
                        "raw heap allocation in an arena-managed "
                        "hot-path file: use ArenaBuffer / "
                        "ArenaAllocator (common/arena.hh) so per-run "
                        "storage comes from the run arena and honors "
                        "the SIMD padded-read contract (common/"
                        "simd.hh)",
                    )
                )
    return violations
