"""Self-test: lock-discipline linter flags naked mutex lock/unlock
and hot-path std::function, while allowing RAII-guard receivers."""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

import lock_discipline

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


class LockDisciplineTest(unittest.TestCase):
    def test_bad_fixture_findings(self):
        violations = lock_discipline.check(FIXTURES / "bad")
        found = {(v.path, v.line) for v in violations}
        expected = {
            ("src/driver/bad_lock.cc", 9),    # g_mutex.lock()
            ("src/driver/bad_lock.cc", 11),   # g_mutex.unlock()
            ("src/sim/event_queue.hh", 6),    # std::function
            ("src/core/index_bucket.hh", 11),  # raw new
            ("src/core/index_bucket.hh", 12),  # std::malloc
            ("src/core/index_bucket.hh", 13),  # make_unique
        }
        self.assertEqual(found, expected)

    def test_guard_receivers_are_not_flagged(self):
        violations = lock_discipline.check(FIXTURES / "bad")
        for violation in violations:
            self.assertNotIn("lock.lock", violation.message)
            self.assertNotIn("lock.unlock", violation.message)

    def test_hot_path_message_names_replacement(self):
        violations = lock_discipline.check(FIXTURES / "bad")
        message = next(
            v.message
            for v in violations
            if v.path == "src/sim/event_queue.hh"
        )
        self.assertIn("InplaceFunction", message)

    def test_raw_alloc_message_names_arena(self):
        messages = [
            v.message
            for v in lock_discipline.check(FIXTURES / "bad")
            if v.path == "src/core/index_bucket.hh"
        ]
        self.assertEqual(len(messages), 3)
        for message in messages:
            self.assertIn("ArenaBuffer", message)

    def test_clean_fixture_is_quiet(self):
        self.assertEqual(
            lock_discipline.check(FIXTURES / "clean"), []
        )


if __name__ == "__main__":
    unittest.main()
