// Fixture: seeded observer-only violations in a model-layer file.
#include "telemetry/trace_writer.hh"  // line 2: include in src/sim.

void
Core::retire()
{
    telemetry::emitCounter("core.retired", 1.0);  // line 7: call.
}
