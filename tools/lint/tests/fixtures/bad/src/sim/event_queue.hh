// Fixture: std::function reintroduced on the converted hot path.
#include <functional>

struct Event
{
    std::function<void()> callback;  // line 6: banned here.
};
