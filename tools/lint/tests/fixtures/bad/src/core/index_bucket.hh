// Fixture: raw heap allocations in an arena-managed hot-path file.
// Comments mentioning new or malloc() are fine; code is not.
#include <cstdlib>
#include <memory>

struct BadBucketStore
{
    void
    reset(unsigned buckets)
    {
        keys_ = new unsigned long[buckets];          // flagged
        scratch_ = std::malloc(buckets);             // flagged
        owner_ = std::make_unique<int>(7);           // flagged
    }

    unsigned long *keys_ = nullptr;
    void *scratch_ = nullptr;
    std::unique_ptr<int> owner_;
};
