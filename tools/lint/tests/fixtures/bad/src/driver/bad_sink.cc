// Fixture: unguarded sink use outside the model layer.
#include "telemetry/trace_writer.hh"

void
noteProgress()
{
    telemetry::traceSink()->counter("x", 1.0);  // line 7: deref.
    telemetry::TraceSink *sink =
        telemetry::traceSink();  // line 8: bind outside guard.
    (void)sink;
}
