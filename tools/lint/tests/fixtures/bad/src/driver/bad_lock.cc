// Fixture: seeded lock-discipline violations.
#include <mutex>

std::mutex g_mutex;

void
unsafeSection()
{
    g_mutex.lock();  // line 9: naked lock.
    // ... an early return here would leak the mutex ...
    g_mutex.unlock();  // line 11: naked unlock.
}

void
sanctioned()
{
    std::unique_lock<std::mutex> lock(g_mutex);
    lock.unlock();  // OK: receiver is an RAII guard.
    lock.lock();
}
