// Fixture: seeded fingerprint-safety violations. Line numbers are
// asserted by test_fingerprint_safety.py — keep them stable.
#include <string>

void
report(Report &out, const std::string &prefix)
{
    out.addMetric("model.coverage", 0.5);          // OK: model key.
    out.addMetric("sweep.wall_s", 1.25);           // line 9: _s
    out.addMetric(prefix + ".peak_rss_kb", 4096);  // line 10: _kb
    out.addMetric(prefix + ".records_per_sec",     // line 11: _per_sec
                  1e6);
    std::string json = "{\"timing\": {}}";         // line 13: timing key
}
