// Fixture: toResultRecord leaking the timing block into store
// records (fingerprint-safety rule 1).
#include <string>

results::ResultRecord
Report::toResultRecord() const
{
    results::ResultRecord record;
    record.scalars = metrics_;
    record.wall = timing_.wallSeconds;  // line 10: timing_ leak.
    return record;
}

std::string
Report::toJson() const
{
    std::string out = "{";
    out += "  \"timing\": {}";  // OK: report.cc is the renderer.
    return out;
}
