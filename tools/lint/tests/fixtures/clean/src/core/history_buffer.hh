// Fixture: arena-managed file allocating only through ArenaBuffer;
// a comment may say "new entry" or "malloc-free" without tripping.
#include "common/arena.hh"

struct CleanHistoryLog
{
    void
    reset(unsigned long entries)
    {
        blocks_.reset(entries + 3);  // padded per the scan contract
        marks_.reset(entries);
    }

    stms::ArenaBuffer<unsigned long> blocks_;
    stms::ArenaBuffer<unsigned char> marks_;
};
