// Fixture: sanctioned patterns that must NOT fire any linter.
#include <mutex>
#include <string>

void
report(Report &out)
{
    // Allowed: timing suffixes inside the bench allowlist file.
    out.addMetric("serial.wall_s", 1.0);
    out.addMetric("pipeline_speedup_ratio", 2.0);
    // Allowed: suffix-free model metrics anywhere.
    out.addMetric("model_digest_hi", 42.0);
}

void
guardedTelemetry()
{
    // Allowed: the idiomatic enabled-check guard.
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->counter("pipeline.depth", 3.0);
}

std::mutex g_mutex;

void
raiiOnly()
{
    std::lock_guard<std::mutex> guard(g_mutex);
    std::unique_lock<std::mutex> lock(g_mutex, std::defer_lock);
    lock.lock();    // Allowed: RAII guard receiver.
    lock.unlock();  // Allowed: RAII guard receiver.
}
