// Fixture: the allowlisted model-layer chokepoint may reference
// telemetry (sampled-series carrier members).
#include "telemetry/sampler.hh"

struct SimOutput
{
    telemetry::SampleSeries samples;
};
