"""Self-test: observer-only linter fires on telemetry leaking into
the model layer and on unguarded sink use; quiet on the guard idiom."""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

import observer_only

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


class ObserverOnlyTest(unittest.TestCase):
    def test_bad_fixture_findings(self):
        violations = observer_only.check(FIXTURES / "bad")
        found = {(v.path, v.line) for v in violations}
        self.assertIn(("src/sim/bad_probe.cc", 2), found)   # include
        self.assertIn(("src/sim/bad_probe.cc", 7), found)   # call
        self.assertIn(("src/driver/bad_sink.cc", 7), found)  # deref
        self.assertIn(("src/driver/bad_sink.cc", 8), found)  # bind

    def test_model_layer_message_points_at_chokepoints(self):
        violations = observer_only.check(FIXTURES / "bad")
        message = next(
            v.message
            for v in violations
            if v.path == "src/sim/bad_probe.cc"
        )
        self.assertIn("observer-only", message)
        self.assertIn("src/sim/system.hh", message)

    def test_clean_fixture_is_quiet(self):
        self.assertEqual(observer_only.check(FIXTURES / "clean"), [])


if __name__ == "__main__":
    unittest.main()
