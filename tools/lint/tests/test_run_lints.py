"""Self-test: the CLI gate exits nonzero on the broken fixture tree
with gcc-style file:line output, and zero on the clean tree."""

import contextlib
import io
import pathlib
import re
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

import run_lints

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


class RunLintsTest(unittest.TestCase):
    def _run(self, root):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = run_lints.main(["--root", str(root)])
        return code, out.getvalue(), err.getvalue()

    def test_bad_tree_fails_with_locations(self):
        code, out, err = self._run(FIXTURES / "bad")
        self.assertNotEqual(code, 0)
        self.assertIn("FAIL", err)
        # Every reported line is gcc-style path:line: [lint] message.
        lines = [l for l in out.splitlines() if l]
        self.assertTrue(lines)
        pattern = re.compile(r"^[\w/.-]+:\d+: \[[\w-]+\] .+$")
        for line in lines:
            self.assertRegex(line, pattern)
        self.assertIn("src/driver/bad_lock.cc:9:", out)
        self.assertIn("src/sim/bad_probe.cc:2:", out)

    def test_clean_tree_passes(self):
        code, out, _ = self._run(FIXTURES / "clean")
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_lint_selection(self):
        code, out, _ = self._run(FIXTURES / "bad")
        all_count = len([l for l in out.splitlines() if ":" in l])
        out2, err2 = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out2), \
                contextlib.redirect_stderr(err2):
            code2 = run_lints.main(
                ["--root", str(FIXTURES / "bad"),
                 "--lint", "lock-discipline"]
            )
        self.assertNotEqual(code2, 0)
        only = [l for l in out2.getvalue().splitlines()
                if "[lock-discipline]" in l]
        rest = [l for l in out2.getvalue().splitlines()
                if re.match(r"^[\w/.-]+:\d+:", l)
                and "[lock-discipline]" not in l]
        self.assertTrue(only)
        self.assertFalse(rest)
        self.assertGreater(all_count, len(only))


if __name__ == "__main__":
    unittest.main()
