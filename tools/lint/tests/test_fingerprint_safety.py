"""Self-test: fingerprint-safety linter fires on the seeded fixture
violations (exact file:line) and stays quiet on sanctioned patterns."""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

import fingerprint_safety

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


class FingerprintSafetyTest(unittest.TestCase):
    def test_bad_fixture_findings(self):
        violations = fingerprint_safety.check(FIXTURES / "bad")
        found = {(v.path, v.line) for v in violations}
        expected = {
            # Timing-suffixed metric keys outside the bench allowlist.
            ("src/driver/experiments/bad_metrics.cc", 9),
            ("src/driver/experiments/bad_metrics.cc", 10),
            ("src/driver/experiments/bad_metrics.cc", 11),
            # "timing" JSON key emitted outside the renderer.
            ("src/driver/experiments/bad_metrics.cc", 13),
            # toResultRecord touching timing_.
            ("src/driver/report.cc", 10),
        }
        self.assertEqual(found, expected)

    def test_messages_name_the_suffix(self):
        violations = fingerprint_safety.check(FIXTURES / "bad")
        by_line = {
            v.line: v.message
            for v in violations
            if v.path.endswith("bad_metrics.cc")
        }
        self.assertIn('"_s"', by_line[9])
        self.assertIn('"_kb"', by_line[10])
        self.assertIn('"_per_sec"', by_line[11])

    def test_clean_fixture_is_quiet(self):
        self.assertEqual(
            fingerprint_safety.check(FIXTURES / "clean"), []
        )


if __name__ == "__main__":
    unittest.main()
