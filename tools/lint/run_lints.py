#!/usr/bin/env python3
"""Run every repo-invariant linter over the tree (CI gate).

Usage: run_lints.py [--root DIR] [--lint NAME]...

Prints violations gcc-style (path:line: [lint] message) and exits
nonzero if any linter fires.  Stdlib only; registered in ctest as
``lint.invariants`` (label "lint") and run by the static-analysis CI
job.  See docs/STATIC_ANALYSIS.md for what each linter enforces and
how to handle a finding.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import fingerprint_safety  # noqa: E402
import lock_discipline  # noqa: E402
import observer_only  # noqa: E402

LINTERS = {
    module.LINT_NAME: module
    for module in (fingerprint_safety, observer_only, lock_discipline)
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: this script's repo)",
    )
    parser.add_argument(
        "--lint",
        action="append",
        choices=sorted(LINTERS),
        help="run only this linter (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    selected = args.lint or sorted(LINTERS)
    violations = []
    for name in selected:
        violations.extend(LINTERS[name].check(args.root))

    violations.sort(key=lambda v: (v.path, v.line, v.lint))
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"FAIL: {len(violations)} violation(s) across "
            f"{len(selected)} linter(s)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {len(selected)} linter(s), no violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
