"""Shared plumbing for the repo-invariant linters (tools/lint).

Each linter module exposes ``LINT_NAME`` and ``check(root) ->
list[Violation]`` where ``root`` is the repository root.  The linters
are deliberately regex/structure based (stdlib only, no compiler
needed): they enforce *repo conventions* — which identifiers may
appear where — not C++ semantics, which clang-tidy covers.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding, formatted gcc-style so editors can jump to it."""

    path: str  # Repo-relative, forward slashes.
    line: int  # 1-based.
    lint: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.lint}] {self.message}"


SOURCE_EXTENSIONS = (".cc", ".hh")


def iter_source_files(root, subdirs=("src",)):
    """Yield (relative_posix_path, text) for every C++ source file."""
    root = pathlib.Path(root)
    for subdir in subdirs:
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_EXTENSIONS and path.is_file():
                rel = path.relative_to(root).as_posix()
                yield rel, path.read_text(encoding="utf-8")


_COMMENT_RE = re.compile(
    r"//[^\n]*|/\*.*?\*/",
    re.DOTALL,
)


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line numbers."""

    def _blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _COMMENT_RE.sub(_blank, text)


_STRING_RE = re.compile(r'"(?:[^"\\\n]|\\.)*"')


def strip_strings(text: str) -> str:
    """Blank out string literal contents, preserving line numbers."""

    def _blank(match: re.Match) -> str:
        return '"' + " " * (len(match.group(0)) - 2) + '"'

    return _STRING_RE.sub(_blank, text)


def line_of(text: str, offset: int) -> int:
    """1-based line number of character ``offset`` in ``text``."""
    return text.count("\n", 0, offset) + 1


def extract_call(text: str, open_paren: int) -> str:
    """Return the argument text of a call whose '(' is at
    ``open_paren``, up to the matching ')' (best-effort: ignores
    parens inside string literals because callers pass
    comment-stripped but string-bearing text through strip_strings
    first when that matters)."""
    depth = 0
    for i in range(open_paren, len(text)):
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def function_body(text: str, signature_re: str) -> tuple[int, str]:
    """Find a function by signature regex; return (start_offset,
    body_text) of its brace-matched body, or (-1, "")."""
    match = re.search(signature_re, text)
    if not match:
        return -1, ""
    brace = text.find("{", match.end())
    if brace < 0:
        return -1, ""
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return brace, text[brace : i + 1]
    return -1, ""
