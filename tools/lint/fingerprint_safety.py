"""Fingerprint-safety lint: timing data must never reach store
records or fingerprints.

The repo's determinism story (docs/DETERMINISM.md, driver/report.hh)
hinges on one rule: wall-clock observations live under the JSON
``timing`` key and nowhere else.  ``Report::toResultRecord()`` — the
path into the result store, and from there into fingerprint-addressed
records and snapshot diffs — must never serialize the timing block or
sampled series, and experiments must not smuggle timing through
``addMetric`` keys.  The timing suffixes (``_s``, ``_per_sec``,
``_kb``, ``_ratio``, ``_chunks``) mark the deliberate exceptions:
bench experiments whose suffixed metrics downstream gates
(tools/bench_report.py) strip before comparing.

Checks:

1. ``Report::toResultRecord`` in src/driver/report.cc must not
   reference ``timing_`` or ``samples``.
2. The JSON keys ``\"timing\"`` / ``\"samples\"`` may be emitted only
   by src/driver/report.cc (the one renderer).
3. ``addMetric`` keys ending in a timing suffix are allowed only in
   the bench-experiment allowlist (their records are gated by
   tools/bench_report.py, which strips timing suffixes), plus the
   documented legacy exceptions that cannot be renamed without
   breaking stored-record compatibility.
"""

from __future__ import annotations

import re

from lintlib import (
    Violation,
    extract_call,
    function_body,
    iter_source_files,
    line_of,
    strip_comments,
)

LINT_NAME = "fingerprint-safety"

TIMING_SUFFIXES = ("_s", "_per_sec", "_kb", "_ratio", "_chunks")

#: Files whose timing-suffixed metrics are *meant* to be timing:
#: bench experiments gated by tools/bench_report.py, which strips
#: these suffixes before any determinism comparison.
TIMING_METRIC_FILES = frozenset(
    {
        "src/driver/experiments/perf_suite.cc",
        "src/driver/experiments/index_contention.cc",
    }
)

#: (file, key-literal) pairs grandfathered in: deterministic model
#: metrics whose names collide with a timing suffix.  Renaming them
#: would break stored-record and snapshot compatibility, so they are
#: pinned here instead — do NOT add new entries; pick a suffix-free
#: name for new model metrics.
LEGACY_KEY_EXCEPTIONS = frozenset(
    {
        ("src/driver/experiments/fig9_performance.cc",
         "mean_stms_ideal_ratio"),
    }
)

RENDERER = "src/driver/report.cc"

_ADD_METRIC_RE = re.compile(r"\baddMetric\s*(\()")
_STRING_RE = re.compile(r'"((?:[^"\\\n]|\\.)*)"')
_JSON_KEY_RE = re.compile(r'\\"(timing|samples)\\"')


def _first_argument(call_args: str) -> str:
    """The first top-level argument of a call's argument text."""
    depth = 0
    for i, ch in enumerate(call_args):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            return call_args[:i]
    return call_args


def _key_suffix(arg: str) -> str | None:
    """If the metric-key expression ends in a string literal, return
    that literal's text (the key's tail — concatenated prefixes can
    only prepend to it)."""
    literals = _STRING_RE.findall(arg)
    if not literals:
        return None
    if not arg.rstrip().endswith('"'):
        return None  # Key ends in a runtime expression; tail unknown.
    return literals[-1]


def check(root):
    violations = []
    for rel, text in iter_source_files(root):
        code = strip_comments(text)

        # Rule 2: only the renderer writes the timing/samples keys.
        if rel != RENDERER:
            for match in _JSON_KEY_RE.finditer(code):
                violations.append(
                    Violation(
                        rel,
                        line_of(code, match.start()),
                        LINT_NAME,
                        f'JSON key "{match.group(1)}" emitted outside '
                        f"{RENDERER}; timing data has exactly one "
                        "renderer so it can be excluded from "
                        "fingerprints in exactly one place",
                    )
                )

        # Rule 3: timing-suffixed metric keys only in bench files.
        for match in _ADD_METRIC_RE.finditer(code):
            args = extract_call(code, match.end() - 1)
            tail = _key_suffix(_first_argument(args))
            if tail is None:
                continue
            suffix = next(
                (s for s in TIMING_SUFFIXES if tail.endswith(s)), None
            )
            if suffix is None:
                continue
            if rel in TIMING_METRIC_FILES:
                continue
            if (rel, tail) in LEGACY_KEY_EXCEPTIONS:
                continue
            violations.append(
                Violation(
                    rel,
                    line_of(code, match.start()),
                    LINT_NAME,
                    f'metric key ending "...{tail}" uses timing '
                    f'suffix "{suffix}": timing belongs under the '
                    "timing key (Report::setTiming), not in metrics "
                    "that reach toResultRecord() and fingerprinted "
                    "store records",
                )
            )

    # Rule 1: toResultRecord never touches timing or samples.
    renderer_path = None
    renderer_text = None
    for rel, text in iter_source_files(root):
        if rel == RENDERER:
            renderer_path, renderer_text = rel, text
            break
    if renderer_text is not None:
        code = strip_comments(renderer_text)
        start, body = function_body(
            code, r"Report::toResultRecord\s*\(\s*\)\s*const"
        )
        if start >= 0:
            for needle in ("timing_", "samples"):
                offset = body.find(needle)
                if offset >= 0:
                    violations.append(
                        Violation(
                            renderer_path,
                            line_of(code, start + offset),
                            LINT_NAME,
                            f"toResultRecord() references {needle}: "
                            "timing/samples must never reach store "
                            "records or fingerprints",
                        )
                    )
    return violations
