/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global time-ordered queue of callbacks, in the gem5
 * tradition. Ties are broken by insertion order so that runs are
 * exactly deterministic.
 */

#ifndef STMS_SIM_EVENT_QUEUE_HH
#define STMS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/inplace_function.hh"
#include "common/types.hh"

namespace stms
{

/** Time-ordered queue of scheduled callbacks. */
class EventQueue
{
  public:
    /**
     * Inline-storage callback: scheduling an event never allocates.
     * 64 bytes covers every simulator capture (the largest is a
     * memory-controller completion callback plus its data-ready
     * tick); larger captures fail to compile rather than silently
     * regressing to per-event mallocs.
     */
    using Callback = InplaceFunction<void(), 64>;

    /** Initial heap capacity: big enough that steady-state simulation
     *  never regrows the backing vector, small enough (~48KB) to be
     *  irrelevant next to a System's other allocations. */
    static constexpr std::size_t kInitialCapacity = 1024;

    EventQueue() { heap_.reserve(kInitialCapacity); }

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void scheduleAt(Cycle when, Callback fn);

    /** Schedule @p fn @p delay cycles in the future. */
    void
    schedule(Cycle delay, Callback fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** Run until the queue is empty. Returns the final tick. */
    Cycle run();

    /** Run until the queue is empty or @p limit is reached. */
    Cycle runUntil(Cycle limit);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Cycle tick;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.tick != b.tick)
                return a.tick > b.tick;
            return a.seq > b.seq;
        }
    };

    /**
     * Explicit binary heap (std::push_heap/pop_heap over a vector)
     * rather than std::priority_queue: the vector can be reserved
     * once instead of regrowing mid-simulation, and pop_heap lets the
     * callback be moved out without const_cast-ing the queue's top.
     */
    std::vector<Event> heap_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace stms

#endif // STMS_SIM_EVENT_QUEUE_HH
