#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{

CmpSystem::CmpSystem(const SimConfig &config,
                     trace_io::TraceSource &source)
    : config_(config)
{
    build(source);
}

CmpSystem::CmpSystem(const SimConfig &config, const Trace &trace)
    : config_(config),
      ownedSource_(std::make_unique<trace_io::MemoryTraceSource>(trace))
{
    build(*ownedSource_);
}

void
CmpSystem::build(trace_io::TraceSource &source)
{
    const std::uint32_t num_cores = source.numCores();
    stms_assert(num_cores > 0, "trace has no cores");
    config_.memory.numCores = num_cores;

    memory_ = std::make_unique<MemorySystem>(events_, config_.memory);
    // The warmup barrier fires on the exact systemwide issue that
    // crosses warmupRecords; cores bump the shared counter inline
    // (no per-record callback).
    barrier_.threshold = config_.warmupRecords > 0
                             ? config_.warmupRecords
                             : IssueBarrier::kNever;
    barrier_.context = this;
    barrier_.fire = [](void *context) {
        static_cast<CmpSystem *>(context)->warmupReached();
    };
    cursors_.reserve(num_cores);
    cores_.reserve(num_cores);
    for (CoreId c = 0; c < num_cores; ++c) {
        cursors_.push_back(source.openLane(c));
        cores_.push_back(std::make_unique<TraceCore>(
            events_, *memory_, c, config_.core, *cursors_.back()));
        cores_.back()->attachBarrier(&barrier_);
    }
    instrSnapshot_.assign(num_cores, 0);

    if (config_.sampleEvery > 0) {
        sampler_.configure(config_.sampleEvery);
        registerSampleCounters();
        memory_->setSampleHook(
            config_.sampleEvery,
            [](void *context) {
                static_cast<CmpSystem *>(context)->takeSample();
            },
            this);
    }
}

void
CmpSystem::registerSampleCounters()
{
    // Probes only read; column order here defines the series schema
    // documented in docs/OBSERVABILITY.md.
    MemorySystem *mem = memory_.get();
    sampler_.addCounter("coverage",
                        [mem] { return mem->stats().coverage(); });
    sampler_.addCounter("full_coverage", [mem] {
        return mem->stats().fullCoverage();
    });
    sampler_.addCounter("accuracy", [this] {
        std::uint64_t issued = 0;
        std::uint64_t covering = 0;
        for (std::uint32_t pf = 0; pf < numPrefetchers_; ++pf) {
            const PrefetcherStats &stats = memory_->prefetcherStats(pf);
            issued += stats.issued;
            covering += stats.useful + stats.partial;
        }
        return issued == 0 ? 0.0
                           : static_cast<double>(covering) /
                                 static_cast<double>(issued);
    });
    sampler_.addCounter("prefetches_issued", [this] {
        std::uint64_t issued = 0;
        for (std::uint32_t pf = 0; pf < numPrefetchers_; ++pf)
            issued += memory_->prefetcherStats(pf).issued;
        return static_cast<double>(issued);
    });
    sampler_.addCounter("mlp", [mem] { return mem->meanMlp(); });
    sampler_.addCounter("mshr_occupancy", [mem] {
        return static_cast<double>(mem->mshrOccupancy());
    });
    sampler_.addCounter("mem_queue_depth", [mem] {
        return static_cast<double>(mem->memBackend().pendingRequests());
    });
    sampler_.addCounter("event_queue_depth", [this] {
        return static_cast<double>(events_.pending());
    });
    sampler_.addCounter("offchip_reads", [mem] {
        return static_cast<double>(mem->stats().offchipReads);
    });
    sampler_.addCounter("rowbuf_demand_hit_rate", [mem] {
        return mem->memBackend().rowStats().demandHitRate();
    });
    sampler_.addCounter("rowbuf_meta_hit_rate", [mem] {
        return mem->memBackend().rowStats().metaHitRate();
    });
}

void
CmpSystem::takeSample()
{
    sampler_.sample(memory_->stats().accesses, events_.now());
}

void
CmpSystem::addPrefetcher(Prefetcher *prefetcher)
{
    memory_->addPrefetcher(prefetcher);
    ++numPrefetchers_;
}

void
CmpSystem::warmupReached()
{
    // One-shot: park the threshold so the cores' compare never fires
    // again.
    barrier_.threshold = IssueBarrier::kNever;
    if (warmupDone_)
        return;
    warmupDone_ = true;
    measureStart_ = events_.now();
    // Sampling follows the measurement-window convention all other
    // stats use: warmup-era rows are dropped and resetStats()
    // re-bases the epoch threshold.
    sampler_.discardRows();
    memory_->resetStats();
    for (CoreId c = 0; c < cores_.size(); ++c)
        instrSnapshot_[c] = cores_[c]->instructionsCommitted();
}

SimResult
CmpSystem::run()
{
    if (config_.warmupRecords == 0)
        warmupDone_ = true;

    for (auto &core : cores_)
        core->start();

    if (config_.maxCycles > 0)
        events_.runUntil(config_.maxCycles);
    else
        events_.run();

    for (auto &core : cores_) {
        if (!core->done()) {
            stms_warn("core %u did not finish (issued %llu records, "
                      "lane not exhausted)",
                      core->id(),
                      static_cast<unsigned long long>(core->issued()));
        }
    }

    SimResult result;
    Cycle finish = 0;
    std::uint64_t instructions = 0;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        finish = std::max(finish, cores_[c]->stats().finishTick);
        instructions += cores_[c]->instructionsCommitted() -
                        instrSnapshot_[c];
    }
    result.cycles = finish > measureStart_ ? finish - measureStart_ : 0;
    result.instructions = instructions;
    result.ipc = result.cycles == 0
                     ? 0.0
                     : static_cast<double>(instructions) /
                       static_cast<double>(result.cycles);

    result.mem = memory_->stats();
    result.traffic = memory_->memStats();
    result.meanMlp = memory_->meanMlp();
    for (CoreId c = 0; c < cores_.size(); ++c)
        result.mlpPerCore.push_back(memory_->mlp(c));
    for (std::uint32_t pf = 0; pf < numPrefetchers_; ++pf)
        result.prefetchers.push_back(memory_->prefetcherStats(pf));
    result.memUtilization =
        memory_->memBackend().utilization(result.cycles);
    result.rowBuffer = memory_->memBackend().rowStats();
    result.memChannels = memory_->memBackend().channels();

    result.coverage = result.mem.coverage();
    result.fullCoverage = result.mem.fullCoverage();
    const std::uint64_t useful =
        result.traffic.bytesFor(TrafficClass::DemandRead) +
        result.traffic.bytesFor(TrafficClass::DemandWriteback);
    result.overheadPerDataByte =
        useful == 0 ? 0.0
                    : static_cast<double>(result.traffic.overheadBytes()) /
                      static_cast<double>(useful);
    result.samples = sampler_.take();
    return result;
}

} // namespace stms
