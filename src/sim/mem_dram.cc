#include "sim/mem_dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{
namespace
{

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

} // namespace

DramBackend::DramBackend(EventQueue &events, const DramConfig &config)
    : events_(events), config_(config), channels_(config.channels)
{
    stms_assert(config_.base.transferCycles > 0,
                "transferCycles must be > 0");
    stms_assert(config_.channels > 0, "dram backend needs >= 1 channel");
    stms_assert(config_.ranks > 0 && config_.banksPerRank > 0,
                "dram backend needs >= 1 bank");
    stms_assert(config_.rowBytes >= kBlockBytes &&
                    config_.rowBytes % kBlockBytes == 0,
                "rowBytes must be a positive multiple of 64");
    stms_assert(config_.tRcd > 0 && config_.tCas > 0 && config_.tRp > 0,
                "tRCD/tCAS/tRP must be > 0");
    rowBlocks_ = config_.rowBytes / kBlockBytes;
    banksPerChannel_ = config_.ranks * config_.banksPerRank;
    for (Channel &channel : channels_)
        channel.banks.resize(banksPerChannel_);
}

void
DramBackend::decode(Addr addr, std::uint32_t &channel, std::uint32_t &bank,
                    std::uint64_t &row) const
{
    // Fine-grained block interleave across channels; within a channel,
    // sequential blocks fill a row before moving to the next bank, and
    // consecutive rows land in different banks. This gives sequential
    // streams (the history buffer) both row locality and bank-level
    // parallelism.
    const Addr block = blockNumber(addr);
    channel = static_cast<std::uint32_t>(block % config_.channels);
    const Addr local = block / config_.channels;
    bank = static_cast<std::uint32_t>((local / rowBlocks_) %
                                      banksPerChannel_);
    row = local / (static_cast<std::uint64_t>(rowBlocks_) *
                   banksPerChannel_);
}

void
DramBackend::request(TrafficClass cls, Priority prio, Addr addr,
                     std::uint32_t blocks, Callback done)
{
    account(stats_, cls, prio, blocks);

    if (config_.base.functional) {
        if (done)
            done(events_.now());
        return;
    }

    std::uint32_t channelIdx = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    decode(addr, channelIdx, bank, row);

    Channel &channel = channels_[channelIdx];
    Request request{cls,  prio, blocks, std::move(done),
                    events_.now(), bank, row};
    auto &queue = (prio == Priority::High) ? channel.high : channel.low;
    queue.push_back(std::move(request));
    issueScan(channelIdx);
}

std::size_t
DramBackend::selectIssuable(const std::deque<Request> &queue,
                            const Channel &channel) const
{
    const Cycle now = events_.now();
    // FR-FCFS within a priority class: oldest row-hit first, then
    // oldest request with a ready bank.
    std::size_t fallback = kNone;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &request = queue[i];
        const Bank &bank = channel.banks[request.bank];
        if (bank.readyAt > now)
            continue;
        if (bank.openRow == request.row)
            return i;
        if (fallback == kNone)
            fallback = i;
    }
    return fallback;
}

void
DramBackend::issueScan(std::uint32_t channelIdx)
{
    Channel &channel = channels_[channelIdx];
    while (true) {
        std::size_t pick = selectIssuable(channel.high, channel);
        auto *queue = &channel.high;
        if (pick == kNone) {
            pick = selectIssuable(channel.low, channel);
            queue = &channel.low;
        }
        if (pick == kNone)
            break;
        Request request = std::move((*queue)[pick]);
        queue->erase(queue->begin() +
                     static_cast<std::ptrdiff_t>(pick));
        issue(channel, std::move(request));
    }
    scheduleKick(channelIdx);
}

void
DramBackend::issue(Channel &channel, Request request)
{
    Bank &bank = channel.banks[request.bank];
    const Cycle start = events_.now();
    const auto cls = static_cast<std::size_t>(request.cls);

    Cycle latency = 0;
    bool activates = false;
    if (bank.openRow == request.row) {
        // Row hit: column access only.
        latency = config_.tCas;
        ++row_.hits[cls];
    } else if (bank.openRow == kNoRow) {
        // Bank precharged: activate then access.
        latency = config_.tRcd + config_.tCas;
        bank.lastActAt = start;
        activates = true;
        ++row_.empties[cls];
    } else {
        // Row conflict: precharge (respecting tRAS since the last
        // activate), re-activate, then access.
        const Cycle prechargeAt =
            std::max(start, bank.lastActAt + config_.tRas);
        const Cycle activateAt = prechargeAt + config_.tRp;
        latency = (activateAt - start) + config_.tRcd + config_.tCas;
        bank.lastActAt = activateAt;
        activates = true;
        ++row_.conflicts[cls];
    }
    if (activates)
        bank.openRow = request.row;

    const Cycle data_at = start + latency;
    const Cycle occupancy = static_cast<Cycle>(request.blocks) *
                            config_.base.transferCycles;
    // Bus slots are reserved in issue order and never overlap, so
    // busyCycles <= elapsed x channels by construction.
    const Cycle bus_start = std::max(data_at, channel.busFreeAt);
    channel.busFreeAt = bus_start + occupancy;
    stats_.busyCycles += occupancy;

    bank.readyAt = data_at;
    if (config_.policy == PagePolicy::Closed) {
        bank.readyAt = data_at + config_.tRp;
        bank.openRow = kNoRow;
    }

    if (request.prio == Priority::Low)
        lowDelay_.sample(start - request.arrival);

    const Cycle done_at = bus_start + occupancy;
    if (request.done) {
        events_.scheduleAt(done_at,
                           [cb = std::move(request.done), done_at]() {
                               cb(done_at);
                           });
    }
}

void
DramBackend::scheduleKick(std::uint32_t channelIdx)
{
    Channel &channel = channels_[channelIdx];
    Cycle wake = kNoKick;
    for (const auto *queue : {&channel.high, &channel.low})
        for (const Request &request : *queue)
            wake = std::min(wake,
                            channel.banks[request.bank].readyAt);
    if (wake == kNoKick || wake >= channel.kickAt)
        return;
    channel.kickAt = wake;
    events_.scheduleAt(wake, [this, channelIdx, wake]() {
        Channel &ch = channels_[channelIdx];
        if (ch.kickAt != wake)
            return;
        ch.kickAt = kNoKick;
        issueScan(channelIdx);
    });
}

void
DramBackend::resetStats()
{
    stats_ = MemCtrlStats{};
    row_ = RowBufferStats{};
    lowDelay_.reset();
}

double
DramBackend::utilization(Cycle elapsed) const
{
    const double capacity = static_cast<double>(elapsed) *
                            static_cast<double>(config_.channels);
    return elapsed == 0 ? 0.0
                        : static_cast<double>(stats_.busyCycles) / capacity;
}

} // namespace stms
