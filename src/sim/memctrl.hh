/**
 * @file
 * Main-memory controller model.
 *
 * Models the paper's memory system (Table 1): 45 ns access latency and
 * 28.4 GB/s peak bandwidth in 64-byte transfers. A single shared data
 * channel serializes transfers; demand requests always win arbitration
 * over prefetch and predictor meta-data traffic, which the paper finds
 * "essential to minimize queueing-related stalls" (Sec. 4.3).
 *
 * Per-class byte counters feed the traffic-overhead figures (Figs. 1,
 * 7, 8).
 */

#ifndef STMS_SIM_MEMCTRL_HH
#define STMS_SIM_MEMCTRL_HH

#include <array>
#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"

namespace stms
{

/** Memory-controller timing and arbitration configuration. */
struct MemCtrlConfig
{
    /** DRAM access latency in cycles (45 ns at 4 GHz). */
    Cycle accessLatency = 180;
    /** Channel occupancy per 64-byte transfer (28.4 GB/s at 4 GHz). */
    Cycle transferCycles = 9;
    /**
     * Functional mode: callbacks fire with zero latency and no
     * bandwidth contention, but traffic is still counted. Used for
     * trace-based coverage sweeps (the paper's own methodology mixes
     * trace-based and cycle-accurate runs, Sec. 5.1).
     */
    bool functional = false;
};

/** Per-class traffic and queueing statistics. */
struct MemCtrlStats
{
    std::array<std::uint64_t, kNumTrafficClasses> requests{};
    std::array<std::uint64_t, kNumTrafficClasses> bytes{};
    std::uint64_t highPrioRequests = 0;
    std::uint64_t lowPrioRequests = 0;
    /** Total cycles the channel was occupied transferring data. */
    Cycle busyCycles = 0;

    std::uint64_t
    bytesFor(TrafficClass cls) const
    {
        return bytes[static_cast<std::size_t>(cls)];
    }

    /** Total bytes across all classes. */
    std::uint64_t totalBytes() const;

    /** Bytes of everything except demand reads and writebacks. */
    std::uint64_t overheadBytes() const;
};

/**
 * Priority-arbitrated single-channel memory controller.
 *
 * Requests complete via callback. Reads deliver data accessLatency
 * cycles after the transfer is granted; the channel stays busy for
 * transferCycles per block, which is what bounds peak bandwidth.
 */
class MemController
{
  public:
    /** Inline-storage completion callback (no per-request malloc). */
    using Callback = TimedCallback;

    MemController(EventQueue &events, const MemCtrlConfig &config);

    /**
     * Issue a request of @p blocks cache blocks.
     *
     * @param cls traffic class for accounting.
     * @param prio arbitration priority (demand = High).
     * @param blocks number of 64-byte blocks moved.
     * @param done invoked when data is available (reads) or the write
     *             has drained; may be null for fire-and-forget writes.
     */
    void request(TrafficClass cls, Priority prio, std::uint32_t blocks,
                 Callback done);

    const MemCtrlStats &stats() const { return stats_; }
    void
    resetStats()
    {
        stats_ = MemCtrlStats{};
        lowDelay_.reset();
    }

    /** Queue-delay distribution of low-priority traffic (cycles). */
    const LinearHistogram &lowPrioDelay() const { return lowDelay_; }

    /** Requests queued awaiting the channel (telemetry probe). */
    std::size_t
    pendingRequests() const
    {
        return highQueue_.size() + lowQueue_.size();
    }

    /** Fraction of elapsed time the channel was busy. */
    double utilization(Cycle elapsed) const;

  private:
    struct Request
    {
        TrafficClass cls;
        std::uint32_t blocks;
        Callback done;
        Cycle arrival;
    };

    void grantNext();
    void startTransfer(Request request);

    EventQueue &events_;
    MemCtrlConfig config_;
    std::deque<Request> highQueue_;
    std::deque<Request> lowQueue_;
    bool channelBusy_ = false;
    MemCtrlStats stats_;
    LinearHistogram lowDelay_{64, 64};
};

} // namespace stms

#endif // STMS_SIM_MEMCTRL_HH
