#include "sim/run.hh"

#include "common/arena.hh"
#include "prefetch/stride.hh"

namespace stms
{

SimConfig
defaultSimConfig(bool functional)
{
    SimConfig config;  // Defaults already copy Table 1.
    config.memory.mem.functional = functional;
    if (functional) {
        // Trace-based mode: timing out of the picture, coverage only.
        config.memory.l1Latency = 0;
        config.memory.l2Latency = 0;
        config.memory.prefetchBufLatency = 0;
    }
    return config;
}

RunOutput
runTrace(const Trace &trace, const RunConfig &run_config)
{
    trace_io::MemoryTraceSource source(trace);
    return runTrace(source, run_config);
}

RunOutput
runTrace(trace_io::TraceSource &source, const RunConfig &run_config)
{
    // Every run's short-lived structures (bucket stores, history
    // buffers, MSHR maps, issued sets) bump-allocate from this
    // thread's run arena; the outermost scope resets it on exit, so
    // back-to-back runs in a sweep reuse the same blocks instead of
    // hitting the global allocator — the contention the --pipeline
    // worker threads used to serialize on. RunOutput holds only plain
    // values, so nothing arena-backed escapes the scope.
    ScopedRunArena arena_scope;
    SimConfig config = run_config.sim;
    config.warmupRecords = static_cast<std::uint64_t>(
        run_config.warmupFraction *
        static_cast<double>(source.totalRecords()));

    CmpSystem system(config, source);
    StridePrefetcher stride;
    system.addPrefetcher(&stride);

    std::optional<CorrelationPrefetcher> correlation;
    if (run_config.correlation) {
        correlation.emplace(*run_config.correlation);
        system.addPrefetcher(&*correlation);
    }

    std::optional<StmsPrefetcher> stms;
    if (run_config.stms) {
        stms.emplace(*run_config.stms);
        system.addPrefetcher(&*stms);
    }

    RunOutput out;
    out.sim = system.run();
    out.stride = out.sim.prefetchers.at(0);
    if (stms) {
        // STMS is the last registered prefetcher.
        out.stms = out.sim.prefetchers.back();
        out.stmsInternal = stms->stats();
        out.stmsMetaBytes = stms->metaFootprintBytes();
        const double full = static_cast<double>(out.stms.useful);
        const double partial = static_cast<double>(out.stms.partial);
        const double uncovered =
            static_cast<double>(out.sim.mem.offchipReads);
        const double denom = full + partial + uncovered;
        if (denom > 0) {
            out.stmsCoverage = (full + partial) / denom;
            out.stmsFullCoverage = full / denom;
            out.stmsPartialCoverage = partial / denom;
        }
    }
    return out;
}

RunOutput
runTrace(const Trace &trace, const SimConfig &sim_config,
         const std::optional<StmsConfig> &stms_config,
         double warmup_fraction)
{
    RunConfig config;
    config.sim = sim_config;
    config.stms = stms_config;
    config.warmupFraction = warmup_fraction;
    return runTrace(trace, config);
}

double
speedup(const SimResult &base, const SimResult &opt)
{
    if (base.ipc <= 0.0)
        return 0.0;
    return opt.ipc / base.ipc - 1.0;
}

double
usefulBaseBytes(const SimResult &result)
{
    double useful = static_cast<double>(
        result.traffic.bytesFor(TrafficClass::DemandRead) +
        result.traffic.bytesFor(TrafficClass::DemandWriteback));
    for (const auto &pf : result.prefetchers)
        useful += static_cast<double>(pf.useful + pf.partial) *
                  kBlockBytes;
    return useful;
}

double
overheadPerBaseByte(const RunOutput &out)
{
    const auto &traffic = out.sim.traffic;
    const double useful = usefulBaseBytes(out.sim);
    double overhead = static_cast<double>(
        traffic.bytesFor(TrafficClass::MetaLookup) +
        traffic.bytesFor(TrafficClass::MetaUpdate) +
        traffic.bytesFor(TrafficClass::MetaRecord));
    for (const auto &pf : out.sim.prefetchers)
        overhead += static_cast<double>(pf.erroneous) * kBlockBytes;
    return useful > 0.0 ? overhead / useful : 0.0;
}

} // namespace stms
