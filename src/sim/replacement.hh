/**
 * @file
 * Cache replacement policies.
 *
 * The paper's caches use LRU; Random and tree-PLRU are provided for
 * the cache substrate's completeness and for ablation tests. Policies
 * operate on per-set state so the cache model stays a flat array.
 */

#ifndef STMS_SIM_REPLACEMENT_HH
#define STMS_SIM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace stms
{

/** Replacement policy selector. */
enum class ReplPolicy : std::uint8_t
{
    Lru,
    Random,
    TreePlru,
};

/**
 * Per-set replacement state shared by all policies.
 *
 * For LRU, `age[way]` holds a recency stamp (higher = more recent).
 * For tree-PLRU, `tree` holds the direction bits.
 */
class ReplacementState
{
  public:
    ReplacementState(ReplPolicy policy, std::uint32_t ways,
                     std::uint64_t seed = 1);

    /** Record a touch (hit or fill) of @p way. Inline: this runs once
     *  per cache access on the simulation's hottest path. */
    void
    touch(std::uint32_t way)
    {
        if (policy_ == ReplPolicy::Lru) {
            age_[way] = ++clock_;
            return;
        }
        touchSlow(way);
    }

    /** Pick a victim among valid ways; all ways assumed valid. */
    std::uint32_t victim();

    ReplPolicy policy() const { return policy_; }
    std::uint32_t ways() const { return ways_; }

    /** Recency rank of @p way: 0 = MRU (LRU policy only). */
    std::uint32_t recencyRank(std::uint32_t way) const;

  private:
    void touchSlow(std::uint32_t way);

    ReplPolicy policy_;
    std::uint32_t ways_;
    std::vector<std::uint64_t> age_;
    std::vector<std::uint8_t> tree_;
    std::uint64_t clock_ = 0;
    Rng rng_;
};

} // namespace stms

#endif // STMS_SIM_REPLACEMENT_HH
