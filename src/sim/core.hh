/**
 * @file
 * Trace-driven core model.
 *
 * Approximates the paper's 4-wide out-of-order core (Table 1) at the
 * level that matters for memory streaming: accesses issue in program
 * order separated by their think time, independent misses overlap up
 * to a window limit, and a record flagged dependent must wait for the
 * previous record's data (pointer chasing). This yields each
 * workload's inherent MLP (Table 2) from the trace's dependence
 * structure.
 *
 * L1 hits are processed synchronously ahead of global event time
 * (L1s are core-private); anything deeper is funneled through the
 * event queue at its issue tick so that shared-resource arbitration
 * stays time-ordered.
 *
 * The core consumes its records through a trace_io::RecordCursor —
 * strictly forward — so the same model runs in-memory synthetic
 * traces and traces streamed from disk in bounded chunks without ever
 * materializing the whole lane. Records are dispatched in batches:
 * the core walks the cursor's current contiguous window with a plain
 * pointer and pays the virtual chunk()/consume() pair once per chunk
 * instead of a peek()/next() pair per record.
 */

#ifndef STMS_SIM_CORE_HH
#define STMS_SIM_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/memory_system.hh"
#include "trace_io/trace_source.hh"
#include "workload/trace.hh"

namespace stms
{

/** Core model configuration. */
struct CoreConfig
{
    /** Max in-flight beyond-L1 accesses (ROB/LSQ/MSHR proxy). */
    std::uint32_t window = 16;
    /** Max cycles a synchronous burst may run ahead of global time. */
    Cycle burstQuantum = 2048;
};

/**
 * Issue-count barrier shared by the cores of one system.
 *
 * The warmup reset must trigger on the exact issue that crosses the
 * threshold, systemwide. Routing every issue through a std::function
 * hook cost an indirect call per record; this is a bare counter
 * compare instead, with the (one-shot) crossing action behind a plain
 * function pointer. After firing, the threshold is parked at kNever
 * so the compare stays a never-taken branch.
 */
struct IssueBarrier
{
    static constexpr std::uint64_t kNever =
        std::numeric_limits<std::uint64_t>::max();

    std::uint64_t issued = 0;        ///< Records issued, all cores.
    std::uint64_t threshold = kNever;
    void (*fire)(void *) = nullptr;  ///< Crossing action (one-shot).
    void *context = nullptr;
};

/** Per-core performance statistics. */
struct CoreStats
{
    std::uint64_t records = 0;       ///< Accesses issued.
    std::uint64_t instructions = 0;  ///< Committed (think+1 per record).
    Cycle finishTick = 0;            ///< Completion of the last record.
    Cycle windowStalls = 0;          ///< Times the window filled.
    Cycle depStalls = 0;             ///< Times a dependence blocked issue.
};

/** One trace-driven core. */
class TraceCore
{
  public:
    /**
     * Drive the core from @p records, which the caller keeps alive
     * for the core's lifetime. The cursor is consumed strictly
     * forward; a streaming cursor therefore holds at most one chunk.
     */
    TraceCore(EventQueue &events, MemorySystem &memory, CoreId id,
              const CoreConfig &config,
              trace_io::RecordCursor &records);

    /** Convenience: drive the core from an in-memory record vector. */
    TraceCore(EventQueue &events, MemorySystem &memory, CoreId id,
              const CoreConfig &config,
              const std::vector<TraceRecord> &trace);

    /** Schedule the first issue; call once before EventQueue::run(). */
    void start();

    bool done() const { return atEnd_ && retired_ == index_; }
    const CoreStats &stats() const { return stats_; }
    CoreId id() const { return id_; }

    /** Records issued so far (for warmup barriers). */
    std::uint64_t issued() const { return index_; }

    /** Snapshot instruction count (for measurement windows). */
    std::uint64_t instructionsCommitted() const
    {
        return stats_.instructions;
    }

    /** Invoked when the core retires its final record. */
    void onFinished(std::function<void()> callback)
    {
        finishedCallback_ = std::move(callback);
    }

    /** Count issues into @p barrier (systemwide warmup accounting). */
    void attachBarrier(IssueBarrier *barrier) { barrier_ = barrier; }

    /** Invoked after every issued record (test hook; production code
     *  uses the cheaper IssueBarrier). */
    void onIssue(std::function<void()> callback)
    {
        issueCallback_ = std::move(callback);
    }

  private:
    static constexpr Cycle kPending = std::numeric_limits<Cycle>::max();
    static constexpr std::size_t kRingSize = 128;
    /** Leading chunk addresses forwarded per refill as a host-cache
     *  warm-up hint (MemorySystem::hintUpcoming). */
    static constexpr std::size_t kHintRecords = 64;

    void advance();
    void accessDone(std::uint64_t record_index, Cycle done_tick);
    void noteRetired(Cycle done_tick);

    /** Retire the current record and step the batch window; refills
     *  from the cursor when the window empties. */
    void
    takeRecord()
    {
        ++batchPos_;
        ++batchTaken_;
        if (batchPos_ == batchEnd_)
            refillBatch();
    }

    void refillBatch();

    EventQueue &events_;
    MemorySystem &memory_;
    CoreId id_;
    CoreConfig config_;
    /** Owns the cursor only for the vector-convenience constructor. */
    std::unique_ptr<trace_io::RecordCursor> ownedCursor_;
    trace_io::RecordCursor &cursor_;
    /** Current batch window [batchPos_, batchEnd_) of the cursor. */
    const TraceRecord *batchPos_ = nullptr;
    const TraceRecord *batchEnd_ = nullptr;
    /** Records taken from the window but not yet consume()d. */
    std::size_t batchTaken_ = 0;
    bool atEnd_ = false;         ///< Cursor exhausted (all issued).
    /** Reused address scratch for the per-refill prefetch hint. */
    std::vector<Addr> hintScratch_;

    std::uint64_t index_ = 0;    ///< Next record to issue.
    std::uint64_t retired_ = 0;  ///< Records fully complete.
    Cycle localTime_ = 0;        ///< Pipeline-front local clock.
    std::uint32_t outstanding_ = 0;
    bool waitWindow_ = false;
    bool waitDep_ = false;
    bool eventScheduled_ = false;
    bool finishedNotified_ = false;

    /** Completion tick per record, indexed modulo kRingSize. */
    std::vector<Cycle> completion_;

    CoreStats stats_;
    IssueBarrier *barrier_ = nullptr;
    std::function<void()> finishedCallback_;
    std::function<void()> issueCallback_;
};

} // namespace stms

#endif // STMS_SIM_CORE_HH
