/**
 * @file
 * Trace-driven core model.
 *
 * Approximates the paper's 4-wide out-of-order core (Table 1) at the
 * level that matters for memory streaming: accesses issue in program
 * order separated by their think time, independent misses overlap up
 * to a window limit, and a record flagged dependent must wait for the
 * previous record's data (pointer chasing). This yields each
 * workload's inherent MLP (Table 2) from the trace's dependence
 * structure.
 *
 * L1 hits are processed synchronously ahead of global event time
 * (L1s are core-private); anything deeper is funneled through the
 * event queue at its issue tick so that shared-resource arbitration
 * stays time-ordered.
 */

#ifndef STMS_SIM_CORE_HH
#define STMS_SIM_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/memory_system.hh"
#include "workload/trace.hh"

namespace stms
{

/** Core model configuration. */
struct CoreConfig
{
    /** Max in-flight beyond-L1 accesses (ROB/LSQ/MSHR proxy). */
    std::uint32_t window = 16;
    /** Max cycles a synchronous burst may run ahead of global time. */
    Cycle burstQuantum = 2048;
};

/** Per-core performance statistics. */
struct CoreStats
{
    std::uint64_t records = 0;       ///< Accesses issued.
    std::uint64_t instructions = 0;  ///< Committed (think+1 per record).
    Cycle finishTick = 0;            ///< Completion of the last record.
    Cycle windowStalls = 0;          ///< Times the window filled.
    Cycle depStalls = 0;             ///< Times a dependence blocked issue.
};

/** One trace-driven core. */
class TraceCore
{
  public:
    TraceCore(EventQueue &events, MemorySystem &memory, CoreId id,
              const CoreConfig &config,
              const std::vector<TraceRecord> &trace);

    /** Schedule the first issue; call once before EventQueue::run(). */
    void start();

    bool done() const { return retired_ == trace_.size(); }
    const CoreStats &stats() const { return stats_; }
    CoreId id() const { return id_; }

    /** Records issued so far (for warmup barriers). */
    std::uint64_t issued() const { return index_; }

    /** Snapshot instruction count (for measurement windows). */
    std::uint64_t instructionsCommitted() const
    {
        return stats_.instructions;
    }

    /** Invoked when the core retires its final record. */
    void onFinished(std::function<void()> callback)
    {
        finishedCallback_ = std::move(callback);
    }

    /** Invoked after every issued record (for warmup accounting). */
    void onIssue(std::function<void()> callback)
    {
        issueCallback_ = std::move(callback);
    }

  private:
    static constexpr Cycle kPending = std::numeric_limits<Cycle>::max();
    static constexpr std::size_t kRingSize = 128;

    void advance();
    void accessDone(std::uint64_t record_index, Cycle done_tick);
    void noteRetired(Cycle done_tick);

    EventQueue &events_;
    MemorySystem &memory_;
    CoreId id_;
    CoreConfig config_;
    const std::vector<TraceRecord> &trace_;

    std::uint64_t index_ = 0;    ///< Next record to issue.
    std::uint64_t retired_ = 0;  ///< Records fully complete.
    Cycle localTime_ = 0;        ///< Pipeline-front local clock.
    std::uint32_t outstanding_ = 0;
    bool waitWindow_ = false;
    bool waitDep_ = false;
    bool eventScheduled_ = false;
    bool finishedNotified_ = false;

    /** Completion tick per record, indexed modulo kRingSize. */
    std::vector<Cycle> completion_;

    CoreStats stats_;
    std::function<void()> finishedCallback_;
    std::function<void()> issueCallback_;
};

} // namespace stms

#endif // STMS_SIM_CORE_HH
