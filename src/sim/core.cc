#include "sim/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{

TraceCore::TraceCore(EventQueue &events, MemorySystem &memory, CoreId id,
                     const CoreConfig &config,
                     trace_io::RecordCursor &records)
    : events_(events), memory_(memory), id_(id), config_(config),
      cursor_(records), completion_(kRingSize, kPending)
{
    stms_assert(config.window > 0, "core window must be nonzero");
    stms_assert(config.window + 2 < kRingSize,
                "core window %u too large for completion ring",
                config.window);
    // Priming the batch here pre-loads a streaming lane's first
    // chunk and makes done() correct for empty lanes before start().
    refillBatch();
}

TraceCore::TraceCore(EventQueue &events, MemorySystem &memory, CoreId id,
                     const CoreConfig &config,
                     const std::vector<TraceRecord> &trace)
    : events_(events), memory_(memory), id_(id), config_(config),
      ownedCursor_(std::make_unique<trace_io::VectorCursor>(trace)),
      cursor_(*ownedCursor_), completion_(kRingSize, kPending)
{
    stms_assert(config.window > 0, "core window must be nonzero");
    stms_assert(config.window + 2 < kRingSize,
                "core window %u too large for completion ring",
                config.window);
    refillBatch();
}

void
TraceCore::refillBatch()
{
    if (batchTaken_ > 0) {
        cursor_.consume(batchTaken_);
        batchTaken_ = 0;
    }
    const std::span<const TraceRecord> window = cursor_.chunk();
    batchPos_ = window.data();
    batchEnd_ = batchPos_ + window.size();
    atEnd_ = window.empty();

    // Hand the chunk's leading addresses to the prefetchers as a
    // host-cache warm-up hint (batched index-bucket prefetch). The
    // hint is bounded — warming more than the host cache holds would
    // evict the very lines the next probes want — and architecturally
    // inert, so chunk size still never changes model output.
    if (!window.empty()) {
        const std::size_t count =
            std::min(window.size(), kHintRecords);
        hintScratch_.clear();
        for (std::size_t i = 0; i < count; ++i)
            hintScratch_.push_back(window[i].addr);
        memory_.hintUpcoming(id_, hintScratch_);
    }
}

void
TraceCore::start()
{
    events_.schedule(0, [this]() { advance(); });
}

void
TraceCore::advance()
{
    while (!atEnd_) {
        // Keep synchronous bursts from running too far ahead of the
        // global clock; shared-resource ordering stays approximate
        // only within this quantum.
        if (localTime_ > events_.now() + config_.burstQuantum) {
            if (!eventScheduled_) {
                eventScheduled_ = true;
                events_.scheduleAt(localTime_, [this]() {
                    eventScheduled_ = false;
                    advance();
                });
            }
            return;
        }

        // Read the record through the batch pointer. Stall paths below
        // return WITHOUT taking it, so it is re-read on resume; the
        // fields are copied to locals before takeRecord() because a
        // refill may recycle a streaming cursor's chunk buffer.
        const TraceRecord &rec = *batchPos_;
        const Addr addr = rec.addr;
        const std::uint16_t think = rec.think;

        // Pointer-chasing dependence: wait for the previous record.
        Cycle dep_ready = 0;
        if (rec.isDependent() && index_ > 0) {
            const Cycle prev = completion_[(index_ - 1) % kRingSize];
            if (prev == kPending) {
                waitDep_ = true;
                ++stats_.depStalls;
                return;
            }
            dep_ready = prev;
        }

        const bool is_write = rec.isWrite();
        if (!is_write && outstanding_ >= config_.window) {
            waitWindow_ = true;
            ++stats_.windowStalls;
            return;
        }

        const Cycle issue_tick = std::max(localTime_, dep_ready) + think;
        const std::uint64_t rec_idx = index_;

        ++index_;
        ++stats_.records;
        stats_.instructions += static_cast<std::uint64_t>(think) + 1;
        takeRecord();
        localTime_ = issue_tick;
        if (barrier_ && ++barrier_->issued == barrier_->threshold)
            barrier_->fire(barrier_->context);
        if (issueCallback_)
            issueCallback_();

        // Fast path: L1 hits are core-private and need no global
        // ordering, so they complete inline, possibly ahead of time.
        if (memory_.tryL1(id_, addr, is_write)) {
            const Cycle done_tick = issue_tick + memory_.l1Latency();
            completion_[rec_idx % kRingSize] = done_tick;
            noteRetired(done_tick);
            continue;
        }

        if (is_write) {
            // Stores retire through the write buffer: the core does
            // not wait, but the access still moves data underneath.
            const Cycle done_tick = issue_tick + memory_.l1Latency();
            completion_[rec_idx % kRingSize] = done_tick;
            events_.scheduleAt(std::max(issue_tick, events_.now()),
                               [this, addr]() {
                                   memory_.demandAccess(id_, addr, true,
                                                        nullptr);
                               });
            noteRetired(done_tick);
            continue;
        }

        // Loads that miss the L1 go through the event queue so the
        // shared L2 and memory controller see them in time order.
        completion_[rec_idx % kRingSize] = kPending;
        ++outstanding_;
        events_.scheduleAt(
            std::max(issue_tick, events_.now()),
            [this, addr, rec_idx]() {
                memory_.demandAccess(
                    id_, addr, false,
                    [this, rec_idx](Cycle done_tick, AccessOutcome) {
                        accessDone(rec_idx, done_tick);
                    });
            });
    }

    if (done() && !finishedNotified_) {
        finishedNotified_ = true;
        if (finishedCallback_)
            finishedCallback_();
    }
}

void
TraceCore::accessDone(std::uint64_t record_index, Cycle done_tick)
{
    stms_assert(outstanding_ > 0, "core %u completion underflow", id_);
    --outstanding_;
    completion_[record_index % kRingSize] = done_tick;
    noteRetired(done_tick);

    if (waitWindow_ || waitDep_) {
        waitWindow_ = false;
        waitDep_ = false;
        // The stalled record issues no earlier than the completion
        // that unblocked it.
        localTime_ = std::max(localTime_, done_tick);
    }
    advance();

    if (done() && !finishedNotified_) {
        finishedNotified_ = true;
        if (finishedCallback_)
            finishedCallback_();
    }
}

void
TraceCore::noteRetired(Cycle done_tick)
{
    ++retired_;
    stats_.finishTick = std::max(stats_.finishTick, done_tick);
}

} // namespace stms
