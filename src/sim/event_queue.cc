#include "sim/event_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{

void
EventQueue::scheduleAt(Cycle when, Callback fn)
{
    stms_assert(when >= now_,
                "event scheduled in the past (%llu < %llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    heap_.push_back(Event{when, nextSeq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Cycle
EventQueue::run()
{
    return runUntil(std::numeric_limits<Cycle>::max());
}

Cycle
EventQueue::runUntil(Cycle limit)
{
    while (!heap_.empty() && heap_.front().tick <= limit) {
        // pop_heap moves the minimum element to the back, where the
        // callback can be moved out before the vector shrinks.
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Event event = std::move(heap_.back());
        heap_.pop_back();
        now_ = event.tick;
        ++executed_;
        event.fn();
    }
    return now_;
}

} // namespace stms
