#include "sim/event_queue.hh"

#include "common/log.hh"

namespace stms
{

void
EventQueue::scheduleAt(Cycle when, Callback fn)
{
    stms_assert(when >= now_,
                "event scheduled in the past (%llu < %llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

Cycle
EventQueue::run()
{
    return runUntil(std::numeric_limits<Cycle>::max());
}

Cycle
EventQueue::runUntil(Cycle limit)
{
    while (!heap_.empty() && heap_.top().tick <= limit) {
        // Move the callback out before popping so it survives the pop.
        Event event = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = event.tick;
        ++executed_;
        event.fn();
    }
    return now_;
}

} // namespace stms
