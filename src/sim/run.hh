/**
 * @file
 * One-call simulation entry point.
 *
 * Every experiment in the evaluation is some set of (trace,
 * configuration) points; runTrace() executes one such point — build a
 * CmpSystem, attach the base stride prefetcher plus the configured
 * optional prefetchers, run the trace, and derive the metrics every
 * driver consumes (coverage splits, speedup inputs, overhead
 * normalizations). This used to live in bench/harness.cc; it now sits
 * in src/sim so the driver subsystem, examples, and tests share one
 * implementation, and so independent runs can execute concurrently
 * (a run touches no global state beyond its own System/EventQueue).
 */

#ifndef STMS_SIM_RUN_HH
#define STMS_SIM_RUN_HH

#include <optional>

#include "core/stms.hh"
#include "prefetch/correlation_table.hh"
#include "sim/system.hh"
#include "workload/trace.hh"

namespace stms
{

/** One complete experiment point: system + attached prefetchers. */
struct RunConfig
{
    SimConfig sim;
    /** Attach an STMS prefetcher when present. */
    std::optional<StmsConfig> stms;
    /** Attach a single-table correlation prefetcher (Fig. 1 rivals). */
    std::optional<CorrelationConfig> correlation;
    /** Fraction of records issued before the stats reset. */
    double warmupFraction = 0.25;
};

/** Everything one simulation run yields for reporting. */
struct RunOutput
{
    SimResult sim;
    PrefetcherStats stride;
    PrefetcherStats stms;       ///< Zeroed when no STMS was attached.
    StmsStats stmsInternal;     ///< Copy of STMS-internal stats.
    std::uint64_t stmsMetaBytes = 0;

    /** STMS coverage in excess of the stride prefetcher. */
    double stmsCoverage = 0.0;
    /** Fully covered fraction only (Fig. 9 split). */
    double stmsFullCoverage = 0.0;
    /** Partially covered fraction only. */
    double stmsPartialCoverage = 0.0;
};

/** Table-1 system configuration. @p functional zeroes memory timing
 *  for trace-based coverage sweeps (Sec. 5.1 methodology). */
SimConfig defaultSimConfig(bool functional = false);

/** Execute one experiment point on @p trace. Thread-safe: concurrent
 *  calls on distinct or shared (const) traces do not interact. */
RunOutput runTrace(const Trace &trace, const RunConfig &config);

/**
 * Execute one experiment point on @p source — the streaming twin of
 * the Trace overload, used by the driver to replay on-disk traces in
 * bounded chunks. The source is consumed (each lane opened once);
 * build a fresh source per run. When the source cannot report its
 * total record count (e.g. a piped ChampSim trace), no warmup
 * barrier is placed regardless of RunConfig::warmupFraction.
 */
RunOutput runTrace(trace_io::TraceSource &source,
                   const RunConfig &config);

/** Back-compat convenience matching the old bench-harness signature. */
RunOutput runTrace(const Trace &trace, const SimConfig &sim_config,
                   const std::optional<StmsConfig> &stms_config,
                   double warmup_fraction = 0.25);

/** Relative speedup of @p opt over @p base (0.10 = +10%). */
double speedup(const SimResult &base, const SimResult &opt);

/**
 * Overhead bytes per base-system data byte, the paper's Fig. 7/8
 * normalization: useful traffic counts demand fetches, writebacks,
 * and consumed prefetches (data the base system would move anyway);
 * overhead counts meta-data traffic and erroneous prefetches.
 */
double overheadPerBaseByte(const RunOutput &out);

/** Base-system useful bytes (demand + writeback + consumed
 *  prefetches), the denominator of the Fig. 7/8 normalization. */
double usefulBaseBytes(const SimResult &result);

} // namespace stms

#endif // STMS_SIM_RUN_HH
