#include "sim/cache.hh"

#include "common/log.hh"

namespace stms
{

Cache::Cache(const CacheConfig &config)
    : name_(config.name), ways_(config.ways)
{
    stms_assert(config.sizeBytes % (kBlockBytes * config.ways) == 0,
                "%s: size %llu not divisible by ways*blockSize",
                name_.c_str(),
                static_cast<unsigned long long>(config.sizeBytes));
    sets_ = config.sizeBytes / (kBlockBytes * config.ways);
    stms_assert(isPowerOfTwo(sets_), "%s: set count %llu not a power of 2",
                name_.c_str(), static_cast<unsigned long long>(sets_));
    lines_.resize(sets_ * ways_);
    repl_.reserve(sets_);
    for (std::uint64_t s = 0; s < sets_; ++s)
        repl_.emplace_back(config.policy, ways_, config.seed + s);
}

Eviction
Cache::fill(Addr block_addr, bool dirty)
{
    block_addr = blockAlign(block_addr);
    Eviction evicted;
    const std::uint64_t set = setIndex(block_addr);
    Line *base = &lines_[set * ways_];

    // Refill of a block that is already present just updates state.
    std::uint32_t way = 0;
    if (Line *line = findLine(block_addr, &way)) {
        line->dirty |= dirty;
        repl_[set].touch(way);
        return evicted;
    }

    // Prefer an invalid way.
    std::uint32_t victim_way = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == ways_) {
        victim_way = repl_[set].victim();
        Line &victim = base[victim_way];
        evicted.valid = true;
        evicted.dirty = victim.dirty;
        evicted.blockAddr = victim.tag;
        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.dirtyEvictions;
    }

    base[victim_way] = Line{block_addr, true, dirty};
    repl_[set].touch(victim_way);
    ++stats_.fills;
    return evicted;
}

bool
Cache::invalidate(Addr block_addr)
{
    if (Line *line = findLine(blockAlign(block_addr))) {
        line->valid = false;
        line->dirty = false;
        line->tag = kInvalidAddr;
        ++stats_.invalidations;
        return true;
    }
    return false;
}

void
Cache::markDirty(Addr block_addr)
{
    if (Line *line = findLine(blockAlign(block_addr)))
        line->dirty = true;
}

std::uint64_t
Cache::occupancy() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace stms
