/**
 * @file
 * Pluggable main-memory backend interface.
 *
 * The paper's evaluation answers "is STMS meta-data traffic
 * affordable?" against a single fixed-latency memory model (Table 1).
 * The backend interface turns that model into an axis: the same
 * priority-arbitrated request stream can be served by the original
 * fixed-latency controller, a multi-channel queued model, or a
 * bank/row-timing DRAM model, so experiments can report which
 * conclusions survive a change of memory technology.
 *
 * All backends share the request() contract of MemController: demand
 * requests (Priority::High) always win arbitration over prefetch and
 * meta-data traffic, completion callbacks fire exactly once, and
 * per-class byte accounting is identical across backends.
 */

#ifndef STMS_SIM_MEM_BACKEND_HH
#define STMS_SIM_MEM_BACKEND_HH

#include <array>
#include <memory>
#include <string>

#include "common/types.hh"
#include "sim/memctrl.hh"

namespace stms
{

/** Which memory model serves requests. */
enum class MemBackendKind : std::uint8_t
{
    Fixed,   ///< Original fixed-latency single channel (MemController).
    Queued,  ///< Per-channel queues, address-interleaved channels.
    Dram,    ///< Ranks x banks with row-buffer timing.
};

/** Human-readable backend name ("fixed", "queued", "dram"). */
const char *memBackendKindName(MemBackendKind kind);

/** Row-buffer page-management policy of the DRAM backend. */
enum class PagePolicy : std::uint8_t
{
    Open,    ///< Rows stay open after an access (locality pays off).
    Closed,  ///< Auto-precharge after every access.
};

/** Default DRAM backend timing, in core cycles at 4 GHz (Table 1's
 *  45 ns flat latency decomposes as tRP + tRCD + tCAS = 180 cycles,
 *  i.e. the fixed model charges every access the full row-conflict
 *  path; see docs/ARCHITECTURE.md for the worked timing example). */
inline constexpr Cycle kDramDefaultRcd = 60;
inline constexpr Cycle kDramDefaultCas = 60;
inline constexpr Cycle kDramDefaultRp = 60;
inline constexpr Cycle kDramDefaultRas = 160;
inline constexpr std::uint32_t kDramDefaultRowBytes = 8192;
inline constexpr std::uint32_t kDramDefaultRanks = 1;
inline constexpr std::uint32_t kDramDefaultBanksPerRank = 8;
/** Default channel count of the queued backend. */
inline constexpr std::uint32_t kQueuedDefaultChannels = 2;

/**
 * Parsed form of a --mem-backend NAME[,key=val...] specification.
 *
 * Zero-valued fields mean "inherit": timing fields inherit from
 * MemCtrlConfig, structure fields take the kind's default. The parser
 * normalizes explicit values equal to the effective default back to
 * zero, so canonical() is a true canonical form: two spellings of the
 * same configuration always fingerprint identically, and the all-
 * default spec canonicalizes away entirely (isDefault()).
 */
struct MemBackendSpec
{
    MemBackendKind kind = MemBackendKind::Fixed;
    /** Fixed/queued access latency override (0 = MemCtrlConfig). */
    Cycle accessLatency = 0;
    /** Per-block transfer/burst cycles override (0 = MemCtrlConfig). */
    Cycle transferCycles = 0;
    /** Channel count (0 = kind default: fixed 1, queued 2, dram 1). */
    std::uint32_t channels = 0;
    /** DRAM ranks per channel (0 = default 1). */
    std::uint32_t ranks = 0;
    /** DRAM banks per rank (0 = default 8). */
    std::uint32_t banksPerRank = 0;
    /** DRAM row-buffer size in bytes (0 = default 8192). */
    std::uint32_t rowBytes = 0;
    /** DRAM timing overrides (0 = kDramDefault*). */
    Cycle tRcd = 0;
    Cycle tCas = 0;
    Cycle tRp = 0;
    Cycle tRas = 0;
    /** DRAM page policy (open is the default and canonicalizes away). */
    PagePolicy policy = PagePolicy::Open;

    /** True for the default-constructed spec (plain fixed backend). */
    bool isDefault() const { return canonical() == "fixed"; }

    /**
     * Canonical spelling: kind name plus ",key=value" for every
     * non-inherited field, keys in a fixed order. This string is what
     * joins the result-store fingerprint.
     */
    std::string canonical() const;
};

/**
 * Parse "NAME[,key=val...]" into @p spec. On failure returns false
 * and leaves a human-readable message in @p error; @p spec is only
 * modified on success.
 */
bool parseMemBackendSpec(const std::string &text, MemBackendSpec &spec,
                         std::string &error);

/** Per-class row-buffer outcome counters (DRAM backend only). */
struct RowBufferStats
{
    std::array<std::uint64_t, kNumTrafficClasses> hits{};
    std::array<std::uint64_t, kNumTrafficClasses> empties{};
    std::array<std::uint64_t, kNumTrafficClasses> conflicts{};

    std::uint64_t
    accessesFor(TrafficClass cls) const
    {
        const auto i = static_cast<std::size_t>(cls);
        return hits[i] + empties[i] + conflicts[i];
    }

    std::uint64_t totalAccesses() const;

    /** Row-hit fraction over demand reads + writebacks (0 if none). */
    double demandHitRate() const;
    /** Row-hit fraction over prefetch + meta-data classes. */
    double metaHitRate() const;
};

/**
 * Abstract memory backend: the timing model behind MemorySystem.
 *
 * request() carries the block-aligned physical address so backends
 * with internal structure (channels, banks, rows) can decode it;
 * the fixed-latency backend ignores it.
 */
class MemBackend
{
  public:
    using Callback = TimedCallback;

    virtual ~MemBackend() = default;

    /**
     * Issue a request of @p blocks cache blocks at @p addr.
     *
     * Contract shared by all backends: per-class accounting happens
     * unconditionally; in functional mode @p done fires immediately;
     * otherwise completions within one priority class targeting the
     * same address are FIFO, and High priority wins arbitration over
     * Low whenever both compete for the same resource.
     */
    virtual void request(TrafficClass cls, Priority prio, Addr addr,
                         std::uint32_t blocks, Callback done) = 0;

    virtual const MemCtrlStats &stats() const = 0;
    /** Zero all counters: stats, queue-delay histogram, row stats. */
    virtual void resetStats() = 0;

    /** Queue-delay distribution of low-priority traffic (cycles). */
    virtual const LinearHistogram &lowPrioDelay() const = 0;

    /** Fraction of elapsed x channels the data bus was busy. */
    virtual double utilization(Cycle elapsed) const = 0;

    /** Backend name for reports ("fixed", "queued", "dram"). */
    virtual const char *kindName() const = 0;

    /** Number of independent data channels. */
    virtual std::uint32_t channels() const = 0;

    /** Row-buffer outcome counters; all-zero for row-less backends. */
    virtual RowBufferStats rowStats() const { return {}; }

    /** Requests queued (not yet granted a channel) right now — a
     *  telemetry probe for the epoch sampler's queue-depth series. */
    virtual std::size_t pendingRequests() const { return 0; }

  protected:
    /** Shared per-request accounting (identical across backends). */
    static void account(MemCtrlStats &stats, TrafficClass cls,
                        Priority prio, std::uint32_t blocks);
};

/**
 * Fixed-latency backend: wraps the original MemController unchanged,
 * ignoring addresses. Bit-identical to the pre-backend simulator by
 * construction (the conformance and identity tests assert it).
 */
class FixedLatencyBackend final : public MemBackend
{
  public:
    FixedLatencyBackend(EventQueue &events, const MemCtrlConfig &config)
        : ctrl_(events, config)
    {
    }

    void
    request(TrafficClass cls, Priority prio, Addr, std::uint32_t blocks,
            Callback done) override
    {
        ctrl_.request(cls, prio, blocks, std::move(done));
    }

    const MemCtrlStats &stats() const override { return ctrl_.stats(); }
    void resetStats() override { ctrl_.resetStats(); }
    const LinearHistogram &
    lowPrioDelay() const override
    {
        return ctrl_.lowPrioDelay();
    }
    double
    utilization(Cycle elapsed) const override
    {
        return ctrl_.utilization(elapsed);
    }
    const char *kindName() const override { return "fixed"; }
    std::uint32_t channels() const override { return 1; }
    std::size_t
    pendingRequests() const override
    {
        return ctrl_.pendingRequests();
    }

  private:
    MemController ctrl_;
};

/**
 * Build the backend described by @p spec. Timing fields inherit from
 * @p config where the spec leaves them zero; MemCtrlConfig::functional
 * is honored by every backend (zero-latency completion, traffic still
 * counted), which is what keeps functional-mode experiments such as
 * fig7 byte-identical across backends.
 */
std::unique_ptr<MemBackend> makeMemBackend(EventQueue &events,
                                           const MemBackendSpec &spec,
                                           const MemCtrlConfig &config);

} // namespace stms

#endif // STMS_SIM_MEM_BACKEND_HH
