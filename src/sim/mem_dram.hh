/**
 * @file
 * Bank/row-timing DRAM backend.
 *
 * Models channels x ranks x banks with per-bank row buffers and
 * tRCD/tCAS/tRP/tRAS timing, scheduled FR-FCFS with the paper's
 * demand-over-meta-data arbitration layered on top: whenever a bank
 * becomes available, pending requests are considered in the order
 * (demand row-hit, demand FIFO, low-priority row-hit, low-priority
 * FIFO). Row-buffer outcomes are counted per traffic class, which is
 * what lets mem_tech_sweep compare the locality of the meta-data
 * stream (sequential history-buffer appends) against demand misses.
 *
 * Simplifications, documented in docs/ARCHITECTURE.md: a request's
 * blocks burst from one (bank, row); ranks only multiply the bank
 * count; the data bus is reserved at issue time, so bus contention
 * delays completion but not bank scheduling.
 */

#ifndef STMS_SIM_MEM_DRAM_HH
#define STMS_SIM_MEM_DRAM_HH

#include <deque>
#include <vector>

#include "sim/mem_backend.hh"

namespace stms
{

/** DRAM geometry and timing; defaults match kDramDefault* (60/60/60
 *  cycles tRCD/tCAS/tRP = the fixed model's 180-cycle latency charged
 *  only on the row-conflict path). */
struct DramConfig
{
    /** Carries functional mode and the per-block burst cycles. */
    MemCtrlConfig base;
    std::uint32_t channels = 1;
    std::uint32_t ranks = kDramDefaultRanks;
    std::uint32_t banksPerRank = kDramDefaultBanksPerRank;
    std::uint32_t rowBytes = kDramDefaultRowBytes;
    Cycle tRcd = kDramDefaultRcd;
    Cycle tCas = kDramDefaultCas;
    Cycle tRp = kDramDefaultRp;
    Cycle tRas = kDramDefaultRas;
    PagePolicy policy = PagePolicy::Open;
};

class DramBackend final : public MemBackend
{
  public:
    DramBackend(EventQueue &events, const DramConfig &config);

    void request(TrafficClass cls, Priority prio, Addr addr,
                 std::uint32_t blocks, Callback done) override;

    const MemCtrlStats &stats() const override { return stats_; }
    void resetStats() override;
    const LinearHistogram &
    lowPrioDelay() const override
    {
        return lowDelay_;
    }
    double utilization(Cycle elapsed) const override;
    const char *kindName() const override { return "dram"; }
    std::uint32_t
    channels() const override
    {
        return config_.channels;
    }
    RowBufferStats rowStats() const override { return row_; }

    std::size_t
    pendingRequests() const override
    {
        std::size_t pending = 0;
        for (const Channel &channel : channels_)
            pending += channel.high.size() + channel.low.size();
        return pending;
    }

  private:
    /** Sentinel: no row open in this bank. */
    static constexpr std::uint64_t kNoRow =
        std::numeric_limits<std::uint64_t>::max();
    /** Sentinel: no wake-up event pending for this channel. */
    static constexpr Cycle kNoKick = std::numeric_limits<Cycle>::max();

    struct Request
    {
        TrafficClass cls;
        Priority prio;
        std::uint32_t blocks;
        Callback done;
        Cycle arrival;
        std::uint32_t bank;
        std::uint64_t row;
    };

    struct Bank
    {
        std::uint64_t openRow = kNoRow;
        /** Earliest cycle the bank can accept another access. */
        Cycle readyAt = 0;
        /** Activation time of the open row (for tRAS). */
        Cycle lastActAt = 0;
    };

    struct Channel
    {
        std::deque<Request> high;
        std::deque<Request> low;
        std::vector<Bank> banks;
        /** Bus is reserved back-to-back; next free cycle. */
        Cycle busFreeAt = 0;
        Cycle kickAt = kNoKick;
    };

    void decode(Addr addr, std::uint32_t &channel, std::uint32_t &bank,
                std::uint64_t &row) const;
    /** Issue every currently-serviceable request on @p channel. */
    void issueScan(std::uint32_t channelIdx);
    /** Pick the best issuable request; kNone if banks are all busy. */
    std::size_t selectIssuable(const std::deque<Request> &queue,
                               const Channel &channel) const;
    void issue(Channel &channel, Request request);
    void scheduleKick(std::uint32_t channelIdx);

    EventQueue &events_;
    DramConfig config_;
    std::uint32_t rowBlocks_;
    std::uint32_t banksPerChannel_;
    std::vector<Channel> channels_;
    MemCtrlStats stats_;
    RowBufferStats row_;
    LinearHistogram lowDelay_{64, 64};
};

} // namespace stms

#endif // STMS_SIM_MEM_DRAM_HH
