#include "sim/memctrl.hh"

#include "common/log.hh"

namespace stms
{

std::uint64_t
MemCtrlStats::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::uint64_t value : bytes)
        total += value;
    return total;
}

std::uint64_t
MemCtrlStats::overheadBytes() const
{
    return totalBytes() -
           bytesFor(TrafficClass::DemandRead) -
           bytesFor(TrafficClass::DemandWriteback);
}

MemController::MemController(EventQueue &events, const MemCtrlConfig &config)
    : events_(events), config_(config)
{
    stms_assert(config_.transferCycles > 0, "transferCycles must be > 0");
}

void
MemController::request(TrafficClass cls, Priority prio, std::uint32_t blocks,
                       Callback done)
{
    stms_assert(blocks > 0, "memory request of zero blocks");
    const auto idx = static_cast<std::size_t>(cls);
    ++stats_.requests[idx];
    stats_.bytes[idx] += static_cast<std::uint64_t>(blocks) * kBlockBytes;
    if (prio == Priority::High)
        ++stats_.highPrioRequests;
    else
        ++stats_.lowPrioRequests;

    if (config_.functional) {
        // Zero-latency completion; traffic still counted above.
        if (done)
            done(events_.now());
        return;
    }

    Request request{cls, blocks, std::move(done), events_.now()};
    auto &queue = (prio == Priority::High) ? highQueue_ : lowQueue_;
    queue.push_back(std::move(request));
    if (!channelBusy_)
        grantNext();
}

void
MemController::grantNext()
{
    if (!highQueue_.empty()) {
        Request request = std::move(highQueue_.front());
        highQueue_.pop_front();
        startTransfer(std::move(request));
    } else if (!lowQueue_.empty()) {
        Request request = std::move(lowQueue_.front());
        lowQueue_.pop_front();
        lowDelay_.sample(events_.now() - request.arrival);
        startTransfer(std::move(request));
    } else {
        channelBusy_ = false;
    }
}

void
MemController::startTransfer(Request request)
{
    channelBusy_ = true;
    const Cycle occupancy =
        static_cast<Cycle>(request.blocks) * config_.transferCycles;
    stats_.busyCycles += occupancy;

    // Data is available one access latency plus the transfer time after
    // the grant; the channel frees up after the transfer alone, so
    // later requests pipeline behind the DRAM access of this one.
    const Cycle data_ready =
        events_.now() + config_.accessLatency + occupancy;
    if (request.done) {
        events_.scheduleAt(data_ready,
                           [cb = std::move(request.done), data_ready]() {
                               cb(data_ready);
                           });
    }
    events_.schedule(occupancy, [this]() { grantNext(); });
}

double
MemController::utilization(Cycle elapsed) const
{
    return elapsed == 0 ? 0.0
                        : static_cast<double>(stats_.busyCycles) /
                          static_cast<double>(elapsed);
}

} // namespace stms
