#include "sim/memory_system.hh"

#include "common/log.hh"

namespace stms
{

void
MlpMeter::accumulate(Cycle now)
{
    if (outstanding_ > 0 && now > lastChange_) {
        const Cycle delta = now - lastChange_;
        area_ += static_cast<double>(outstanding_) *
                 static_cast<double>(delta);
        busy_ += delta;
    }
    lastChange_ = now;
}

void
MlpMeter::start(Cycle now)
{
    accumulate(now);
    ++outstanding_;
}

void
MlpMeter::finish(Cycle now)
{
    stms_assert(outstanding_ > 0, "MLP meter underflow");
    accumulate(now);
    --outstanding_;
}

double
MlpMeter::mlp() const
{
    return busy_ == 0 ? 0.0 : area_ / static_cast<double>(busy_);
}

void
MlpMeter::reset(Cycle now)
{
    area_ = 0.0;
    busy_ = 0;
    lastChange_ = now;
}

MemorySystem::MemorySystem(EventQueue &events,
                           const MemorySystemConfig &config)
    : events_(events), config_(config), l2_(config.l2),
      mem_(makeMemBackend(events, config.backend, config.mem))
{
    stms_assert(config.numCores > 0, "need at least one core");
    l1s_.reserve(config.numCores);
    for (std::uint32_t c = 0; c < config.numCores; ++c) {
        CacheConfig l1cfg = config.l1;
        l1cfg.name = "l1." + std::to_string(c);
        l1cfg.seed = config.l1.seed + c * 7919;
        l1s_.push_back(std::make_unique<Cache>(l1cfg));
    }
    mlpMeters_.resize(config.numCores);
}

void
MemorySystem::addPrefetcher(Prefetcher *prefetcher)
{
    stms_assert(prefetcher != nullptr, "null prefetcher");
    const auto id = static_cast<std::uint32_t>(prefetchers_.size());
    prefetchers_.push_back(prefetcher);
    buffers_.emplace_back();
    auto &bufs = buffers_.back();
    for (std::uint32_t c = 0; c < config_.numCores; ++c)
        bufs.emplace_back(config_.prefetchBufferBlocks);
    inflightPrefetches_.emplace_back(config_.numCores, 0u);
    pfStats_.emplace_back();
    prefetcher->attach(*this, config_.numCores, id);
}

PrefetchBuffer &
MemorySystem::buffer(std::uint32_t pf_id, CoreId core)
{
    return buffers_[pf_id][core];
}

const PrefetchBuffer &
MemorySystem::buffer(std::uint32_t pf_id, CoreId core) const
{
    return buffers_[pf_id][core];
}

const PrefetcherStats &
MemorySystem::prefetcherStats(std::uint32_t id) const
{
    stms_assert(id < pfStats_.size(), "bad prefetcher id %u", id);
    return pfStats_[id];
}

bool
MemorySystem::tryL1(CoreId core, Addr addr, bool is_write)
{
    ++stats_.accesses;
    const bool hit = l1s_[core]->access(addr, is_write);
    if (hit)
        ++stats_.l1Hits;
    // Epoch-sampling hook: one never-taken compare when disarmed
    // (nextAt parks at kNever), the same shape as IssueBarrier.
    if (stats_.accesses >= sampleHook_.nextAt) [[unlikely]] {
        sampleHook_.nextAt += sampleHook_.every;
        sampleHook_.fire(sampleHook_.context);
    }
    return hit;
}

void
MemorySystem::demandAccess(CoreId core, Addr addr, bool is_write,
                           AccessCallback done)
{
    const Addr block = blockAlign(addr);
    const Cycle now = events_.now();

    // A fill may have raced ahead of this access's event; recheck L1.
    if (l1s_[core]->contains(block)) {
        ++stats_.l1Hits;
        if (is_write)
            l1s_[core]->markDirty(block);
        if (done)
            done(now + config_.l1Latency, AccessOutcome::L1Hit);
        return;
    }

    // Probe this core's prefetch buffers (Fig. 2: alongside the L1).
    for (std::uint32_t pf = 0; pf < prefetchers_.size(); ++pf) {
        if (buffer(pf, core).consume(block)) {
            ++stats_.prefetchHits;
            ++pfStats_[pf].useful;
            installDemand(core, block, is_write);
            prefetchers_[pf]->onPrefetchUsed(core, block, false);
            for (std::uint32_t other = 0; other < prefetchers_.size();
                 ++other) {
                if (other != pf)
                    prefetchers_[other]->onForeignCovered(core, block);
            }
            if (done) {
                done(now + config_.prefetchBufLatency,
                     AccessOutcome::PrefetchHit);
            }
            return;
        }
    }

    if (l2_.access(block, is_write)) {
        ++stats_.l2Hits;
        // Fill the L1 from the L2 (non-inclusive hierarchy).
        Eviction l1_victim = l1s_[core]->fill(block, is_write);
        if (l1_victim.valid && l1_victim.dirty)
            l2_.markDirty(l1_victim.blockAddr);
        if (done)
            done(now + config_.l2Latency, AccessOutcome::L2Hit);
        return;
    }

    handleMiss(core, block, is_write, std::move(done));
}

void
MemorySystem::handleMiss(CoreId core, Addr block, bool is_write,
                         AccessCallback done)
{
    const Cycle now = events_.now();
    if (Mshr *merged = mshrs_.find(block)) {
        Mshr &mshr = *merged;
        mshr.write |= is_write;
        if (mshr.prefetch && !mshr.demandWaiting) {
            // Demand request caught an in-flight prefetch: the miss is
            // partially covered (Fig. 9 "partially covered").
            mshr.demandWaiting = true;
            ++stats_.partialMisses;
            ++pfStats_[mshr.owner->id()].partial;
            mshr.owner->onPrefetchUsed(core, block, true);
            for (Prefetcher *other : prefetchers_) {
                if (other != mshr.owner)
                    other->onForeignCovered(core, block);
            }
        } else if (!mshr.prefetch) {
            // Merged with another outstanding demand fetch; still an
            // uncovered miss from the core's point of view.
            ++stats_.offchipReads;
        } else {
            // Second demand merging into an already-promoted prefetch:
            // still partially covered from this core's point of view.
            ++stats_.partialMisses;
            ++pfStats_[mshr.owner->id()].partial;
        }
        if (done)
            mlpMeters_[core].start(now);
        mshr.addWaiter(core, std::move(done));
        return;
    }

    // Fresh off-chip demand access.
    if (is_write)
        ++stats_.offchipWrites;
    else
        ++stats_.offchipReads;

    Mshr mshr;
    mshr.prefetch = false;
    mshr.core = core;
    mshr.write = is_write;
    if (done)
        mlpMeters_[core].start(now);
    mshr.addWaiter(core, std::move(done));
    mshrs_.emplace(block, std::move(mshr));

    mem_->request(TrafficClass::DemandRead, Priority::High, block, 1,
                  [this, block](Cycle done_tick) {
                      const std::size_t slot = mshrs_.indexOf(block);
                      stms_assert(slot != mshrs_.kNpos,
                                  "fill without MSHR");
                      finishDemandFill(block, mshrs_.take(slot),
                                       done_tick);
                  });

    // Notify predictors after the demand fetch is queued so demand
    // traffic wins same-tick arbitration over meta-data lookups. Only
    // reads trigger streaming (stores retire through the write buffer).
    if (!is_write) {
        for (Prefetcher *pf : prefetchers_)
            pf->onOffchipRead(core, block);
    }
}

void
MemorySystem::installDemand(CoreId core, Addr block, bool is_write)
{
    Eviction l2_victim = l2_.fill(block, is_write);
    handleL2Eviction(l2_victim);
    Eviction l1_victim = l1s_[core]->fill(block, is_write);
    if (l1_victim.valid && l1_victim.dirty)
        l2_.markDirty(l1_victim.blockAddr);
}

void
MemorySystem::handleL2Eviction(const Eviction &evicted)
{
    if (evicted.valid && evicted.dirty) {
        mem_->request(TrafficClass::DemandWriteback, Priority::Low,
                      evicted.blockAddr, 1, nullptr);
    }
}

void
MemorySystem::finishDemandFill(Addr block, Mshr &&mshr, Cycle done_tick)
{
    Eviction l2_victim = l2_.fill(block, mshr.write);
    handleL2Eviction(l2_victim);
    mshr.forEachWaiter([&](CoreId core, AccessCallback &callback) {
        Eviction l1_victim = l1s_[core]->fill(block, mshr.write);
        if (l1_victim.valid && l1_victim.dirty)
            l2_.markDirty(l1_victim.blockAddr);
        if (callback) {
            mlpMeters_[core].finish(done_tick);
            callback(done_tick, AccessOutcome::Mem);
        }
    });
}

void
MemorySystem::finishPrefetchFill(Addr block, Mshr &&mshr, Cycle done_tick)
{
    const std::uint32_t pf_id = mshr.owner->id();
    stms_assert(inflightPrefetches_[pf_id][mshr.core] > 0,
                "prefetch inflight underflow");
    --inflightPrefetches_[pf_id][mshr.core];

    if (mshr.demandWaiting) {
        // The block was demanded while in flight: deliver it straight
        // to the caches, bypassing the prefetch buffer.
        Eviction l2_victim = l2_.fill(block, mshr.write);
        handleL2Eviction(l2_victim);
        mshr.forEachWaiter([&](CoreId core, AccessCallback &callback) {
            Eviction l1_victim = l1s_[core]->fill(block, mshr.write);
            if (l1_victim.valid && l1_victim.dirty)
                l2_.markDirty(l1_victim.blockAddr);
            if (callback) {
                mlpMeters_[core].finish(done_tick);
                callback(done_tick, AccessOutcome::MemPartial);
            }
        });
        return;
    }

    auto evicted = buffer(pf_id, mshr.core).insert(block);
    if (evicted) {
        ++pfStats_[pf_id].erroneous;
        mshr.owner->onPrefetchUnused(mshr.core, *evicted);
    }
    mshr.owner->onPrefetchFill(mshr.core, block);
}

IssueResult
MemorySystem::issuePrefetch(Prefetcher &owner, CoreId core, Addr block)
{
    block = blockAlign(block);
    const std::uint32_t pf_id = owner.id();

    if (l1s_[core]->contains(block) || l2_.contains(block) ||
        buffer(pf_id, core).contains(block) ||
        mshrs_.contains(block)) {
        ++pfStats_[pf_id].redundant;
        return IssueResult::AlreadyPresent;
    }

    // The prefetch buffer itself never blocks an issue: a fill into a
    // full buffer displaces the LRU entry (counted erroneous), exactly
    // like a hardware stream buffer. Only the in-flight window gates.
    const std::uint32_t inflight = inflightPrefetches_[pf_id][core];
    if (inflight >= config_.maxPrefetchInflight) {
        ++pfStats_[pf_id].rejected;
        return IssueResult::NoResources;
    }

    Mshr mshr;
    mshr.prefetch = true;
    mshr.owner = &owner;
    mshr.core = core;
    mshrs_.emplace(block, std::move(mshr));
    ++inflightPrefetches_[pf_id][core];
    ++pfStats_[pf_id].issued;

    mem_->request(TrafficClass::Prefetch, Priority::Low, block, 1,
                  [this, block](Cycle done_tick) {
                      const std::size_t slot = mshrs_.indexOf(block);
                      stms_assert(slot != mshrs_.kNpos,
                                  "prefetch fill without MSHR");
                      finishPrefetchFill(block, mshrs_.take(slot),
                                         done_tick);
                  });
    return IssueResult::Issued;
}

void
MemorySystem::metaRequest(TrafficClass cls, Addr addr,
                          std::uint32_t blocks, TimedCallback done)
{
    const Priority prio = config_.metaHighPriority ? Priority::High
                                                   : Priority::Low;
    mem_->request(cls, prio, addr, blocks, std::move(done));
}

std::uint32_t
MemorySystem::prefetchRoom(const Prefetcher &owner, CoreId core) const
{
    const std::uint32_t pf_id = owner.id();
    const std::uint32_t inflight = inflightPrefetches_[pf_id][core];
    if (inflight >= config_.maxPrefetchInflight)
        return 0;
    return config_.maxPrefetchInflight - inflight;
}

double
MemorySystem::meanMlp() const
{
    double sum = 0.0;
    for (const auto &meter : mlpMeters_)
        sum += meter.mlp();
    return sum / static_cast<double>(mlpMeters_.size());
}

void
MemorySystem::setSampleHook(std::uint64_t every, void (*fire)(void *),
                            void *context)
{
    sampleHook_.every = every;
    sampleHook_.nextAt = every == 0 ? SampleHook::kNever : every;
    sampleHook_.fire = fire;
    sampleHook_.context = context;
}

void
MemorySystem::resetStats()
{
    stats_ = MemorySystemStats{};
    // Re-base the sampling epochs at the measurement window: accesses
    // restart from zero, so the next sample fires one full epoch in.
    if (sampleHook_.every != 0)
        sampleHook_.nextAt = sampleHook_.every;
    for (auto &stats : pfStats_)
        stats = PrefetcherStats{};
    mem_->resetStats();
    l2_.resetStats();
    for (auto &l1 : l1s_)
        l1->resetStats();
    for (auto &meter : mlpMeters_)
        meter.reset(events_.now());
    for (Prefetcher *pf : prefetchers_)
        pf->resetStats();
}

} // namespace stms
