#include "sim/replacement.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{

ReplacementState::ReplacementState(ReplPolicy policy, std::uint32_t ways,
                                   std::uint64_t seed)
    : policy_(policy), ways_(ways), rng_(seed)
{
    stms_assert(ways > 0, "replacement state needs at least one way");
    switch (policy_) {
      case ReplPolicy::Lru:
        age_.assign(ways_, 0);
        break;
      case ReplPolicy::Random:
        break;
      case ReplPolicy::TreePlru:
        stms_assert(isPowerOfTwo(ways_),
                    "tree-PLRU requires power-of-two ways (got %u)", ways_);
        tree_.assign(ways_ - 1, 0);
        break;
    }
}

void
ReplacementState::touchSlow(std::uint32_t way)
{
    stms_assert(way < ways_, "touch of way %u >= %u", way, ways_);
    switch (policy_) {
      case ReplPolicy::Lru:
        age_[way] = ++clock_;
        break;
      case ReplPolicy::Random:
        break;
      case ReplPolicy::TreePlru: {
        // Point every node on the path to the touched leaf away from it.
        std::uint32_t leaf = way + static_cast<std::uint32_t>(tree_.size());
        while (leaf != 0) {
            const std::uint32_t parent = (leaf - 1) / 2;
            const bool is_right = (leaf == 2 * parent + 2);
            tree_[parent] = is_right ? 0 : 1;
            leaf = parent;
        }
        break;
      }
    }
}

std::uint32_t
ReplacementState::victim()
{
    switch (policy_) {
      case ReplPolicy::Lru: {
        std::uint32_t victim_way = 0;
        for (std::uint32_t w = 1; w < ways_; ++w)
            if (age_[w] < age_[victim_way])
                victim_way = w;
        return victim_way;
      }
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng_.below(ways_));
      case ReplPolicy::TreePlru: {
        std::uint32_t node = 0;
        // Walk toward the pseudo-LRU leaf, flipping bits as we go.
        while (node < tree_.size()) {
            const std::uint8_t dir = tree_[node];
            tree_[node] ^= 1;
            node = 2 * node + 1 + dir;
        }
        return static_cast<std::uint32_t>(node - tree_.size());
      }
    }
    return 0;
}

std::uint32_t
ReplacementState::recencyRank(std::uint32_t way) const
{
    stms_assert(policy_ == ReplPolicy::Lru, "recencyRank needs LRU");
    std::uint32_t rank = 0;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (w != way && age_[w] > age_[way])
            ++rank;
    return rank;
}

} // namespace stms
