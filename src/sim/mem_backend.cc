#include "sim/mem_backend.hh"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "sim/mem_dram.hh"
#include "sim/mem_queued.hh"

namespace stms
{
namespace
{

/** Parse a positive decimal integer; returns false on junk or zero. */
bool
parsePositive(const std::string &text, std::uint64_t &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed == 0)
        return false;
    value = parsed;
    return true;
}

} // namespace

const char *
memBackendKindName(MemBackendKind kind)
{
    switch (kind) {
      case MemBackendKind::Fixed:
        return "fixed";
      case MemBackendKind::Queued:
        return "queued";
      case MemBackendKind::Dram:
        return "dram";
    }
    return "unknown";
}

std::string
MemBackendSpec::canonical() const
{
    std::ostringstream out;
    out << memBackendKindName(kind);
    if (banksPerRank != 0)
        out << ",banks=" << banksPerRank;
    if (channels != 0)
        out << ",channels=" << channels;
    if (accessLatency != 0)
        out << ",latency=" << accessLatency;
    if (policy == PagePolicy::Closed)
        out << ",policy=closed";
    if (ranks != 0)
        out << ",ranks=" << ranks;
    if (rowBytes != 0)
        out << ",row-bytes=" << rowBytes;
    if (tCas != 0)
        out << ",tcas=" << tCas;
    if (tRas != 0)
        out << ",tras=" << tRas;
    if (tRcd != 0)
        out << ",trcd=" << tRcd;
    if (tRp != 0)
        out << ",trp=" << tRp;
    if (transferCycles != 0)
        out << ",transfer=" << transferCycles;
    return out.str();
}

bool
parseMemBackendSpec(const std::string &text, MemBackendSpec &spec,
                    std::string &error)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto comma = text.find(',', start);
        if (comma == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }

    MemBackendSpec result;
    const std::string &name = parts.front();
    if (name == "fixed") {
        result.kind = MemBackendKind::Fixed;
    } else if (name == "queued") {
        result.kind = MemBackendKind::Queued;
    } else if (name == "dram") {
        result.kind = MemBackendKind::Dram;
    } else {
        error = "unknown memory backend '" + name +
                "' (expected fixed, queued, or dram)";
        return false;
    }
    const bool dram = result.kind == MemBackendKind::Dram;

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &part = parts[i];
        const auto eq = part.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "bad backend parameter '" + part +
                    "' (expected key=value)";
            return false;
        }
        const std::string key = part.substr(0, eq);
        const std::string raw = part.substr(eq + 1);

        if (key == "policy") {
            if (!dram) {
                error = "policy= is only valid for the dram backend";
                return false;
            }
            if (raw == "open") {
                result.policy = PagePolicy::Open;
            } else if (raw == "closed") {
                result.policy = PagePolicy::Closed;
            } else {
                error = "policy must be open or closed, got '" + raw + "'";
                return false;
            }
            continue;
        }

        std::uint64_t value = 0;
        if (!parsePositive(raw, value)) {
            error = "backend parameter " + key +
                    " needs a positive integer, got '" + raw + "'";
            return false;
        }

        if (key == "latency") {
            if (dram) {
                error = "latency= is not valid for the dram backend "
                        "(use trcd/tcas/trp/tras)";
                return false;
            }
            result.accessLatency = value;
        } else if (key == "transfer") {
            result.transferCycles = value;
        } else if (key == "channels") {
            if (result.kind == MemBackendKind::Fixed) {
                error = "channels= is not valid for the fixed backend";
                return false;
            }
            result.channels = static_cast<std::uint32_t>(value);
        } else if (key == "ranks" && dram) {
            result.ranks = static_cast<std::uint32_t>(value);
        } else if (key == "banks" && dram) {
            result.banksPerRank = static_cast<std::uint32_t>(value);
        } else if (key == "row-bytes" && dram) {
            if (value % kBlockBytes != 0) {
                error = "row-bytes must be a multiple of 64";
                return false;
            }
            result.rowBytes = static_cast<std::uint32_t>(value);
        } else if (key == "trcd" && dram) {
            result.tRcd = value;
        } else if (key == "tcas" && dram) {
            result.tCas = value;
        } else if (key == "trp" && dram) {
            result.tRp = value;
        } else if (key == "tras" && dram) {
            result.tRas = value;
        } else {
            error = "unknown backend parameter '" + key + "' for " +
                    memBackendKindName(result.kind);
            return false;
        }
    }

    // Normalize explicit defaults back to "inherit" so two spellings
    // of the same configuration share one canonical fingerprint.
    if (result.accessLatency == MemCtrlConfig{}.accessLatency)
        result.accessLatency = 0;
    if (result.transferCycles == MemCtrlConfig{}.transferCycles)
        result.transferCycles = 0;
    const std::uint32_t defaultChannels =
        result.kind == MemBackendKind::Queued ? kQueuedDefaultChannels : 1;
    if (result.channels == defaultChannels)
        result.channels = 0;
    if (result.ranks == kDramDefaultRanks)
        result.ranks = 0;
    if (result.banksPerRank == kDramDefaultBanksPerRank)
        result.banksPerRank = 0;
    if (result.rowBytes == kDramDefaultRowBytes)
        result.rowBytes = 0;
    if (result.tRcd == kDramDefaultRcd)
        result.tRcd = 0;
    if (result.tCas == kDramDefaultCas)
        result.tCas = 0;
    if (result.tRp == kDramDefaultRp)
        result.tRp = 0;
    if (result.tRas == kDramDefaultRas)
        result.tRas = 0;

    spec = result;
    return true;
}

std::uint64_t
RowBufferStats::totalAccesses() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumTrafficClasses; ++i)
        total += hits[i] + empties[i] + conflicts[i];
    return total;
}

namespace
{

double
hitRateOver(const RowBufferStats &row,
            std::initializer_list<TrafficClass> classes)
{
    std::uint64_t hit = 0;
    std::uint64_t total = 0;
    for (TrafficClass cls : classes) {
        const auto i = static_cast<std::size_t>(cls);
        hit += row.hits[i];
        total += row.hits[i] + row.empties[i] + row.conflicts[i];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hit) /
                        static_cast<double>(total);
}

} // namespace

double
RowBufferStats::demandHitRate() const
{
    return hitRateOver(*this, {TrafficClass::DemandRead,
                               TrafficClass::DemandWriteback});
}

double
RowBufferStats::metaHitRate() const
{
    return hitRateOver(*this, {TrafficClass::Prefetch,
                               TrafficClass::MetaLookup,
                               TrafficClass::MetaUpdate,
                               TrafficClass::MetaRecord});
}

void
MemBackend::account(MemCtrlStats &stats, TrafficClass cls, Priority prio,
                    std::uint32_t blocks)
{
    stms_assert(blocks > 0, "memory request of zero blocks");
    const auto idx = static_cast<std::size_t>(cls);
    ++stats.requests[idx];
    stats.bytes[idx] += static_cast<std::uint64_t>(blocks) * kBlockBytes;
    if (prio == Priority::High)
        ++stats.highPrioRequests;
    else
        ++stats.lowPrioRequests;
}

std::unique_ptr<MemBackend>
makeMemBackend(EventQueue &events, const MemBackendSpec &spec,
               const MemCtrlConfig &config)
{
    MemCtrlConfig base = config;
    if (spec.accessLatency != 0)
        base.accessLatency = spec.accessLatency;
    if (spec.transferCycles != 0)
        base.transferCycles = spec.transferCycles;

    switch (spec.kind) {
      case MemBackendKind::Fixed:
        return std::make_unique<FixedLatencyBackend>(events, base);
      case MemBackendKind::Queued:
        return std::make_unique<QueuedBackend>(
            events, base,
            spec.channels != 0 ? spec.channels : kQueuedDefaultChannels);
      case MemBackendKind::Dram: {
        DramConfig dram;
        dram.base = base;
        if (spec.channels != 0)
            dram.channels = spec.channels;
        if (spec.ranks != 0)
            dram.ranks = spec.ranks;
        if (spec.banksPerRank != 0)
            dram.banksPerRank = spec.banksPerRank;
        if (spec.rowBytes != 0)
            dram.rowBytes = spec.rowBytes;
        if (spec.tRcd != 0)
            dram.tRcd = spec.tRcd;
        if (spec.tCas != 0)
            dram.tCas = spec.tCas;
        if (spec.tRp != 0)
            dram.tRp = spec.tRp;
        if (spec.tRas != 0)
            dram.tRas = spec.tRas;
        dram.policy = spec.policy;
        return std::make_unique<DramBackend>(events, dram);
      }
    }
    stms_fatal("unreachable memory backend kind");
}

} // namespace stms
