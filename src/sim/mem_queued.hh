/**
 * @file
 * Multi-channel queued memory backend.
 *
 * Generalizes MemController to N independent data channels, each with
 * its own high/low priority queues and transfer pipeline. Blocks are
 * address-interleaved across channels (channel = block mod N), which
 * is the standard fine-grained interleaving that spreads both the
 * demand stream and STMS's sequential history-buffer stream. With
 * channels=1 the model is cycle-identical to MemController.
 */

#ifndef STMS_SIM_MEM_QUEUED_HH
#define STMS_SIM_MEM_QUEUED_HH

#include <deque>
#include <vector>

#include "sim/mem_backend.hh"

namespace stms
{

class QueuedBackend final : public MemBackend
{
  public:
    QueuedBackend(EventQueue &events, const MemCtrlConfig &config,
                  std::uint32_t channels);

    void request(TrafficClass cls, Priority prio, Addr addr,
                 std::uint32_t blocks, Callback done) override;

    const MemCtrlStats &stats() const override { return stats_; }
    void resetStats() override;
    const LinearHistogram &
    lowPrioDelay() const override
    {
        return lowDelay_;
    }
    double utilization(Cycle elapsed) const override;
    const char *kindName() const override { return "queued"; }
    std::uint32_t
    channels() const override
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    std::size_t
    pendingRequests() const override
    {
        std::size_t pending = 0;
        for (const Channel &channel : channels_)
            pending += channel.high.size() + channel.low.size();
        return pending;
    }

  private:
    struct Request
    {
        TrafficClass cls;
        std::uint32_t blocks;
        Callback done;
        Cycle arrival;
    };

    struct Channel
    {
        std::deque<Request> high;
        std::deque<Request> low;
        bool busy = false;
    };

    void grantNext(Channel &channel);
    void startTransfer(Channel &channel, Request request);

    EventQueue &events_;
    MemCtrlConfig config_;
    std::vector<Channel> channels_;
    MemCtrlStats stats_;
    LinearHistogram lowDelay_{64, 64};
};

} // namespace stms

#endif // STMS_SIM_MEM_QUEUED_HH
