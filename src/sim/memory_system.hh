/**
 * @file
 * The CMP memory hierarchy: per-core L1s and prefetch buffers, a shared
 * L2, MSHRs, and the memory controller (Fig. 2 of the paper, minus the
 * predictor, which plugs in through the Prefetcher interface).
 *
 * This is the substrate substituting for FLEXUS: it reproduces the
 * paper's Table 1 memory system (64KB 2-way L1s, 8MB 16-way shared L2,
 * 45ns / 28.4GB/s memory) for a trace-driven core model.
 */

#ifndef STMS_SIM_MEMORY_SYSTEM_HH
#define STMS_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/addr_map.hh"
#include "common/types.hh"
#include "prefetch/prefetch_buffer.hh"
#include "prefetch/prefetcher.hh"
#include "sim/cache.hh"
#include "sim/event_queue.hh"
#include "sim/mem_backend.hh"

namespace stms
{

/** How a core access was satisfied. */
enum class AccessOutcome : std::uint8_t
{
    L1Hit,        ///< Hit in the private L1.
    PrefetchHit,  ///< Satisfied from a prefetch buffer (fully covered).
    L2Hit,        ///< Hit in the shared L2.
    MemPartial,   ///< Merged with an in-flight prefetch (partially covered).
    Mem,          ///< Off-chip demand read (uncovered miss).
};

/** Memory hierarchy configuration (defaults copy Table 1). */
struct MemorySystemConfig
{
    std::uint32_t numCores = 4;
    CacheConfig l1{"l1", 64 * 1024, 2, ReplPolicy::Lru, 11};
    CacheConfig l2{"l2", 8 * 1024 * 1024, 16, ReplPolicy::Lru, 13};
    Cycle l1Latency = 2;
    Cycle prefetchBufLatency = 4;
    Cycle l2Latency = 20;
    std::uint32_t prefetchBufferBlocks = 32;  ///< 2KB per core.
    std::uint32_t maxPrefetchInflight = 16;   ///< Per core per prefetcher.
    /**
     * Ablation knob: issue predictor meta-data traffic at demand
     * priority instead of low priority. The paper finds low priority
     * "essential to minimize queueing-related stalls" (Sec. 4.3).
     */
    bool metaHighPriority = false;
    MemCtrlConfig mem;
    /** Which timing model serves memory requests (default: fixed). */
    MemBackendSpec backend;
    /**
     * When set, the --mem-backend driver knob leaves this system's
     * backend alone. Experiments that sweep backends explicitly
     * (mem_tech_sweep) pin each run's backend so a global override
     * cannot silently collapse the sweep onto one model.
     */
    bool backendPinned = false;
};

/** Demand/coverage statistics, system-wide and per core. */
struct MemorySystemStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t prefetchHits = 0;   ///< Fully covered misses.
    std::uint64_t l2Hits = 0;
    std::uint64_t partialMisses = 0;  ///< Partially covered misses.
    std::uint64_t offchipReads = 0;   ///< Uncovered demand reads.
    std::uint64_t offchipWrites = 0;  ///< Write-allocate fills.

    /** All L2 read misses: covered + partial + uncovered. */
    std::uint64_t
    totalOffchipDemand() const
    {
        return prefetchHits + partialMisses + offchipReads;
    }

    /** Fraction of off-chip misses fully or partially covered. */
    double
    coverage() const
    {
        const std::uint64_t total = totalOffchipDemand();
        return total == 0 ? 0.0
                          : static_cast<double>(prefetchHits + partialMisses) /
                            static_cast<double>(total);
    }

    double
    fullCoverage() const
    {
        const std::uint64_t total = totalOffchipDemand();
        return total == 0 ? 0.0
                          : static_cast<double>(prefetchHits) /
                            static_cast<double>(total);
    }
};

/**
 * Epoch-sampling hook on the access stream (telemetry's
 * `--sample-every`). Mirrors the prefetcher's IssueBarrier trick:
 * the threshold parks at kNever when sampling is off, so the hot
 * path pays exactly one never-taken compare per access — the
 * zero-cost-when-disabled contract bench_report.py gates.
 */
struct SampleHook
{
    static constexpr std::uint64_t kNever = ~0ULL;
    std::uint64_t nextAt = kNever;  ///< Access count that fires next.
    std::uint64_t every = 0;        ///< Epoch length (0 = disabled).
    void (*fire)(void *context) = nullptr;
    void *context = nullptr;
};

/** Time-weighted MLP meter for one core's off-chip reads (Table 2). */
class MlpMeter
{
  public:
    void start(Cycle now);
    void finish(Cycle now);
    double mlp() const;
    std::uint32_t outstanding() const { return outstanding_; }
    /** Zero accumulated area/busy time; keeps in-flight count. */
    void reset(Cycle now);

  private:
    void accumulate(Cycle now);

    std::uint32_t outstanding_ = 0;
    Cycle lastChange_ = 0;
    double area_ = 0.0;
    Cycle busy_ = 0;
};

/**
 * The memory hierarchy.
 *
 * Cores call demandAccess(); prefetchers are registered once and driven
 * through their hooks. All state mutation happens at EventQueue time.
 */
class MemorySystem : public PrefetchPort
{
  public:
    using AccessCallback = std::function<void(Cycle done, AccessOutcome)>;

    MemorySystem(EventQueue &events, const MemorySystemConfig &config);

    /** Register a prefetcher (non-owning). Order = probe order. */
    void addPrefetcher(Prefetcher *prefetcher);

    /**
     * Fast-path L1 probe, callable ahead of global time because L1s
     * are core-private. Counts the access and the L1 hit/miss.
     * @return true on an L1 hit (the access is complete).
     */
    bool tryL1(CoreId core, Addr addr, bool is_write);

    /**
     * The post-L1-miss demand path, which must run at event time
     * because it touches shared structures. @p done may be invoked
     * inline (L2/prefetch-buffer hits) or later (off-chip misses).
     * Pass a null callback for stores (the core does not wait).
     */
    void demandAccess(CoreId core, Addr addr, bool is_write,
                      AccessCallback done);

    // PrefetchPort interface.
    IssueResult issuePrefetch(Prefetcher &owner, CoreId core,
                              Addr block) override;
    void metaRequest(TrafficClass cls, Addr addr, std::uint32_t blocks,
                     TimedCallback done) override;
    Cycle now() const override { return events_.now(); }
    std::uint32_t prefetchRoom(const Prefetcher &owner,
                               CoreId core) const override;

    const MemorySystemStats &stats() const { return stats_; }
    const PrefetcherStats &prefetcherStats(std::uint32_t id) const;
    const MemCtrlStats &memStats() const { return mem_->stats(); }
    const MemBackend &memBackend() const { return *mem_; }
    const Cache &l2() const { return l2_; }
    const Cache &l1(CoreId core) const { return *l1s_[core]; }
    double mlp(CoreId core) const { return mlpMeters_[core].mlp(); }

    /** Aggregate MLP across cores (simple mean of per-core MLP). */
    double meanMlp() const;

    std::uint32_t numCores() const { return config_.numCores; }
    Cycle l1Latency() const { return config_.l1Latency; }

    /**
     * Forward a chunk-dispatch access hint to every prefetcher (see
     * Prefetcher::onAccessHint). Host-side only: no simulated state
     * or time is touched.
     */
    void
    hintUpcoming(CoreId core, std::span<const Addr> addrs)
    {
        for (Prefetcher *prefetcher : prefetchers_)
            prefetcher->onAccessHint(core, addrs);
    }

    /**
     * Arm the epoch sampler: fire(context) after every @p every
     * counted accesses (resetStats() re-bases the threshold so
     * epochs restart at the measurement window). @p every == 0
     * disarms.
     */
    void setSampleHook(std::uint64_t every, void (*fire)(void *),
                       void *context);

    /** Demand/prefetch MSHRs currently in flight (telemetry probe). */
    std::size_t mshrOccupancy() const { return mshrs_.size(); }

    /** Zero all statistics (warmup barrier). */
    void resetStats();

  private:
    struct Mshr
    {
        bool prefetch = false;
        Prefetcher *owner = nullptr;     ///< For prefetch-initiated MSHRs.
        CoreId core = 0;                 ///< Issuer.
        bool demandWaiting = false;      ///< A demand merged in.
        bool write = false;
        /**
         * Waiters in arrival order. The overwhelmingly common case is
         * a single demand waiter, stored inline so registering an MSHR
         * does not allocate; merges spill into the vector.
         */
        bool hasFirstWaiter = false;
        CoreId firstCore = 0;
        AccessCallback firstDone;
        std::vector<std::pair<CoreId, AccessCallback>> moreWaiters;

        void
        addWaiter(CoreId waiter, AccessCallback done)
        {
            if (!hasFirstWaiter) {
                hasFirstWaiter = true;
                firstCore = waiter;
                firstDone = std::move(done);
            } else {
                moreWaiters.emplace_back(waiter, std::move(done));
            }
        }

        /** Visit waiters in arrival order. */
        template <typename Fn>
        void
        forEachWaiter(Fn &&fn)
        {
            if (hasFirstWaiter)
                fn(firstCore, firstDone);
            for (auto &[waiter, done] : moreWaiters)
                fn(waiter, done);
        }
    };

    void handleMiss(CoreId core, Addr block, bool is_write,
                    AccessCallback done);
    void finishDemandFill(Addr block, Mshr &&mshr, Cycle done_tick);
    void finishPrefetchFill(Addr block, Mshr &&mshr, Cycle done_tick);
    void installDemand(CoreId core, Addr block, bool is_write);
    void handleL2Eviction(const Eviction &evicted);
    PrefetchBuffer &buffer(std::uint32_t pf_id, CoreId core);
    const PrefetchBuffer &buffer(std::uint32_t pf_id, CoreId core) const;

    EventQueue &events_;
    MemorySystemConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    Cache l2_;
    std::unique_ptr<MemBackend> mem_;
    std::vector<Prefetcher *> prefetchers_;
    /** buffers_[pf][core]. */
    std::vector<std::vector<PrefetchBuffer>> buffers_;
    std::vector<std::vector<std::uint32_t>> inflightPrefetches_;
    /** In-flight fills, keyed by block. Flat SIMD-scanned table: the
     *  file is small (demand window + prefetch caps) but probed per
     *  demand access and prefetch issue (common/addr_map.hh). */
    FlatAddrMap<Mshr> mshrs_;
    std::vector<PrefetcherStats> pfStats_;
    std::vector<MlpMeter> mlpMeters_;
    MemorySystemStats stats_;
    SampleHook sampleHook_;
};

} // namespace stms

#endif // STMS_SIM_MEMORY_SYSTEM_HH
