#include "sim/mem_queued.hh"

#include "common/log.hh"

namespace stms
{

QueuedBackend::QueuedBackend(EventQueue &events, const MemCtrlConfig &config,
                             std::uint32_t channels)
    : events_(events), config_(config), channels_(channels)
{
    stms_assert(config_.transferCycles > 0, "transferCycles must be > 0");
    stms_assert(channels > 0, "queued backend needs >= 1 channel");
}

void
QueuedBackend::request(TrafficClass cls, Priority prio, Addr addr,
                       std::uint32_t blocks, Callback done)
{
    account(stats_, cls, prio, blocks);

    if (config_.functional) {
        if (done)
            done(events_.now());
        return;
    }

    Channel &channel =
        channels_[blockNumber(addr) % channels_.size()];
    Request request{cls, blocks, std::move(done), events_.now()};
    auto &queue = (prio == Priority::High) ? channel.high : channel.low;
    queue.push_back(std::move(request));
    if (!channel.busy)
        grantNext(channel);
}

void
QueuedBackend::grantNext(Channel &channel)
{
    if (!channel.high.empty()) {
        Request request = std::move(channel.high.front());
        channel.high.pop_front();
        startTransfer(channel, std::move(request));
    } else if (!channel.low.empty()) {
        Request request = std::move(channel.low.front());
        channel.low.pop_front();
        lowDelay_.sample(events_.now() - request.arrival);
        startTransfer(channel, std::move(request));
    } else {
        channel.busy = false;
    }
}

void
QueuedBackend::startTransfer(Channel &channel, Request request)
{
    channel.busy = true;
    const Cycle occupancy =
        static_cast<Cycle>(request.blocks) * config_.transferCycles;
    stats_.busyCycles += occupancy;

    // Same pipelining as MemController: data arrives one access
    // latency after the grant, but the channel frees after the
    // transfer alone.
    const Cycle data_ready =
        events_.now() + config_.accessLatency + occupancy;
    if (request.done) {
        events_.scheduleAt(data_ready,
                           [cb = std::move(request.done), data_ready]() {
                               cb(data_ready);
                           });
    }
    events_.schedule(occupancy,
                     [this, &channel]() { grantNext(channel); });
}

void
QueuedBackend::resetStats()
{
    stats_ = MemCtrlStats{};
    lowDelay_.reset();
}

double
QueuedBackend::utilization(Cycle elapsed) const
{
    const double capacity =
        static_cast<double>(elapsed) *
        static_cast<double>(channels_.size());
    return elapsed == 0 ? 0.0
                        : static_cast<double>(stats_.busyCycles) / capacity;
}

} // namespace stms
