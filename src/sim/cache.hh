/**
 * @file
 * Functional set-associative cache model.
 *
 * The cache is functional: it tracks presence/dirtiness and hit/miss
 * statistics; latency composition is done by the MemorySystem that owns
 * it. This mirrors the split in trace-driven simulators where the tag
 * array is exact and timing is layered on top.
 */

#ifndef STMS_SIM_CACHE_HH
#define STMS_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/replacement.hh"

namespace stms
{

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t ways = 2;
    ReplPolicy policy = ReplPolicy::Lru;
    std::uint64_t seed = 1;
};

/** Result of a cache eviction: what got displaced, if anything. */
struct Eviction
{
    bool valid = false;   ///< A valid block was displaced.
    bool dirty = false;   ///< Displaced block needs writeback.
    Addr blockAddr = kInvalidAddr;
};

/** Aggregate hit/miss statistics for a cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidations = 0;

    double
    missRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(misses) /
                                  static_cast<double>(total);
    }
};

/** Set-associative, write-back, write-allocate cache tag array. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access a block. On a hit, recency is updated and dirtiness is
     * accumulated for writes. Returns true on hit. Does not allocate;
     * callers fill separately once the block arrives. Inline: this is
     * the per-record probe fast path (every L1 access runs it).
     */
    bool
    access(Addr block_addr, bool is_write)
    {
        block_addr = blockAlign(block_addr);
        std::uint32_t way = 0;
        Line *line = findLine(block_addr, &way);
        if (line) {
            ++stats_.hits;
            line->dirty |= is_write;
            repl_[setIndex(block_addr)].touch(way);
            return true;
        }
        ++stats_.misses;
        return false;
    }

    /** Probe without disturbing replacement state or stats. */
    bool
    contains(Addr block_addr) const
    {
        return findLine(blockAlign(block_addr)) != nullptr;
    }

    /**
     * Install a block, evicting a victim if the set is full.
     * @return description of the displaced block, if any.
     */
    Eviction fill(Addr block_addr, bool dirty = false);

    /** Remove a block if present; returns true if it was present. */
    bool invalidate(Addr block_addr);

    /** Mark an existing block dirty (e.g., write hits from merges). */
    void markDirty(Addr block_addr);

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t sizeBytes() const { return sets_ * ways_ * kBlockBytes; }
    const std::string &name() const { return name_; }

    /** Count of currently valid blocks (O(size); for tests). */
    std::uint64_t occupancy() const;

  private:
    struct Line
    {
        Addr tag = kInvalidAddr;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t
    setIndex(Addr block_addr) const
    {
        return blockNumber(block_addr) & (sets_ - 1);
    }

    Line *
    findLine(Addr block_addr, std::uint32_t *way_out = nullptr)
    {
        const std::uint64_t set = setIndex(block_addr);
        Line *base = &lines_[set * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].tag == block_addr) {
                if (way_out)
                    *way_out = w;
                return &base[w];
            }
        }
        return nullptr;
    }

    const Line *
    findLine(Addr block_addr) const
    {
        const std::uint64_t set = setIndex(block_addr);
        const Line *base = &lines_[set * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (base[w].valid && base[w].tag == block_addr)
                return &base[w];
        return nullptr;
    }

    std::string name_;
    std::uint64_t sets_;
    std::uint32_t ways_;
    std::vector<Line> lines_;
    std::vector<ReplacementState> repl_;
    CacheStats stats_;
};

} // namespace stms

#endif // STMS_SIM_CACHE_HH
