/**
 * @file
 * Top-level CMP simulation harness.
 *
 * Builds the event queue, memory hierarchy, and one trace-driven core
 * per trace lane; runs to completion with an optional warmup barrier
 * (the paper launches measurement from warmed checkpoints, Sec. 5.1);
 * and aggregates the metrics every experiment consumes: coverage,
 * traffic by class, aggregate user-IPC, and MLP.
 */

#ifndef STMS_SIM_SYSTEM_HH
#define STMS_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "sim/core.hh"
#include "sim/event_queue.hh"
#include "sim/memory_system.hh"
#include "telemetry/sampler.hh"
#include "trace_io/trace_source.hh"
#include "workload/trace.hh"

namespace stms
{

/** Whole-system configuration. */
struct SimConfig
{
    MemorySystemConfig memory;
    CoreConfig core;
    /**
     * Total records (across cores) to issue before statistics reset.
     * Stands in for the paper's warmed-checkpoint methodology.
     */
    std::uint64_t warmupRecords = 0;
    /** Safety limit on simulated cycles; 0 = unlimited. */
    Cycle maxCycles = 0;
    /**
     * Telemetry: snapshot the counter registry every N counted
     * accesses into SimResult::samples (0 = off). Pure observation —
     * probes only read counters — so it can never perturb model
     * output; it rides the runner chokepoint, not Options, so it can
     * never join result-store fingerprints either.
     */
    std::uint64_t sampleEvery = 0;
};

/** Everything a bench needs from one simulation run. */
struct SimResult
{
    Cycle cycles = 0;                 ///< Measured-window cycles.
    std::uint64_t instructions = 0;   ///< Committed in the window.
    double ipc = 0.0;                 ///< Aggregate user IPC (Sec. 5.1).
    MemorySystemStats mem;
    MemCtrlStats traffic;
    std::vector<double> mlpPerCore;
    double meanMlp = 0.0;
    std::vector<PrefetcherStats> prefetchers;
    double memUtilization = 0.0;
    /** Row-buffer outcomes (all zero outside the DRAM backend). */
    RowBufferStats rowBuffer;
    /** Memory channels of the backend that produced this result. */
    std::uint32_t memChannels = 1;

    double coverage = 0.0;       ///< Full + partial covered fraction.
    double fullCoverage = 0.0;   ///< Fully covered fraction only.
    /** Overhead bytes per useful (demand + writeback) data byte. */
    double overheadPerDataByte = 0.0;

    /** Epoch-sampled counter series (empty unless sampleEvery > 0).
     *  Telemetry only: excluded from the result-store codec and the
     *  report's fingerprinted metrics. */
    telemetry::SampleSeries samples;
};

/** A complete simulated CMP bound to one trace source. */
class CmpSystem
{
  public:
    /**
     * Bind the system to @p source (one lane per core), which the
     * caller keeps alive for the system's lifetime. Each lane is
     * opened exactly once, so a streaming source's bounded-memory
     * guarantee (one chunk per lane) holds for the whole run.
     */
    CmpSystem(const SimConfig &config, trace_io::TraceSource &source);

    /** Convenience: bind to an in-memory trace (no copies made). */
    CmpSystem(const SimConfig &config, const Trace &trace);

    /** Register a prefetcher (non-owning; caller keeps it alive). */
    void addPrefetcher(Prefetcher *prefetcher);

    /** Run the whole trace; returns aggregated results. */
    SimResult run();

    MemorySystem &memory() { return *memory_; }
    EventQueue &events() { return events_; }
    const TraceCore &core(CoreId id) const { return *cores_[id]; }

  private:
    void build(trace_io::TraceSource &source);
    void warmupReached();
    void registerSampleCounters();
    void takeSample();

    SimConfig config_;
    /** Owns the source only for the Trace-convenience constructor. */
    std::unique_ptr<trace_io::TraceSource> ownedSource_;
    EventQueue events_;
    std::unique_ptr<MemorySystem> memory_;
    std::vector<std::unique_ptr<trace_io::RecordCursor>> cursors_;
    std::vector<std::unique_ptr<TraceCore>> cores_;
    std::uint32_t numPrefetchers_ = 0;

    telemetry::EpochSampler sampler_;
    IssueBarrier barrier_;
    bool warmupDone_ = false;
    Cycle measureStart_ = 0;
    std::vector<std::uint64_t> instrSnapshot_;
};

} // namespace stms

#endif // STMS_SIM_SYSTEM_HH
