/**
 * @file
 * ChampSim-compatible trace I/O (64-byte fixed instruction records).
 *
 * ChampSim distributes traces as flat streams of 64-byte
 * `input_instr` records, one file per simulated CPU, usually
 * xz-compressed. The reader here ingests that layout — optionally
 * through an external `xz -dc` / `gzip -dc` decompressor pipe — and
 * maps it onto our TraceRecords with a documented policy:
 *
 *  - every nonzero source_memory operand becomes a load record and
 *    every nonzero destination_memory operand a store record, in
 *    that order;
 *  - think time is the number of instructions since the previous
 *    memory-accessing instruction (capped at 65535), attributed to
 *    the instruction's first record;
 *  - a record is flagged dependent when one of its instruction's
 *    source registers matches a destination register of the previous
 *    memory-accessing instruction (pointer chasing through a loaded
 *    value).
 *
 * writeChampSim() is the inverse: it emits one memory instruction
 * per TraceRecord, `think` filler instructions ahead of it, and
 * encodes the dependence flag through alternating destination
 * registers — so a round trip through the format reproduces the
 * original records exactly (the dependence flag of a lane's first
 * record, which the core model ignores, is dropped).
 *
 * Byte-level details live in docs/TRACE_FORMATS.md.
 */

#ifndef STMS_TRACE_IO_CHAMPSIM_HH
#define STMS_TRACE_IO_CHAMPSIM_HH

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "trace_io/reader.hh"
#include "workload/trace.hh"

namespace stms::trace_io
{

/** ChampSim's input_instr, as laid out on disk (64 bytes, LE). */
struct ChampSimInstr
{
    std::uint64_t ip = 0;
    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;
    std::uint8_t destRegs[2] = {0, 0};
    std::uint8_t srcRegs[4] = {0, 0, 0, 0};
    std::uint64_t destMem[2] = {0, 0};  ///< Store addresses (0 = none).
    std::uint64_t srcMem[4] = {0, 0, 0, 0};  ///< Load addresses.
};
static_assert(sizeof(ChampSimInstr) == 64,
              "ChampSim records are exactly 64 bytes");

/**
 * Export @p trace as ChampSim trace files and return their paths.
 *
 * One file per lane: a single-core trace writes exactly @p path; a
 * multi-core trace writes one file per lane with ".core<k>" inserted
 * before the extension ("t.champsim" -> "t.core0.champsim", ...).
 * Returns an empty vector on I/O failure (partial files may remain).
 * Addresses must be nonzero (0 means "no operand" in ChampSim);
 * violating records are a fatal error.
 */
std::vector<std::string> writeChampSim(const Trace &trace,
                                       const std::string &path);

/**
 * Streaming reader over a set of ChampSim files, one lane per file.
 *
 * Files ending in ".xz" or ".gz" are read through an external
 * decompressor pipe (`xz -dc`/`gzip -dc`), so the record count — and
 * therefore TraceMeta::totalRecords — is unknown up front; runs on
 * such sources place no warmup barrier. Plain files are read
 * directly, but counting memory operands would still require a full
 * scan, so totalRecords is reported as 0 for every ChampSim source.
 */
class ChampSimTraceReader final : public TraceReader
{
  public:
    /** Open one file per lane; nullptr + @p error on any failure. */
    static std::unique_ptr<ChampSimTraceReader>
    open(const std::vector<std::string> &paths, std::string &error);

    ~ChampSimTraceReader() override;

    const TraceMeta &meta() const override { return meta_; }

    std::size_t readChunk(CoreId lane, std::size_t maxRecords,
                          std::vector<TraceRecord> &out) override;

  private:
    struct Lane
    {
        std::string path;
        std::FILE *file = nullptr;
        bool piped = false;       ///< popen()ed decompressor.
        bool exhausted = false;
        std::uint16_t gap = 0;    ///< Instructions since last record.
        std::uint8_t prevDestRegs[2] = {0, 0};
        /** Records decoded but not yet delivered (an instruction can
         *  yield up to six records across a chunk boundary). */
        std::deque<TraceRecord> pending;
    };

    ChampSimTraceReader() = default;

    /** Decode @p instr into lane-pending records (mapping above). */
    static void decodeInstr(Lane &lane, const ChampSimInstr &instr);

    TraceMeta meta_;
    std::vector<Lane> lanes_;
};

} // namespace stms::trace_io

#endif // STMS_TRACE_IO_CHAMPSIM_HH
