/**
 * @file
 * TraceReader — chunked, forward-only access to an on-disk trace.
 *
 * A reader decodes one trace file (or file set) into TraceRecords,
 * lane by lane, in bounded chunks: readChunk() replaces the caller's
 * buffer with up to @c maxRecords further records of one lane, so
 * resident memory is capped at one chunk per lane regardless of the
 * trace's size. Format-specific readers (native.hh, champsim.hh)
 * implement the interface; StreamingTraceSource adapts any reader to
 * the TraceSource contract the simulator consumes.
 */

#ifndef STMS_TRACE_IO_READER_HH
#define STMS_TRACE_IO_READER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace_io/trace_source.hh"

namespace stms::trace_io
{

/** What a reader knows about its trace after opening it. */
struct TraceMeta
{
    std::string name;                ///< Workload name (may be empty).
    std::uint32_t numCores = 0;      ///< Lane count.
    /** Total records, 0 when unknown (non-seekable input). */
    std::uint64_t totalRecords = 0;
    /** Per-lane record counts; empty when unknown up front. */
    std::vector<std::uint64_t> laneRecords;
};

/** Streaming decoder of one on-disk trace. */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    virtual const TraceMeta &meta() const = 0;

    /**
     * Replace @p out with the next at-most-@p maxRecords records of
     * @p lane; returns the number delivered, 0 at end of lane. Lanes
     * advance independently; within a lane, calls are sequential.
     * Unrecoverable mid-stream I/O errors are fatal (the file was
     * valid at open time, so corruption underneath is a user error).
     */
    virtual std::size_t readChunk(CoreId lane, std::size_t maxRecords,
                                  std::vector<TraceRecord> &out) = 0;
};

/** Default chunk size: 64Ki records = 1 MiB resident per lane. */
inline constexpr std::uint64_t kDefaultChunkRecords = 64 * 1024;

/**
 * TraceSource that pulls bounded chunks from a TraceReader. Resident
 * memory never exceeds chunkRecords records per open lane; the
 * high-water mark is exposed for tests via peakChunkRecords().
 */
class StreamingTraceSource final : public TraceSource
{
  public:
    StreamingTraceSource(std::unique_ptr<TraceReader> reader,
                         std::uint64_t chunkRecords = kDefaultChunkRecords);

    const std::string &name() const override;
    std::uint32_t numCores() const override;
    std::uint64_t totalRecords() const override;
    std::unique_ptr<RecordCursor> openLane(CoreId lane) override;

    /** Largest chunk any lane cursor has held (test hook). */
    std::size_t peakChunkRecords() const { return peak_; }

  private:
    friend class ChunkedCursor;

    std::unique_ptr<TraceReader> reader_;
    std::uint64_t chunkRecords_;
    std::size_t peak_ = 0;
};

} // namespace stms::trace_io

#endif // STMS_TRACE_IO_READER_HH
