#include "trace_io/reader.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms::trace_io
{

// Defined at namespace scope (not file-local) so the friend
// declaration in reader.hh names this exact class.
/** One lane's view of a StreamingTraceSource: the current chunk plus
 *  a refill loop. Holds exactly one chunk at a time. */
class ChunkedCursor final : public RecordCursor
{
  public:
    ChunkedCursor(StreamingTraceSource &source, CoreId lane)
        : source_(source), lane_(lane)
    {
        refill();
    }

    const TraceRecord *
    peek() override
    {
        if (index_ >= chunk_.size() && !exhausted_)
            refill();
        return index_ < chunk_.size() ? &chunk_[index_] : nullptr;
    }

    void next() override { ++index_; }

    std::span<const TraceRecord>
    chunk() override
    {
        if (index_ >= chunk_.size() && !exhausted_)
            refill();
        return {chunk_.data() + index_, chunk_.size() - index_};
    }

    void consume(std::size_t count) override { index_ += count; }

  private:
    void refill();

    StreamingTraceSource &source_;
    CoreId lane_;
    std::vector<TraceRecord> chunk_;
    std::size_t index_ = 0;
    bool exhausted_ = false;
};

void
ChunkedCursor::refill()
{
    const std::size_t got = source_.reader_->readChunk(
        lane_, static_cast<std::size_t>(source_.chunkRecords_), chunk_);
    index_ = 0;
    if (got == 0) {
        chunk_.clear();
        exhausted_ = true;
        return;
    }
    source_.peak_ = std::max(source_.peak_, chunk_.size());
}

StreamingTraceSource::StreamingTraceSource(
    std::unique_ptr<TraceReader> reader, std::uint64_t chunkRecords)
    : reader_(std::move(reader)), chunkRecords_(chunkRecords)
{
    stms_assert(reader_ != nullptr, "streaming source needs a reader");
    stms_assert(chunkRecords_ > 0, "chunk size must be nonzero");
}

const std::string &
StreamingTraceSource::name() const
{
    return reader_->meta().name;
}

std::uint32_t
StreamingTraceSource::numCores() const
{
    return reader_->meta().numCores;
}

std::uint64_t
StreamingTraceSource::totalRecords() const
{
    return reader_->meta().totalRecords;
}

std::unique_ptr<RecordCursor>
StreamingTraceSource::openLane(CoreId lane)
{
    stms_assert(lane < numCores(),
                "lane %u out of range (trace has %u lanes)", lane,
                numCores());
    return std::make_unique<ChunkedCursor>(*this, lane);
}

} // namespace stms::trace_io
