#include "trace_io/trace_source.hh"

#include "common/log.hh"

namespace stms::trace_io
{

std::unique_ptr<RecordCursor>
MemoryTraceSource::openLane(CoreId lane)
{
    stms_assert(lane < trace_.numCores(),
                "lane %u out of range (trace has %u cores)", lane,
                trace_.numCores());
    return std::make_unique<VectorCursor>(trace_.perCore[lane]);
}

} // namespace stms::trace_io
