/**
 * @file
 * The native STMS trace format (versioned, little-endian binary).
 *
 * Version 2 (current, written by save() and NativeTraceWriter):
 * a 32-byte header carrying the total record count and on-disk
 * record stride, the workload name, a per-lane record-count table,
 * then each lane's records back-to-back as packed 12-byte entries.
 * The up-front lane table is what makes bounded-memory streaming and
 * warmup placement possible without scanning the file.
 *
 * Version 1 (legacy, read-only): header without totals, lane counts
 * interleaved with the payload, records dumped as the 16-byte
 * in-memory struct (5 bytes of padding per record). load() and the
 * streaming reader accept both versions; writers emit only v2.
 *
 * The byte-level specification, a worked hexdump, and the
 * compatibility policy live in docs/TRACE_FORMATS.md.
 */

#ifndef STMS_TRACE_IO_NATIVE_HH
#define STMS_TRACE_IO_NATIVE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace_io/reader.hh"
#include "workload/trace.hh"

namespace stms::trace_io
{

/** File magic, bytes "TMTS" on disk (0x53544D54 little-endian). */
inline constexpr std::uint32_t kNativeMagic = 0x53544d54;
/** Current (written) format version. */
inline constexpr std::uint32_t kNativeVersion = 2;
/** Oldest version load()/NativeTraceReader still accept. */
inline constexpr std::uint32_t kNativeMinVersion = 1;
/** On-disk record stride of v2 (packed) and v1 (struct dump). */
inline constexpr std::uint32_t kNativeRecordBytesV2 = 12;
inline constexpr std::uint32_t kNativeRecordBytesV1 = 16;
/** Sanity limits enforced on load (reject absurd headers early). */
inline constexpr std::uint32_t kNativeMaxCores = 1024;
inline constexpr std::uint32_t kNativeMaxNameLen = 4096;

/**
 * Write @p trace to @p path in the current (v2) format.
 *
 * Returns false on any I/O failure; a partially written file may be
 * left behind (callers that care should write to a temporary path
 * and rename). Never modifies @p trace.
 */
bool save(const Trace &trace, const std::string &path);

/**
 * Read a whole trace from @p path (v1 or v2) into @p trace.
 *
 * Error contract: returns false — and resets @p trace to an empty,
 * default-constructed Trace, never a partially loaded one — when the
 * file is missing or unreadable, the magic or version is wrong, a
 * header field exceeds the sanity limits above, or the payload is
 * truncated relative to its declared record counts. On success the
 * loaded trace is bit-identical to the one save() was given.
 */
bool load(Trace &trace, const std::string &path);

/**
 * Streaming reader for native trace files (v1 and v2).
 *
 * Opens the file, validates the header, and resolves each lane's
 * byte offset and record count (v2 reads the lane table; v1 scans
 * the interleaved counts, seeking over the payload). readChunk()
 * then serves any lane in bounded chunks via one seek per chunk.
 */
class NativeTraceReader final : public TraceReader
{
  public:
    /** Open @p path; returns nullptr and fills @p error on failure. */
    static std::unique_ptr<NativeTraceReader>
    open(const std::string &path, std::string &error);

    ~NativeTraceReader() override;

    const TraceMeta &meta() const override { return meta_; }

    std::size_t readChunk(CoreId lane, std::size_t maxRecords,
                          std::vector<TraceRecord> &out) override;

  private:
    struct LaneCursor
    {
        std::uint64_t offset = 0;     ///< Next byte to read.
        std::uint64_t remaining = 0;  ///< Records left in the lane.
    };

    NativeTraceReader() = default;

    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint32_t version_ = 0;
    std::uint32_t recordBytes_ = 0;
    TraceMeta meta_;
    std::vector<LaneCursor> lanes_;
};

} // namespace stms::trace_io

#endif // STMS_TRACE_IO_NATIVE_HH
