/**
 * @file
 * Record cursors and trace sources — the streaming face of trace_io.
 *
 * The simulator consumes memory-access records strictly in program
 * order, one lane (core) at a time. A RecordCursor exposes exactly
 * that contract: peek the current record, advance past it, never look
 * back. A TraceSource bundles the per-lane cursors with the metadata
 * a run needs up front (lane count, total records for the warmup
 * barrier).
 *
 * Two families implement the interface:
 *  - MemoryTraceSource wraps an in-memory Trace (zero copies); this
 *    is what synthetic generation and the TraceCache hand out.
 *  - StreamingTraceSource (reader.hh) pulls bounded record chunks
 *    from an on-disk TraceReader, so ingesting a multi-gigabyte trace
 *    never holds more than one chunk per lane in memory.
 *
 * runTrace() and CmpSystem accept either uniformly, which is how the
 * driver runs generated and ingested workloads through one pipeline.
 */

#ifndef STMS_TRACE_IO_TRACE_SOURCE_HH
#define STMS_TRACE_IO_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace stms::trace_io
{

/**
 * Forward-only iterator over one lane's records.
 *
 * The consumer may call peek() any number of times between next()
 * calls; the returned pointer is invalidated by next() (a streaming
 * cursor reuses its chunk buffer). Calling next() at end of lane is
 * undefined.
 */
class RecordCursor
{
  public:
    virtual ~RecordCursor() = default;

    /** The record at the cursor, or nullptr when the lane is done. */
    virtual const TraceRecord *peek() = 0;

    /** Advance past the record peek() returned. */
    virtual void next() = 0;

    /**
     * Batched access: the contiguous window of records at the cursor
     * (at least one record unless the lane is done, when the span is
     * empty). The window stays valid until consume() retires its last
     * record; consume(n) advances the cursor past n records of the
     * current window. This lets the core model dispatch a whole chunk
     * with two virtual calls instead of a peek/next pair per record.
     *
     * The default implementations fall back to peek()/next(), so
     * single-record cursors need not override them.
     */
    virtual std::span<const TraceRecord>
    chunk()
    {
        const TraceRecord *record = peek();
        return record ? std::span<const TraceRecord>(record, 1)
                      : std::span<const TraceRecord>();
    }

    /** Retire @p count records of the window chunk() returned. */
    virtual void
    consume(std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            next();
    }
};

/** Cursor over a record vector the caller keeps alive (no copy). */
class VectorCursor final : public RecordCursor
{
  public:
    explicit VectorCursor(const std::vector<TraceRecord> &records)
        : records_(records)
    {}

    const TraceRecord *
    peek() override
    {
        return index_ < records_.size() ? &records_[index_] : nullptr;
    }

    void next() override { ++index_; }

    std::span<const TraceRecord>
    chunk() override
    {
        return {records_.data() + index_, records_.size() - index_};
    }

    void consume(std::size_t count) override { index_ += count; }

  private:
    const std::vector<TraceRecord> &records_;
    std::size_t index_ = 0;
};

/**
 * A multi-lane record source a simulation run consumes.
 *
 * Lanes map 1:1 onto simulated cores. Each lane may be opened at most
 * once per source — streaming sources keep per-lane file cursors —
 * so a TraceSource feeds exactly one CmpSystem; build a fresh source
 * per run.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Workload name carried by the trace (may be empty). */
    virtual const std::string &name() const = 0;

    /** Number of lanes (simulated cores). */
    virtual std::uint32_t numCores() const = 0;

    /**
     * Records across all lanes, or 0 when unknown up front (e.g. a
     * ChampSim trace read through a decompressor pipe). Runs with an
     * unknown total cannot place a warmup barrier.
     */
    virtual std::uint64_t totalRecords() const = 0;

    /** Open lane @p lane's cursor (once per lane, see class docs). */
    virtual std::unique_ptr<RecordCursor> openLane(CoreId lane) = 0;
};

/** TraceSource over an in-memory Trace the caller keeps alive. */
class MemoryTraceSource final : public TraceSource
{
  public:
    explicit MemoryTraceSource(const Trace &trace)
        : trace_(trace), totalRecords_(trace.totalRecords())
    {}

    const std::string &name() const override { return trace_.name; }
    std::uint32_t numCores() const override { return trace_.numCores(); }
    std::uint64_t totalRecords() const override { return totalRecords_; }

    std::unique_ptr<RecordCursor> openLane(CoreId lane) override;

  private:
    const Trace &trace_;
    std::uint64_t totalRecords_;
};

} // namespace stms::trace_io

#endif // STMS_TRACE_IO_TRACE_SOURCE_HH
