#include "trace_io/format.hh"

#include <cstdio>

#include "common/log.hh"
#include "trace_io/champsim.hh"
#include "trace_io/native.hh"

namespace stms::trace_io
{

namespace
{

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

} // namespace

const char *
formatName(TraceFormat format)
{
    switch (format) {
      case TraceFormat::Auto:
        return "auto";
      case TraceFormat::Native:
        return "native";
      case TraceFormat::ChampSim:
        return "champsim";
    }
    return "?";
}

bool
parseTraceSpec(const std::string &text, TraceSpec &spec,
               std::string &error)
{
    spec = TraceSpec{};
    const std::vector<std::string> parts = split(text, ',');
    if (parts.empty() || parts[0].empty()) {
        error = "trace spec needs a path: PATH[,format=...]";
        return false;
    }
    spec.path = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        const std::string key = parts[i].substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : parts[i].substr(eq + 1);
        if (key == "format") {
            if (value == "native") {
                spec.format = TraceFormat::Native;
            } else if (value == "champsim") {
                spec.format = TraceFormat::ChampSim;
            } else if (value == "auto") {
                spec.format = TraceFormat::Auto;
            } else {
                error = "unknown trace format '" + value +
                        "' (native|champsim|auto)";
                return false;
            }
        } else {
            error = "unknown trace spec key '" + key +
                    "' in '" + text + "'";
            return false;
        }
    }
    return true;
}

bool
parseIngestSpec(const std::string &joined, std::uint64_t chunkRecords,
                IngestSpec &spec, std::string &error)
{
    spec = IngestSpec{};
    if (chunkRecords == 0) {
        error = "chunk size must be nonzero";
        return false;
    }
    spec.chunkRecords = chunkRecords;
    for (const std::string &part : split(joined, ';')) {
        if (part.empty())
            continue;
        TraceSpec one;
        if (!parseTraceSpec(part, one, error))
            return false;
        spec.inputs.push_back(std::move(one));
    }
    if (spec.inputs.empty()) {
        error = "no trace inputs given";
        return false;
    }
    return true;
}

TraceFormat
detectFormat(const std::string &path, std::string &error)
{
    // Compressed and conventionally named files decide by extension
    // (the magic is unreachable without decompressing).
    if (path.ends_with(".xz") || path.ends_with(".gz") ||
        path.ends_with(".champsim") ||
        path.ends_with(".champsimtrace")) {
        return TraceFormat::ChampSim;
    }
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        error = "cannot open '" + path + "'";
        return TraceFormat::Auto;
    }
    std::uint32_t magic = 0;
    const bool got =
        std::fread(&magic, sizeof(magic), 1, file) == 1;
    std::fclose(file);
    if (got && magic == kNativeMagic)
        return TraceFormat::Native;
    error = "cannot detect the format of '" + path +
            "'; pass format=native or format=champsim";
    return TraceFormat::Auto;
}

std::unique_ptr<StreamingTraceSource>
openSource(const IngestSpec &spec, std::string &error)
{
    if (spec.inputs.empty()) {
        error = "no trace inputs given";
        return nullptr;
    }

    TraceFormat format = TraceFormat::Auto;
    for (const TraceSpec &input : spec.inputs) {
        TraceFormat resolved = input.format;
        if (resolved == TraceFormat::Auto) {
            resolved = detectFormat(input.path, error);
            if (resolved == TraceFormat::Auto)
                return nullptr;
        }
        if (format == TraceFormat::Auto) {
            format = resolved;
        } else if (format != resolved) {
            error = "mixed trace formats in one ingest ('" +
                    std::string(formatName(format)) + "' vs '" +
                    formatName(resolved) + "')";
            return nullptr;
        }
    }

    std::unique_ptr<TraceReader> reader;
    if (format == TraceFormat::Native) {
        if (spec.inputs.size() != 1) {
            error = "native traces are multi-core files; pass "
                    "exactly one";
            return nullptr;
        }
        reader = NativeTraceReader::open(spec.inputs[0].path, error);
    } else {
        std::vector<std::string> paths;
        for (const TraceSpec &input : spec.inputs)
            paths.push_back(input.path);
        reader = ChampSimTraceReader::open(paths, error);
    }
    if (!reader)
        return nullptr;
    return std::make_unique<StreamingTraceSource>(std::move(reader),
                                                  spec.chunkRecords);
}

} // namespace stms::trace_io
