#include "trace_io/native.hh"

#include <bit>
#include <cstring>

#include "common/log.hh"

namespace stms::trace_io
{

// The on-disk formats are little-endian; encode/decode below memcpy
// host integers directly. Big-endian hosts would need byte swaps.
static_assert(std::endian::native == std::endian::little,
              "native trace codec requires a little-endian host");

namespace
{

// v1 dumped the in-memory struct; its 16-byte stride (8 addr + 2
// think + 1 flags + 5 padding) is baked into old files.
static_assert(sizeof(TraceRecord) == kNativeRecordBytesV1,
              "TraceRecord layout drifted; v1 trace files would break");

void
putU16(std::vector<unsigned char> &out, std::uint16_t value)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(value));
    std::memcpy(out.data() + at, &value, sizeof(value));
}

void
putU32(std::vector<unsigned char> &out, std::uint32_t value)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(value));
    std::memcpy(out.data() + at, &value, sizeof(value));
}

void
putU64(std::vector<unsigned char> &out, std::uint64_t value)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(value));
    std::memcpy(out.data() + at, &value, sizeof(value));
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t value;
    std::memcpy(&value, in, sizeof(value));
    return value;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t value;
    std::memcpy(&value, in, sizeof(value));
    return value;
}

/** Append one record in the packed v2 layout (12 bytes). */
void
encodeRecordV2(std::vector<unsigned char> &out,
               const TraceRecord &record)
{
    putU64(out, record.addr);
    putU16(out, record.think);
    out.push_back(record.flags);
    out.push_back(0);  // reserved
}

TraceRecord
decodeRecord(const unsigned char *in, std::uint32_t version)
{
    TraceRecord record;
    if (version >= 2) {
        record.addr = getU64(in);
        std::memcpy(&record.think, in + 8, sizeof(record.think));
        record.flags = in[10];
    } else {
        std::memcpy(&record, in, sizeof(record));
    }
    return record;
}

bool
writeAll(std::FILE *file, const std::vector<unsigned char> &bytes)
{
    return bytes.empty() ||
           std::fwrite(bytes.data(), 1, bytes.size(), file) ==
               bytes.size();
}

/** Byte size of the file, or -1 on error (stream left at start). */
long
fileSize(std::FILE *file)
{
    if (std::fseek(file, 0, SEEK_END) != 0)
        return -1;
    const long size = std::ftell(file);
    if (std::fseek(file, 0, SEEK_SET) != 0)
        return -1;
    return size;
}

} // namespace

bool
save(const Trace &trace, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;

    std::vector<unsigned char> head;
    putU32(head, kNativeMagic);
    putU32(head, kNativeVersion);
    putU32(head, trace.numCores());
    putU32(head, static_cast<std::uint32_t>(trace.name.size()));
    putU64(head, trace.totalRecords());
    putU32(head, kNativeRecordBytesV2);
    putU32(head, 0);  // header flags, reserved
    head.insert(head.end(), trace.name.begin(), trace.name.end());
    for (const auto &records : trace.perCore)
        putU64(head, records.size());

    bool ok = writeAll(file, head);

    std::vector<unsigned char> chunk;
    constexpr std::size_t kFlushRecords = 16 * 1024;
    chunk.reserve(kFlushRecords * kNativeRecordBytesV2);
    for (const auto &records : trace.perCore) {
        for (const auto &record : records) {
            if (!ok)
                break;
            encodeRecordV2(chunk, record);
            if (chunk.size() >=
                kFlushRecords * kNativeRecordBytesV2) {
                ok = writeAll(file, chunk);
                chunk.clear();
            }
        }
    }
    if (ok)
        ok = writeAll(file, chunk);
    return std::fclose(file) == 0 && ok;
}

bool
load(Trace &trace, const std::string &path)
{
    trace = Trace{};
    std::string error;
    auto reader = NativeTraceReader::open(path, error);
    if (!reader)
        return false;

    const TraceMeta &meta = reader->meta();
    trace.name = meta.name;
    trace.perCore.resize(meta.numCores);
    for (CoreId lane = 0; lane < meta.numCores; ++lane) {
        auto &records = trace.perCore[lane];
        records.reserve(meta.laneRecords[lane]);
        std::vector<TraceRecord> chunk;
        while (reader->readChunk(lane, kDefaultChunkRecords, chunk) >
               0) {
            records.insert(records.end(), chunk.begin(), chunk.end());
        }
    }
    return true;
}

std::unique_ptr<NativeTraceReader>
NativeTraceReader::open(const std::string &path, std::string &error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        error = "cannot open '" + path + "'";
        return nullptr;
    }
    // The unique_ptr owns the handle from here on (see destructor).
    std::unique_ptr<NativeTraceReader> reader(new NativeTraceReader());
    reader->path_ = path;
    reader->file_ = file;

    auto fail = [&](const std::string &why) {
        error = "'" + path + "': " + why;
        return nullptr;
    };

    const long size = fileSize(file);
    if (size < 0)
        return fail("not seekable");
    const auto total_bytes = static_cast<std::uint64_t>(size);

    unsigned char fixed[16];
    if (std::fread(fixed, 1, sizeof(fixed), file) != sizeof(fixed))
        return fail("truncated header");
    if (getU32(fixed) != kNativeMagic)
        return fail("bad magic (not a native STMS trace)");
    const std::uint32_t version = getU32(fixed + 4);
    if (version < kNativeMinVersion || version > kNativeVersion) {
        return fail("unsupported format version " +
                    std::to_string(version) + " (this build reads " +
                    std::to_string(kNativeMinVersion) + ".." +
                    std::to_string(kNativeVersion) + ")");
    }
    const std::uint32_t num_cores = getU32(fixed + 8);
    const std::uint32_t name_len = getU32(fixed + 12);
    if (num_cores == 0 || num_cores > kNativeMaxCores)
        return fail("implausible core count " +
                    std::to_string(num_cores));
    if (name_len > kNativeMaxNameLen)
        return fail("implausible name length " +
                    std::to_string(name_len));

    reader->version_ = version;
    reader->recordBytes_ = version >= 2 ? kNativeRecordBytesV2
                                        : kNativeRecordBytesV1;
    reader->meta_.numCores = num_cores;

    std::uint64_t declared_total = 0;
    if (version >= 2) {
        unsigned char rest[16];
        if (std::fread(rest, 1, sizeof(rest), file) != sizeof(rest))
            return fail("truncated header");
        declared_total = getU64(rest);
        if (getU32(rest + 8) != kNativeRecordBytesV2)
            return fail("unexpected record stride");
    }

    reader->meta_.name.resize(name_len);
    if (name_len > 0 &&
        std::fread(reader->meta_.name.data(), 1, name_len, file) !=
            name_len) {
        return fail("truncated workload name");
    }

    // Resolve each lane's (offset, count). v2 keeps the counts in an
    // up-front table; v1 interleaves them, so scan by seeking over
    // each lane's payload.
    reader->lanes_.resize(num_cores);
    reader->meta_.laneRecords.resize(num_cores);
    std::uint64_t sum = 0;
    if (version >= 2) {
        std::vector<unsigned char> table(num_cores * 8u);
        if (std::fread(table.data(), 1, table.size(), file) !=
            table.size()) {
            return fail("truncated lane table");
        }
        std::uint64_t offset =
            32 + static_cast<std::uint64_t>(name_len) + table.size();
        for (CoreId lane = 0; lane < num_cores; ++lane) {
            const std::uint64_t count = getU64(table.data() + lane * 8);
            // Same per-lane cap as v1: with <= 2^32 records per lane
            // and <= 1024 lanes, the offset arithmetic below cannot
            // wrap, so the file-size consistency check stays sound
            // against crafted headers.
            if (count > (1ULL << 32))
                return fail("implausible lane record count");
            reader->lanes_[lane] = {offset, count};
            reader->meta_.laneRecords[lane] = count;
            sum += count;
            offset += count * kNativeRecordBytesV2;
        }
        if (sum != declared_total)
            return fail("lane table disagrees with total record count");
        if (offset != total_bytes)
            return fail(offset > total_bytes ? "truncated payload"
                                             : "trailing bytes");
    } else {
        std::uint64_t offset =
            16 + static_cast<std::uint64_t>(name_len);
        for (CoreId lane = 0; lane < num_cores; ++lane) {
            unsigned char raw[8];
            if (offset + 8 > total_bytes ||
                std::fseek(file, static_cast<long>(offset),
                           SEEK_SET) != 0 ||
                std::fread(raw, 1, 8, file) != 8) {
                return fail("truncated lane header");
            }
            const std::uint64_t count = getU64(raw);
            if (count > (1ULL << 32))
                return fail("implausible lane record count");
            offset += 8;
            reader->lanes_[lane] = {offset, count};
            reader->meta_.laneRecords[lane] = count;
            sum += count;
            offset += count * kNativeRecordBytesV1;
            if (offset > total_bytes)
                return fail("truncated payload");
        }
        if (offset != total_bytes)
            return fail("trailing bytes");
    }
    reader->meta_.totalRecords = sum;
    return reader;
}

NativeTraceReader::~NativeTraceReader()
{
    if (file_)
        std::fclose(file_);
}

std::size_t
NativeTraceReader::readChunk(CoreId lane, std::size_t maxRecords,
                             std::vector<TraceRecord> &out)
{
    stms_assert(lane < lanes_.size(), "lane %u out of range", lane);
    out.clear();
    LaneCursor &cursor = lanes_[lane];
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(maxRecords, cursor.remaining));
    if (count == 0)
        return 0;

    const std::size_t bytes = count * recordBytes_;
    std::vector<unsigned char> raw(bytes);
    if (std::fseek(file_, static_cast<long>(cursor.offset),
                   SEEK_SET) != 0 ||
        std::fread(raw.data(), 1, bytes, file_) != bytes) {
        stms_fatal("'%s': read error mid-trace (file changed "
                   "underneath the reader?)",
                   path_.c_str());
    }
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(decodeRecord(raw.data() + i * recordBytes_,
                                   version_));
    cursor.offset += bytes;
    cursor.remaining -= count;
    return count;
}

} // namespace stms::trace_io
