/**
 * @file
 * Trace-format selection and ingest-spec parsing.
 *
 * The driver's `--trace PATH[,format=native|champsim]` flag (and the
 * matching experiment option) is parsed here into an IngestSpec: a
 * set of input files plus the streaming chunk size. When the format
 * is not forced, detection sniffs the native magic and falls back to
 * the extension (.champsim/.xz/.gz). openSource() resolves the spec
 * into a StreamingTraceSource ready to feed one simulation run.
 */

#ifndef STMS_TRACE_IO_FORMAT_HH
#define STMS_TRACE_IO_FORMAT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace_io/reader.hh"

namespace stms::trace_io
{

/** Supported on-disk trace formats. */
enum class TraceFormat
{
    Auto,      ///< Detect from magic/extension at open time.
    Native,    ///< Versioned STMS binary (native.hh).
    ChampSim,  ///< 64-byte input_instr stream (champsim.hh).
};

/** Human-readable format name ("auto", "native", "champsim"). */
const char *formatName(TraceFormat format);

/** One `--trace` argument: a path plus an optional forced format. */
struct TraceSpec
{
    std::string path;
    TraceFormat format = TraceFormat::Auto;
};

/**
 * Parse one "path[,format=native|champsim]" spec. Returns false and
 * fills @p error on empty paths or unknown keys/formats.
 */
bool parseTraceSpec(const std::string &text, TraceSpec &spec,
                    std::string &error);

/**
 * Everything one run needs to ingest a trace: the input file(s) —
 * several only for ChampSim, where each file is one lane — and the
 * chunk size bounding resident records per lane.
 */
struct IngestSpec
{
    std::vector<TraceSpec> inputs;
    std::uint64_t chunkRecords = kDefaultChunkRecords;
};

/**
 * Parse a ';'-joined list of trace specs (the shape the driver CLI
 * stores repeated `--trace` flags in) into @p spec.
 */
bool parseIngestSpec(const std::string &joined,
                     std::uint64_t chunkRecords, IngestSpec &spec,
                     std::string &error);

/**
 * Detect @p path's format: native when the file starts with the
 * native magic, ChampSim for .champsim/.champsimtrace/.xz/.gz
 * extensions. Returns Auto (and fills @p error) when undecidable —
 * pass format= explicitly then.
 */
TraceFormat detectFormat(const std::string &path, std::string &error);

/**
 * Resolve @p spec into a streaming source: detect formats, check
 * they agree (native accepts exactly one input; ChampSim maps one
 * file to one lane), open the reader. Returns nullptr + @p error on
 * any failure. Each returned source feeds exactly one run.
 */
std::unique_ptr<StreamingTraceSource>
openSource(const IngestSpec &spec, std::string &error);

} // namespace stms::trace_io

#endif // STMS_TRACE_IO_FORMAT_HH
