#include "trace_io/champsim.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include <sys/wait.h>

#include "common/log.hh"

namespace stms::trace_io
{

static_assert(std::endian::native == std::endian::little,
              "ChampSim trace codec requires a little-endian host");

namespace
{

/** Destination register encoding the exporter alternates between so
 *  consecutive records never collide (see dependence mapping). */
std::uint8_t
destRegFor(std::uint64_t record_index)
{
    return record_index % 2 == 0 ? 26 : 25;
}

/** Single-quote @p path for the shell (popen goes through /bin/sh). */
std::string
shellQuote(const std::string &path)
{
    std::string quoted = "'";
    for (char c : path) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

/** Decompressor command line for @p path, or empty when plain. */
std::string
decompressCommand(const std::string &path)
{
    if (path.ends_with(".xz"))
        return "xz -dc -- " + shellQuote(path);
    if (path.ends_with(".gz"))
        return "gzip -dc -- " + shellQuote(path);
    return "";
}

/** Lane file path: exact for one core, ".core<k>" inserted else. */
std::string
lanePath(const std::string &path, CoreId lane, std::uint32_t cores)
{
    if (cores == 1)
        return path;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    const std::string insert = ".core" + std::to_string(lane);
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + insert;
    }
    return path.substr(0, dot) + insert + path.substr(dot);
}

} // namespace

std::vector<std::string>
writeChampSim(const Trace &trace, const std::string &path)
{
    std::vector<std::string> paths;
    for (CoreId lane = 0; lane < trace.numCores(); ++lane) {
        const std::string out = lanePath(path, lane, trace.numCores());
        std::FILE *file = std::fopen(out.c_str(), "wb");
        if (!file)
            return {};

        bool ok = true;
        std::uint64_t ip = 0x400000;  // Arbitrary text-segment base.
        std::uint64_t index = 0;
        for (const TraceRecord &record : trace.perCore[lane]) {
            if (record.addr == 0) {
                std::fclose(file);
                stms_fatal("trace '%s' has a zero address; ChampSim "
                           "encodes 0 as \"no memory operand\"",
                           trace.name.c_str());
            }
            // think = instructions between memory accesses, so emit
            // that many filler (non-memory) instructions first.
            ChampSimInstr filler;
            for (std::uint32_t i = 0; ok && i < record.think; ++i) {
                filler.ip = ip;
                ip += 4;
                ok = std::fwrite(&filler, sizeof(filler), 1, file) == 1;
            }

            ChampSimInstr instr;
            instr.ip = ip;
            ip += 4;
            instr.destRegs[0] = destRegFor(index);
            // Dependence travels through the previous memory
            // instruction's destination register; a lane's first
            // record has nothing to depend on.
            if (record.isDependent() && index > 0)
                instr.srcRegs[0] = destRegFor(index - 1);
            if (record.isWrite())
                instr.destMem[0] = record.addr;
            else
                instr.srcMem[0] = record.addr;
            if (ok)
                ok = std::fwrite(&instr, sizeof(instr), 1, file) == 1;
            ++index;
        }
        if (std::fclose(file) != 0 || !ok)
            return {};
        paths.push_back(out);
    }
    return paths;
}

std::unique_ptr<ChampSimTraceReader>
ChampSimTraceReader::open(const std::vector<std::string> &paths,
                          std::string &error)
{
    if (paths.empty()) {
        error = "ChampSim reader needs at least one file";
        return nullptr;
    }
    std::unique_ptr<ChampSimTraceReader> reader(
        new ChampSimTraceReader());
    reader->meta_.numCores = static_cast<std::uint32_t>(paths.size());
    reader->lanes_.resize(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        Lane &lane = reader->lanes_[i];
        lane.path = paths[i];
        const std::string command = decompressCommand(paths[i]);
        if (!command.empty()) {
            // Probe the file directly first: a missing/unreadable
            // path should fail cleanly here, not as a deferred
            // decompressor fatal mid-run.
            std::FILE *probe = std::fopen(paths[i].c_str(), "rb");
            if (!probe) {
                error = "cannot open '" + paths[i] + "'";
                return nullptr;
            }
            std::fclose(probe);
            lane.file = popen(command.c_str(), "r");
            lane.piped = true;
            if (!lane.file) {
                error = "cannot launch '" + command + "'";
                return nullptr;
            }
        } else {
            lane.file = std::fopen(paths[i].c_str(), "rb");
            if (!lane.file) {
                error = "cannot open '" + paths[i] + "'";
                return nullptr;
            }
            if (std::fseek(lane.file, 0, SEEK_END) != 0) {
                error = "'" + paths[i] + "': not seekable";
                return nullptr;
            }
            const long size = std::ftell(lane.file);
            std::rewind(lane.file);
            // A 0-byte file is a valid empty lane (the exporter
            // writes one for a core with no records).
            if (size < 0 || size % sizeof(ChampSimInstr) != 0) {
                error = "'" + paths[i] +
                        "': size is not a multiple of 64 bytes "
                        "(not a ChampSim trace?)";
                return nullptr;
            }
        }
    }
    // Record counts stay unknown (meta_.totalRecords == 0): memory
    // operands per instruction vary, and pipes cannot be pre-scanned.
    return reader;
}

ChampSimTraceReader::~ChampSimTraceReader()
{
    for (Lane &lane : lanes_) {
        if (!lane.file)
            continue;
        if (lane.piped)
            pclose(lane.file);
        else
            std::fclose(lane.file);
    }
}

void
ChampSimTraceReader::decodeInstr(Lane &lane, const ChampSimInstr &instr)
{
    TraceRecord records[6];
    std::size_t count = 0;
    for (std::uint64_t addr : instr.srcMem) {
        if (addr != 0)
            records[count++].addr = addr;
    }
    for (std::uint64_t addr : instr.destMem) {
        if (addr != 0) {
            records[count].addr = addr;
            records[count].flags = TraceRecord::kWrite;
            ++count;
        }
    }
    if (count == 0) {
        // Non-memory instruction: one more cycle of think time for
        // the next record (saturating at the field's 16 bits).
        if (lane.gap < std::numeric_limits<std::uint16_t>::max())
            ++lane.gap;
        return;
    }

    bool dependent = false;
    for (std::uint8_t src : instr.srcRegs) {
        if (src == 0)
            continue;
        for (std::uint8_t dest : lane.prevDestRegs)
            dependent = dependent || (dest != 0 && src == dest);
    }
    records[0].think = lane.gap;
    lane.gap = 0;
    if (dependent)
        records[0].flags |= TraceRecord::kDependent;
    lane.prevDestRegs[0] = instr.destRegs[0];
    lane.prevDestRegs[1] = instr.destRegs[1];

    for (std::size_t i = 0; i < count; ++i)
        lane.pending.push_back(records[i]);
}

std::size_t
ChampSimTraceReader::readChunk(CoreId lane_id, std::size_t maxRecords,
                               std::vector<TraceRecord> &out)
{
    stms_assert(lane_id < lanes_.size(), "lane %u out of range",
                lane_id);
    out.clear();
    Lane &lane = lanes_[lane_id];

    auto drain = [&]() {
        while (out.size() < maxRecords && !lane.pending.empty()) {
            out.push_back(lane.pending.front());
            lane.pending.pop_front();
        }
    };

    drain();
    while (out.size() < maxRecords && !lane.exhausted) {
        ChampSimInstr instr;
        const std::size_t got =
            std::fread(&instr, 1, sizeof(instr), lane.file);
        if (got != sizeof(instr)) {
            if (got != 0) {
                stms_fatal("'%s': truncated mid-record (%zu stray "
                           "bytes)",
                           lane.path.c_str(), got);
            }
            lane.exhausted = true;
            if (lane.piped) {
                const int status = pclose(lane.file);
                lane.file = nullptr;
                if (status != 0) {
                    stms_fatal(
                        "decompressor for '%s' failed (exit %d); "
                        "corrupt archive, or xz/gzip missing?",
                        lane.path.c_str(),
                        WIFEXITED(status) ? WEXITSTATUS(status)
                                          : status);
                }
            }
            break;
        }
        decodeInstr(lane, instr);
        drain();
    }
    return out.size();
}

} // namespace stms::trace_io
