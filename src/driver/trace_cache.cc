#include "driver/trace_cache.hh"

#include "common/log.hh"
#include "telemetry/trace_writer.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::driver
{

namespace
{

/** Counter sample after every residentBytes_ change (mutex held, so
 *  the track is totally ordered with the size it reports). */
void
noteResidentKb(std::uint64_t resident_bytes)
{
    telemetry::emitCounter(
        "trace_cache.resident_kb",
        static_cast<double>(resident_bytes) / 1024.0);
}

} // namespace

void
TraceCache::Handle::release()
{
    if (!entry_)
        return;
    if (cache_) {
        std::lock_guard<std::mutex> lock(cache_->mutex_);
        stms_assert(entry_->pins > 0, "trace handle over-release");
        --entry_->pins;
        // An unpinned entry may now be evictable; re-check the bound
        // (it can be exceeded while the pinned working set alone
        // exceeds it).
        cache_->evictToCapacity();
    }
    entry_.reset();
    cache_ = nullptr;
}

std::uint64_t
TraceCache::traceBytes(const Trace &trace)
{
    std::uint64_t bytes = sizeof(Trace) + trace.name.size();
    for (const auto &lane : trace.perCore)
        bytes += lane.capacity() * sizeof(TraceRecord) +
                 sizeof(lane);
    return bytes;
}

std::shared_ptr<TraceCache::Entry>
TraceCache::generateEntry(const Key &key)
{
    auto entry = std::make_shared<Entry>();
    entry->key = key;
    WorkloadGenerator generator(makeWorkload(key.first, key.second));
    {
        telemetry::ScopedSpan span("stage", "generate", key.first);
        entry->trace = generator.generate();
    }
    entry->bytes = traceBytes(entry->trace);
    entry->ready = true;
    return entry;
}

TraceCache::Handle
TraceCache::acquire(const std::string &workload,
                    std::uint64_t records_per_core)
{
    const Key key{workload, records_per_core};

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (capacity_ == 0) {
            // No caching: generate a private trace owned by the
            // handle alone (no pin accounting, nothing resident).
            ++generations_;
            lock.unlock();
            return Handle(nullptr, generateEntry(key));
        }

        auto it = entries_.find(key);
        if (it != entries_.end()) {
            std::shared_ptr<Entry> entry = it->second;
            ++entry->pins;  // Pin before waiting: blocks eviction.
            ready_.wait(lock, [&] { return entry->ready; });
            entry->lastUse = ++useClock_;
            return Handle(this, std::move(entry));
        }

        // First request: insert a placeholder so concurrent requests
        // for the same key wait instead of generating twice, then
        // generate outside the lock so distinct keys synthesize
        // concurrently.
        auto placeholder = std::make_shared<Entry>();
        placeholder->key = key;
        placeholder->pins = 1;
        placeholder->cached = true;
        entries_.emplace(key, placeholder);
        ++generations_;
        lock.unlock();

        WorkloadGenerator generator(
            makeWorkload(key.first, key.second));
        Trace trace;
        {
            telemetry::ScopedSpan span("stage", "generate",
                                       key.first);
            trace = generator.generate();
        }

        lock.lock();
        placeholder->trace = std::move(trace);
        placeholder->bytes = traceBytes(placeholder->trace);
        placeholder->ready = true;
        placeholder->lastUse = ++useClock_;
        residentBytes_ += placeholder->bytes;
        noteResidentKb(residentBytes_);
        ready_.notify_all();
        evictToCapacity();
        return Handle(this, std::move(placeholder));
    }
}

const Trace &
TraceCache::get(const std::string &workload,
                std::uint64_t records_per_core)
{
    const Key key{workload, records_per_core};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = permanent_.find(key);
        if (it != permanent_.end())
            return it->second->trace;
    }
    Handle handle = acquire(workload, records_per_core);
    // Convert the handle into a permanent pin: keep the entry alive
    // (and un-evictable) for the cache's lifetime by moving the
    // shared_ptr reference into the cache's permanent set, deduped
    // by key. A racing get() may have pinned first; the loser's
    // handle then releases normally (under capacity 0 its private
    // copy is dropped rather than retained forever).
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = permanent_.emplace(key, handle.entry_);
    if (inserted) {
        handle.cache_ = nullptr;  // Pin transferred, skip release.
        handle.entry_.reset();
    }
    return it->second->trace;
}

void
TraceCache::setCapacity(std::uint64_t capacity_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity_bytes;
    evictToCapacity();
}

std::uint64_t
TraceCache::capacityBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
TraceCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residentBytes_;
}

std::uint64_t
TraceCache::generations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generations_;
}

void
TraceCache::evictToCapacity()
{
    if (capacity_ == kUnbounded)
        return;
    while (residentBytes_ > capacity_) {
        // LRU among unpinned, fully generated entries. Pinned (or
        // still-generating) traces are never dropped — the bound is
        // soft while the pinned working set exceeds it.
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            Entry &entry = *it->second;
            if (entry.pins > 0 || !entry.ready)
                continue;
            if (victim == entries_.end() ||
                entry.lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            return;
        residentBytes_ -= victim->second->bytes;
        noteResidentKb(residentBytes_);
        victim->second->cached = false;
        entries_.erase(victim);
    }
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace stms::driver
