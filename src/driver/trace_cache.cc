#include "driver/trace_cache.hh"

#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::driver
{

const Trace &
TraceCache::get(const std::string &workload,
                std::uint64_t records_per_core)
{
    Entry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &slot = entries_[Key{workload, records_per_core}];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    // Generate outside the map lock so distinct traces synthesize
    // concurrently; call_once serializes requests for the same key.
    std::call_once(entry->once, [&] {
        WorkloadGenerator generator(
            makeWorkload(workload, records_per_core));
        entry->trace = generator.generate();
    });
    return entry->trace;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace stms::driver
