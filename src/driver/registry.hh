/**
 * @file
 * Name → Experiment registry.
 *
 * The global registry is populated with every built-in experiment on
 * first use (explicit registration, not static initializers, so the
 * definitions survive static-library linking). Tests construct their
 * own registries to exercise lookup without the builtins.
 */

#ifndef STMS_DRIVER_REGISTRY_HH
#define STMS_DRIVER_REGISTRY_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/experiment.hh"

namespace stms::driver
{

/** Owning map of registered experiments. */
class ExperimentRegistry
{
  public:
    /** Register @p experiment; fatal on duplicate names. */
    void add(std::unique_ptr<Experiment> experiment);

    /** The experiment named @p name, or nullptr. */
    const Experiment *find(const std::string &name) const;

    /** All experiments, sorted by name. */
    std::vector<const Experiment *> all() const;

    std::size_t size() const { return experiments_.size(); }

    /** The process-wide registry, builtins included. */
    static ExperimentRegistry &global();

  private:
    std::map<std::string, std::unique_ptr<Experiment>> experiments_;
};

/** Populate @p registry with every built-in experiment (the paper's
 *  figures, tables, and ablations). Defined across
 *  src/driver/experiments/. */
void registerBuiltinExperiments(ExperimentRegistry &registry);

} // namespace stms::driver

#endif // STMS_DRIVER_REGISTRY_HH
