/**
 * @file
 * Structured experiment results.
 *
 * An experiment's report() produces one Report: named scalar metrics
 * (flat, ordered, machine-diffable — the determinism tests compare
 * these), one or more titled tables (the human rendering of a paper
 * figure), and free-form notes (the "shape check" commentary the old
 * bench binaries printed). The report renders either as the familiar
 * aligned-text output or as JSON for downstream plotting.
 */

#ifndef STMS_DRIVER_REPORT_HH
#define STMS_DRIVER_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "stats/table.hh"

namespace stms::driver
{

/** Minimal JSON string escaping (control chars, quotes, backslash). */
std::string jsonEscape(const std::string &text);

/** Render a double the way the JSON report does (shortest
 *  round-trippable form; integral values print without a point). */
std::string jsonNumber(double value);

/** One titled table of an experiment's output. */
struct ReportTable
{
    std::string title;
    Table table;
};

/** Everything one experiment reports. */
class Report
{
  public:
    explicit Report(std::string experiment)
        : experiment_(std::move(experiment))
    {}

    /** Record a scalar metric; insertion order is preserved. */
    void addMetric(const std::string &name, double value);

    /** Append a titled table. */
    void addTable(std::string title, Table table);

    /** Append a line of commentary (rendered after the tables). */
    void addNote(const std::string &note);

    const std::string &experiment() const { return experiment_; }
    const std::vector<std::pair<std::string, double>> &
    metrics() const
    {
        return metrics_;
    }
    const std::vector<ReportTable> &tables() const { return tables_; }

    /** Human rendering: tables, then notes. */
    std::string toText() const;

    /** Machine rendering: {experiment, metrics{}, tables[]}. The
     *  output is byte-deterministic for identical inputs. */
    std::string toJson() const;

  private:
    std::string experiment_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<ReportTable> tables_;
    std::vector<std::string> notes_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_REPORT_HH
