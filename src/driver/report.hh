/**
 * @file
 * Structured experiment results.
 *
 * An experiment's report() produces one Report: named scalar metrics
 * (flat, ordered, machine-diffable — the determinism tests compare
 * these), one or more titled tables (the human rendering of a paper
 * figure), and free-form notes (the "shape check" commentary the old
 * bench binaries printed). The report renders either as the familiar
 * aligned-text output or as JSON for downstream plotting.
 */

#ifndef STMS_DRIVER_REPORT_HH
#define STMS_DRIVER_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "results/json.hh"
#include "results/record.hh"
#include "stats/table.hh"

namespace stms::driver
{

// The JSON writing helpers moved down into the results layer (the
// store shares them); the driver spellings remain the canonical ones
// for report sinks and tests.
using results::jsonEscape;
using results::jsonNumber;

/** One titled table of an experiment's output. */
struct ReportTable
{
    std::string title;
    Table table;
};

/** Everything one experiment reports. */
class Report
{
  public:
    explicit Report(std::string experiment)
        : experiment_(std::move(experiment))
    {}

    /** Record a scalar metric; insertion order is preserved. */
    void addMetric(const std::string &name, double value);

    /** Append a titled table. */
    void addTable(std::string title, Table table);

    /** Append a line of commentary (rendered after the tables). */
    void addNote(const std::string &note);

    const std::string &experiment() const { return experiment_; }
    const std::vector<std::pair<std::string, double>> &
    metrics() const
    {
        return metrics_;
    }
    const std::vector<ReportTable> &tables() const { return tables_; }

    /** Human rendering: tables, then notes. */
    std::string toText() const;

    /** Machine rendering: {experiment, metrics{}, tables[]}. The
     *  output is byte-deterministic for identical inputs. */
    std::string toJson() const;

    /**
     * Capture this report as a store record skeleton: experiment
     * name, metrics as scalars, tables as series. The caller fills
     * fingerprint, params, and provenance before appending.
     */
    results::ResultRecord toResultRecord() const;

  private:
    std::string experiment_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<ReportTable> tables_;
    std::vector<std::string> notes_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_REPORT_HH
