/**
 * @file
 * Structured experiment results.
 *
 * An experiment's report() produces one Report: named scalar metrics
 * (flat, ordered, machine-diffable — the determinism tests compare
 * these), one or more titled tables (the human rendering of a paper
 * figure), and free-form notes (the "shape check" commentary the old
 * bench binaries printed). The report renders either as the familiar
 * aligned-text output or as JSON for downstream plotting.
 */

#ifndef STMS_DRIVER_REPORT_HH
#define STMS_DRIVER_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "results/json.hh"
#include "results/record.hh"
#include "stats/table.hh"
#include "telemetry/sampler.hh"

namespace stms::driver
{

// The JSON writing helpers moved down into the results layer (the
// store shares them); the driver spellings remain the canonical ones
// for report sinks and tests.
using results::jsonEscape;
using results::jsonNumber;

/** One titled table of an experiment's output. */
struct ReportTable
{
    std::string title;
    Table table;
};

/** Stage timings of one executed run (seconds), for the timing key.
 *  Also the runner's per-run accounting record (runner.hh aliases
 *  this as RunTiming). */
struct ReportRunTiming
{
    std::string id;
    double acquireSeconds = 0;   ///< Trace pin/generation (or open).
    double simulateSeconds = 0;  ///< System construction + run.
    double encodeSeconds = 0;    ///< Store record build + append.
    double wallSeconds = 0;      ///< Sum of the stages.
    std::uint64_t records = 0;   ///< Trace records simulated.
    /** Peak record chunks resident for this run (chunked pipeline
     *  schedule only; 0 elsewhere). */
    std::uint64_t peakResidentChunks = 0;
    /** Epoch-sampled counter series (`--sample-every`; empty when
     *  sampling is off). Lives under the timing key like every other
     *  non-model observation, so it never perturbs fingerprints or
     *  `--no-timing` byte-compares. */
    telemetry::SampleSeries samples;
};

/**
 * Execution timing metadata attached to a report.
 *
 * Rendered under the JSON "timing" key, and ONLY there: timing is
 * noise, not model output, so it is deliberately excluded from
 * toResultRecord() — and with it from result-store fingerprints and
 * snapshot diffs. Determinism gates that byte-compare reports must
 * run the driver with --no-timing (or strip the key).
 */
struct ReportTiming
{
    bool present = false;
    double wallSeconds = 0;
    double acquireSeconds = 0;
    double simulateSeconds = 0;
    double encodeSeconds = 0;
    std::uint32_t threads = 0;  ///< Resolved worker count.
    bool pipelined = false;
    std::uint64_t records = 0;  ///< Trace records simulated.
    double recordsPerSecond = 0;
    std::uint64_t peakRssKb = 0;
    /** Records per streamed chunk (chunked pipeline; 0 = whole-trace
     *  hand-off / serial schedule). */
    std::uint64_t chunkRecords = 0;
    /** Peak chunks resident at once across all concurrent runs — the
     *  pipeline's bounded-residency witness. A regression here is the
     *  RSS blow-up BENCH_5 caught only post-hoc, now visible in every
     *  timing artifact. */
    std::uint64_t peakResidentChunks = 0;
    /** Sampling epoch in accessed cycles (0 = sampling off; only a
     *  non-zero epoch renders sampler keys, so default timing JSON
     *  is byte-identical to the pre-telemetry format). */
    std::uint64_t sampleEvery = 0;
    /** Probe names, in per-run sample row order. */
    std::vector<std::string> sampleColumns;
    std::vector<ReportRunTiming> runs;
};

/** Everything one experiment reports. */
class Report
{
  public:
    explicit Report(std::string experiment)
        : experiment_(std::move(experiment))
    {}

    /** Record a scalar metric; insertion order is preserved. */
    void addMetric(const std::string &name, double value);

    /** Append a titled table. */
    void addTable(std::string title, Table table);

    /** Append a line of commentary (rendered after the tables). */
    void addNote(const std::string &note);

    /** Attach execution timing (rendered under the "timing" key). */
    void setTiming(ReportTiming timing)
    {
        timing_ = std::move(timing);
    }

    const ReportTiming &timing() const { return timing_; }

    const std::string &experiment() const { return experiment_; }
    const std::vector<std::pair<std::string, double>> &
    metrics() const
    {
        return metrics_;
    }
    const std::vector<ReportTable> &tables() const { return tables_; }

    /** Human rendering: tables, then notes. */
    std::string toText() const;

    /** Machine rendering: {experiment, metrics{}, tables[]}. The
     *  output is byte-deterministic for identical inputs. */
    std::string toJson() const;

    /**
     * Capture this report as a store record skeleton: experiment
     * name, metrics as scalars, tables as series. The caller fills
     * fingerprint, params, and provenance before appending.
     */
    results::ResultRecord toResultRecord() const;

  private:
    std::string experiment_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<ReportTable> tables_;
    std::vector<std::string> notes_;
    ReportTiming timing_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_REPORT_HH
