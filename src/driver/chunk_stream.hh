/**
 * @file
 * Chunked streaming of synthetic workloads into the run pipeline.
 *
 * The PR-5 pipeline materialized whole multi-core traces between the
 * acquire and simulate stages; a sweep's pinned working set was the
 * queue bound times a full trace, which BENCH_5 measured as a 2.9x
 * peak-RSS blow-up and a 0.71x throughput loss. This source replaces
 * that hand-off with the same residency model trace_io uses for
 * on-disk ingest: bounded fixed-size record chunks, at most a few per
 * lane in flight, produced ahead of the simulator through
 * BoundedQueue.
 *
 * A ChunkedWorkloadSource owns one producer thread that resumes the
 * workload's per-lane generators (workload/generators.hh,
 * LaneGenerator) round-robin, pushing each finished chunk into that
 * lane's queue; simulate-side cursors pop chunks and expose them
 * through the standard RecordCursor chunk()/consume() interface, so
 * TraceCore's batch dispatch runs unmodified. Generation is
 * deterministic per lane, so the record stream — and therefore every
 * model output — is byte-identical to simulating the fully
 * materialized trace; only residency and overlap change.
 *
 * Peak residency per run is bounded by
 *   lanes x (queue capacity + 2) x chunk bytes
 * (one chunk being produced, up to `capacity` queued, one held by the
 * consuming cursor), independent of trace length. The observed peak
 * is tracked and reported into the run's timing metadata so RSS
 * regressions show up in CI artifacts.
 */

#ifndef STMS_DRIVER_CHUNK_STREAM_HH
#define STMS_DRIVER_CHUNK_STREAM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "driver/bounded_queue.hh"
#include "telemetry/trace_writer.hh"
#include "trace_io/trace_source.hh"
#include "workload/generators.hh"

namespace stms::driver
{

/**
 * Records per pipeline chunk when no knob is given. Deliberately much
 * smaller than a typical sweep's per-lane record count: a chunk that
 * covers a whole lane degenerates to whole-trace handoff and the
 * residency bound evaporates (the pinned fig7 sweep runs 64 Ki
 * records per lane — a 64 Ki default chunk reproduced PR 5's 3x RSS
 * blow-up exactly). 8 Ki records ~= 128 KiB per lane chunk keeps a
 * 16-lane run's full in-flight residency in the low megabytes while
 * still amortizing the per-chunk queue handoff over thousands of
 * records.
 */
constexpr std::uint64_t kDefaultPipelineChunkRecords = 8 * 1024;

/**
 * Live/peak chunk counters shared by every source of one schedule, so
 * the runner can report the *global* peak residency across all runs
 * in flight, not just the worst single run.
 */
struct ChunkAccounting
{
    // Observer-only counters: they guard no data, so every access is
    // relaxed. Exactness at quiescence comes from the pipeline's own
    // joins — every noteLive/noteDead happens-before the runner reads
    // the final values (producer joins in ~ChunkedWorkloadSource,
    // worker joins in the runner).
    std::atomic<std::uint64_t> resident{0};
    std::atomic<std::uint64_t> peak{0};

    void
    noteLive()
    {
        const std::uint64_t live =
            resident.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t seen = peak.load(std::memory_order_relaxed);
        while (live > seen &&
               !peak.compare_exchange_weak(
                   seen, live, std::memory_order_relaxed)) {
        }
        telemetry::emitCounter("pipeline.resident_chunks",
                               static_cast<double>(live));
    }

    void
    noteDead()
    {
        const std::uint64_t live =
            resident.fetch_sub(1, std::memory_order_relaxed) - 1;
        telemetry::emitCounter("pipeline.resident_chunks",
                               static_cast<double>(live));
    }
};

/** Streams a synthetic workload as bounded per-lane record chunks. */
class ChunkedWorkloadSource final : public trace_io::TraceSource
{
  public:
    /**
     * Start streaming @p spec. The producer thread begins generating
     * immediately and blocks once the per-lane queues fill, so an
     * unconsumed source holds only the bounded residency above.
     * @p shared, when given, additionally receives every live/dead
     * chunk transition (schedule-global accounting). @p label (the
     * run id) names the producer thread's trace track and tags its
     * generate spans; unused unless a TraceSink is installed.
     */
    explicit ChunkedWorkloadSource(
        const WorkloadSpec &spec,
        std::uint64_t chunk_records = kDefaultPipelineChunkRecords,
        ChunkAccounting *shared = nullptr, std::string label = {});

    /** Unblocks and joins the producer; safe mid-stream. */
    ~ChunkedWorkloadSource() override;

    const std::string &name() const override { return spec_.name; }
    std::uint32_t numCores() const override { return spec_.numCores; }
    std::uint64_t totalRecords() const override
    {
        return static_cast<std::uint64_t>(spec_.numCores) *
               spec_.recordsPerCore;
    }
    std::unique_ptr<trace_io::RecordCursor> openLane(CoreId lane)
        override;

    std::uint64_t chunkRecords() const { return chunkRecords_; }

    /** Most chunks resident at once (produced or queued, all lanes)
     *  so far — the pipeline RSS accounting hook. Relaxed: mid-run
     *  reads are approximate by contract; the runner's final read
     *  follows the producer join, which orders it exactly. */
    std::uint64_t peakResidentChunks() const
    {
        return peakResident_.load(std::memory_order_relaxed);
    }

    /** Producer-thread time spent generating records so far — the
     *  acquire-stage cost of this run (overlapped with simulation). */
    double produceSeconds() const
    {
        return static_cast<double>(
                   produceNanos_.load(std::memory_order_relaxed)) *
               1e-9;
    }

  private:
    class LaneCursor;
    /**
     * Chunk buffers are bound to this source's private arena rather
     * than the global heap: the producer thread is the only allocator
     * (single-threaded, lock-free bumps), and ArenaAllocator's no-op
     * deallocate lets the consuming simulator thread destroy chunk
     * vectors without ever touching the arena. Drained buffers cycle
     * back through a pool so their capacity is reused — in steady
     * state the arena stops growing at roughly the residency bound
     * (lanes x (capacity + 2) chunks), and per-chunk allocator
     * traffic drops to zero.
     */
    using ChunkVec = std::vector<TraceRecord, ArenaAllocator<TraceRecord>>;
    using ChunkQueue = BoundedQueue<ChunkVec>;

    /** Queued chunks per lane; +2 for produced/consumed chunks gives
     *  the residency bound in the file comment. */
    static constexpr std::size_t kChunksPerLane = 2;

    void produce();
    void noteChunkLive();
    void noteChunkDead();
    void notePop();

    /** Producer side: a recycled chunk buffer, or a fresh arena-bound
     *  one when the pool is dry (start-up only, in steady state). */
    ChunkVec takeChunk();

    /** Consumer side: return a drained buffer's capacity to the pool.
     *  Safe from any thread; clears but never deallocates. */
    void recycleChunk(ChunkVec &&chunk);

    WorkloadSpec spec_;
    std::uint64_t chunkRecords_;
    ChunkAccounting *shared_;
    std::string label_;
    /** Declared before the pool and queues so vectors still holding
     *  arena-bound allocators die first (their deallocate is a no-op,
     *  but keep the obvious order anyway). */
    Arena chunkArena_;
    std::mutex poolMutex_;
    std::vector<ChunkVec> pool_;
    std::vector<std::unique_ptr<ChunkQueue>> queues_;
    std::atomic<std::uint64_t> resident_{0};
    std::atomic<std::uint64_t> peakResident_{0};
    std::atomic<std::uint64_t> produceNanos_{0};

    /** Producer wakeup: cursors bump pops_ after every dequeue; the
     *  producer sleeps here when every lane queue is full. */
    std::mutex wakeMutex_;
    std::condition_variable wake_;
    std::uint64_t pops_ = 0;
    bool aborted_ = false;

    std::thread producer_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_CHUNK_STREAM_HH
