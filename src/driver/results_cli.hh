/**
 * @file
 * The driver's result-store maintenance mode.
 *
 * `driver --results {list,show,diff,gc}` operates on an existing
 * store without running any simulation:
 *
 *   --results list --store DIR              table of stored records
 *   --results show FP --store DIR           one record in full
 *                                           (FP = hex prefix)
 *   --results diff --store DIR --baseline P exit 1 on drift
 *   --results diff BEFORE AFTER             diff two snapshots
 *   --results gc --store DIR                drop superseded records
 *
 * Diff tolerances come from key=value options (abs_tol=, rel_tol=,
 * tol.<metric>=<rel>), matching results::tolerancesFromOptions().
 */

#ifndef STMS_DRIVER_RESULTS_CLI_HH
#define STMS_DRIVER_RESULTS_CLI_HH

#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "results/store.hh"

namespace stms::driver
{

struct DriverArgs;

/** Run one --results subcommand; returns the process exit code
 *  (diff: 0 clean, 1 dirty or error). */
int runResultsMode(const DriverArgs &args);

/**
 * Build the experiment-kind store record for a completed report:
 * fingerprint over (experiment, schemaVersion, options), normalized
 * params, provenance, scalars and series from the report.
 */
results::ResultRecord makeExperimentRecord(const Experiment &experiment,
                                           const Options &options,
                                           const Report &report);

} // namespace stms::driver

#endif // STMS_DRIVER_RESULTS_CLI_HH
