/**
 * @file
 * ExperimentRunner — executes an experiment's plan.
 *
 * The runner turns a plan into completed outputs. Each run passes
 * through three stages:
 *
 *   acquire   pin the synthetic trace in the TraceCache (generating
 *             it on first use), or note an ingest spec;
 *   simulate  build an isolated System/EventQueue and run it;
 *   encode    serialize the RunOutput into the result store.
 *
 * Two schedules execute those stages:
 *
 *  - fan-out (default): a pool of worker threads, each running all
 *    three stages of one run back to back — the PR-1 behavior.
 *  - pipelined (RunnerConfig::pipeline): stages exchange *bounded
 *    record chunks*, never whole traces. Each synthetic run streams
 *    through a ChunkedWorkloadSource (driver/chunk_stream.hh): a
 *    per-run producer thread resumes the lane generators chunk by
 *    chunk into bounded per-lane queues, the simulator pool consumes
 *    through ordinary RecordCursors, and a dedicated encode thread
 *    drains finished runs into the store. Generation of run k's next
 *    chunk overlaps simulation of its current one (and of other
 *    runs), while peak residency stays
 *    runs-in-flight x lanes x O(1) chunks regardless of trace
 *    length — the fix for the whole-trace hand-off that made the
 *    PR-5 pipeline lose on both RSS and throughput. Ingest runs
 *    already stream bounded chunks from disk and are unchanged.
 *
 * Either way, outputs are stored by plan index and keyed by id, so a
 * report assembled from them is bit-identical to serial execution —
 * the same gate discipline as `--threads N` since PR 1.
 *
 * With a ResultStore attached the runner becomes resumable: each
 * RunSpec is fingerprinted, already-stored points are decoded from
 * their run records instead of re-simulated, and freshly simulated
 * points are appended. Sharding (`--shard i/n`) deterministically
 * partitions the plan by run fingerprint so N machines can split one
 * sweep and merge stores.
 *
 * Wall-clock timing of every stage is collected into ExecStats; it is
 * reporting metadata only and never participates in result-store
 * fingerprints (timing is noise, not model output).
 */

#ifndef STMS_DRIVER_RUNNER_HH
#define STMS_DRIVER_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "driver/trace_cache.hh"
#include "results/store.hh"
#include "telemetry/progress.hh"
#include "telemetry/sampler.hh"

namespace stms::driver
{

/** Runner knobs (shared by the CLI and tests). */
struct RunnerConfig
{
    /** Worker threads; 1 runs on the calling thread, 0 auto-detects
     *  std::thread::hardware_concurrency(). */
    std::uint32_t threads = 1;
    /** Stage-pipelined scheduling (acquire ahead of simulate). */
    bool pipeline = false;
    /** Records per streamed chunk in the pipelined schedule; 0 uses
     *  kDefaultPipelineChunkRecords (driver/chunk_stream.hh). Chunk
     *  size never changes model output — only residency and overlap
     *  granularity — and the pipeline tests assert exactly that. */
    std::uint64_t pipelineChunkRecords = 0;
    /**
     * Telemetry: epoch-sample simulator counters every N accesses
     * into the per-run timing series (0 = inherit the process-wide
     * telemetry::globalSampleEvery(), which the CLI's --sample-every
     * sets — so nested runners, e.g. perf_suite's inner sweeps,
     * follow the flag). Never joins Options or fingerprints.
     */
    std::uint64_t sampleEvery = 0;
    /** Live sweep progress line (Auto = only when stderr is a TTY). */
    telemetry::ProgressMode progress = telemetry::ProgressMode::Auto;
    /** Archive runs here (and resume from it) when non-null. The
     *  store outlives the runner; appends are internally locked. */
    results::ResultStore *store = nullptr;
    /** Re-execute and re-append even when fingerprints are stored. */
    bool rerun = false;
    /** Shard selector: execute only plan points whose run
     *  fingerprint maps to shard @c shardIndex of @c shardCount.
     *  shardCount == 0 disables sharding; indices are 1-based. */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0;
};

/** Wall-clock stage timings of one executed run (seconds). The same
 *  struct the Report renders under its timing key, so the runner's
 *  accounting and the JSON cannot drift. */
using RunTiming = ReportRunTiming;

/** What execute() did with a plan (store/shard/timing accounting). */
struct ExecStats
{
    std::size_t planned = 0;   ///< RunSpecs in the full plan.
    std::size_t executed = 0;  ///< Simulated this invocation.
    std::size_t resumed = 0;   ///< Decoded from stored run records.
    std::size_t sharded = 0;   ///< Skipped: belong to other shards.
    std::size_t stored = 0;    ///< Run records appended.

    // Timing metadata (never fingerprinted; see file comment).
    std::uint32_t threadsResolved = 1;  ///< Actual worker count.
    bool pipelined = false;
    double wallSeconds = 0;       ///< Whole execute() duration.
    double acquireSeconds = 0;    ///< Sum over executed runs.
    double simulateSeconds = 0;
    double encodeSeconds = 0;
    std::uint64_t recordsProcessed = 0;  ///< Trace records simulated.
    /** Records per streamed chunk (0 = whole-trace hand-off). */
    std::uint64_t chunkRecords = 0;
    /** Peak record chunks resident at once across concurrent runs —
     *  the chunked pipeline's bounded-residency witness. */
    std::uint64_t peakResidentChunks = 0;
    /** Sampling epoch in effect (0 = off) + probe column names. */
    std::uint64_t sampleEvery = 0;
    std::vector<std::string> sampleColumns;
    std::vector<RunTiming> runs;  ///< Executed runs, plan order.

    /** Aggregate simulation throughput (records / wall second). */
    double
    recordsPerSecond() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(recordsProcessed) /
                         wallSeconds
                   : 0.0;
    }
};

/** Peak resident set size of this process so far, in KiB. */
std::uint64_t peakRssKb();

/**
 * Reset the kernel's peak-RSS watermark to the current RSS (Linux
 * /proc/self/clear_refs), so per-phase peaks can be measured in one
 * process. Returns false when unsupported or denied — peakRssKb()
 * then keeps reporting the process-lifetime high-water mark.
 */
bool resetPeakRss();

/** Executes experiment plans over a shared trace cache. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(TraceCache &traces,
                              RunnerConfig config = {});

    /**
     * Execute @p experiment's full plan and return its outputs.
     * Under sharding the RunSet holds only this shard's runs — callers
     * must not report() a sharded set (report() reads every id).
     */
    RunSet execute(const Experiment &experiment,
                   const Options &options,
                   ExecStats *stats = nullptr) const;

    /** Plan, execute, and report in one call. */
    Report run(const Experiment &experiment, const Options &options,
               ExecStats *stats = nullptr) const;

    const RunnerConfig &config() const { return config_; }

    /** Worker threads actually used (0 in config = auto-detected). */
    std::uint32_t resolvedThreads() const { return resolvedThreads_; }

  private:
    TraceCache &traces_;
    RunnerConfig config_;
    std::uint32_t resolvedThreads_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_RUNNER_HH
