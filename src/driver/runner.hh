/**
 * @file
 * ExperimentRunner — executes an experiment's plan.
 *
 * The runner turns a plan into completed outputs: it resolves each
 * RunSpec's trace through the TraceCache (generated once, shared
 * read-only) — or, for specs carrying an IngestSpec, streams the
 * records from disk in bounded chunks, bypassing the cache — then
 * executes the independent runs on a pool of worker threads and
 * hands the assembled RunSet to report().
 *
 * With a ResultStore attached the runner becomes resumable: each
 * RunSpec is fingerprinted, already-stored points are decoded from
 * their run records instead of re-simulated, and freshly simulated
 * points are appended — so an interrupted sweep re-invoked with the
 * same store executes only the missing fingerprints. Sharding
 * (`--shard i/n`) deterministically partitions the plan by run
 * fingerprint so N machines can split one sweep and merge stores.
 *
 * Determinism: each run builds its own System/EventQueue from const
 * inputs and all randomness is config-seeded, so a run's output is a
 * pure function of its RunSpec. Outputs are stored by plan index and
 * keyed by id, making `--threads N` bit-identical to `--threads 1`.
 */

#ifndef STMS_DRIVER_RUNNER_HH
#define STMS_DRIVER_RUNNER_HH

#include <cstdint>

#include "driver/experiment.hh"
#include "driver/trace_cache.hh"
#include "results/store.hh"

namespace stms::driver
{

/** Runner knobs (shared by the CLI and tests). */
struct RunnerConfig
{
    /** Worker threads; 0 or 1 runs on the calling thread. */
    std::uint32_t threads = 1;
    /** Print one progress line per completed run to stderr. */
    bool verbose = false;
    /** Archive runs here (and resume from it) when non-null. The
     *  store outlives the runner; appends are internally locked. */
    results::ResultStore *store = nullptr;
    /** Re-execute and re-append even when fingerprints are stored. */
    bool rerun = false;
    /** Shard selector: execute only plan points whose run
     *  fingerprint maps to shard @c shardIndex of @c shardCount.
     *  shardCount == 0 disables sharding; indices are 1-based. */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0;
};

/** What execute() did with a plan (store/shard accounting). */
struct ExecStats
{
    std::size_t planned = 0;   ///< RunSpecs in the full plan.
    std::size_t executed = 0;  ///< Simulated this invocation.
    std::size_t resumed = 0;   ///< Decoded from stored run records.
    std::size_t sharded = 0;   ///< Skipped: belong to other shards.
    std::size_t stored = 0;    ///< Run records appended.
};

/** Executes experiment plans over a shared trace cache. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(TraceCache &traces,
                              RunnerConfig config = {});

    /**
     * Execute @p experiment's full plan and return its outputs.
     * Under sharding the RunSet holds only this shard's runs — callers
     * must not report() a sharded set (report() reads every id).
     */
    RunSet execute(const Experiment &experiment,
                   const Options &options,
                   ExecStats *stats = nullptr) const;

    /** Plan, execute, and report in one call. */
    Report run(const Experiment &experiment, const Options &options,
               ExecStats *stats = nullptr) const;

    const RunnerConfig &config() const { return config_; }

  private:
    TraceCache &traces_;
    RunnerConfig config_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_RUNNER_HH
