/**
 * @file
 * ExperimentRunner — executes an experiment's plan.
 *
 * The runner turns a plan into completed outputs: it resolves each
 * RunSpec's trace through the TraceCache (generated once, shared
 * read-only) — or, for specs carrying an IngestSpec, streams the
 * records from disk in bounded chunks, bypassing the cache — then
 * executes the independent runs on a pool of worker threads and
 * hands the assembled RunSet to report().
 *
 * Determinism: each run builds its own System/EventQueue from const
 * inputs and all randomness is config-seeded, so a run's output is a
 * pure function of its RunSpec. Outputs are stored by plan index and
 * keyed by id, making `--threads N` bit-identical to `--threads 1`.
 */

#ifndef STMS_DRIVER_RUNNER_HH
#define STMS_DRIVER_RUNNER_HH

#include <cstdint>

#include "driver/experiment.hh"
#include "driver/trace_cache.hh"

namespace stms::driver
{

/** Runner knobs (shared by the CLI and tests). */
struct RunnerConfig
{
    /** Worker threads; 0 or 1 runs on the calling thread. */
    std::uint32_t threads = 1;
    /** Print one progress line per completed run to stderr. */
    bool verbose = false;
};

/** Executes experiment plans over a shared trace cache. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(TraceCache &traces,
                              RunnerConfig config = {});

    /** Execute @p experiment's full plan and return its outputs. */
    RunSet execute(const Experiment &experiment,
                   const Options &options) const;

    /** Plan, execute, and report in one call. */
    Report run(const Experiment &experiment,
               const Options &options) const;

    const RunnerConfig &config() const { return config_; }

  private:
    TraceCache &traces_;
    RunnerConfig config_;
};

} // namespace stms::driver

#endif // STMS_DRIVER_RUNNER_HH
