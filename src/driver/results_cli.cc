#include "driver/results_cli.hh"

#include <cstdio>
#include <memory>

#include "common/log.hh"

#include "driver/cli.hh"
#include "results/diff.hh"
#include "results/fingerprint.hh"
#include "stats/table.hh"

namespace stms::driver
{

namespace
{

std::unique_ptr<results::ResultStore>
openStoreOrComplain(const DriverArgs &args)
{
    if (args.storePath.empty()) {
        logRaw("--results " + args.resultsCmd +
               " needs --store DIR\n");
        return nullptr;
    }
    std::string error;
    auto store = results::ResultStore::open(args.storePath, error);
    if (!store)
        logRaw("--store: " + error + "\n");
    return store;
}

int
listRecords(const DriverArgs &args)
{
    auto store = openStoreOrComplain(args);
    if (!store)
        return 1;
    std::size_t dropped = 0;
    const std::vector<results::ResultRecord> records =
        store->loadAll(&dropped);
    Table table({"fingerprint", "kind", "experiment", "run",
                 "scalars", "timestamp", "git"});
    for (const results::ResultRecord &record : records) {
        table.addRow({record.fingerprint.hex(), record.kind,
                      record.experiment, record.run,
                      std::to_string(record.scalars.size()),
                      record.timestamp, record.gitDescribe});
    }
    std::fputs(table.toString().c_str(), stdout);
    std::printf("%zu records in %s", records.size(),
                store->recordsPath().c_str());
    if (dropped > 0)
        std::printf(" (%zu malformed lines skipped)", dropped);
    std::printf("\n");
    return 0;
}

int
showRecord(const DriverArgs &args)
{
    if (args.resultsArgs.empty()) {
        logRaw("--results show needs a fingerprint "
               "(or a unique hex prefix)\n");
        return 1;
    }
    auto store = openStoreOrComplain(args);
    if (!store)
        return 1;
    const std::string &prefix = args.resultsArgs.front();

    std::vector<results::ResultRecord> matches;
    for (results::ResultRecord &record : store->loadAll())
        if (record.fingerprint.hex().rfind(prefix, 0) == 0)
            matches.push_back(std::move(record));
    if (matches.empty()) {
        logRaw("no record matches '" + prefix + "'\n");
        return 1;
    }
    // Duplicate fingerprints (--rerun history) all match the same
    // config; show the newest. Distinct fingerprints are ambiguous.
    for (std::size_t i = 1; i < matches.size(); ++i) {
        if (!(matches[i].fingerprint ==
              matches.front().fingerprint)) {
            logRaw(logFormat("'%s' is ambiguous (%zu records); "
                             "use more hex digits",
                             prefix.c_str(), matches.size()) +
                   "\n");
            return 1;
        }
    }
    const results::ResultRecord &record = matches.back();

    std::printf("fingerprint:  %s\n", record.fingerprint.hex().c_str());
    std::printf("kind:         %s\n", record.kind.c_str());
    std::printf("experiment:   %s\n", record.experiment.c_str());
    if (!record.run.empty())
        std::printf("run:          %s\n", record.run.c_str());
    std::printf("git:          %s\n", record.gitDescribe.c_str());
    std::printf("timestamp:    %s\n", record.timestamp.c_str());

    if (!record.params.empty()) {
        Table params({"param", "value"});
        for (const auto &[key, value] : record.params)
            params.addRow({key, value});
        std::printf("\n%s", params.toString().c_str());
    }
    Table scalars({"scalar", "value"});
    for (const auto &[name, value] : record.scalars)
        scalars.addRow({name, jsonNumber(value)});
    std::printf("\n%s", scalars.toString().c_str());
    for (const results::Series &series : record.series) {
        Table rendered(series.columns);
        for (const auto &row : series.rows)
            rendered.addRow(row);
        std::printf("\n%s\n%s", series.title.c_str(),
                    rendered.toString().c_str());
    }
    return 0;
}

int
diffRecords(const DriverArgs &args)
{
    // Operand forms: `diff BEFORE AFTER`, `diff BEFORE` (after =
    // --store), or bare `diff` with --baseline as before and --store
    // as after. Anything ambiguous or over-specified is an error —
    // a regression gate must never silently compare the wrong pair.
    std::string before_path;
    std::string after_path;
    if (args.resultsArgs.size() > 2) {
        logRaw("--results diff takes at most two snapshots\n");
        return 1;
    }
    if (args.resultsArgs.size() == 2) {
        if (!args.baselinePath.empty()) {
            logRaw("--results diff: both explicit snapshots "
                   "and --baseline given; drop one\n");
            return 1;
        }
        before_path = args.resultsArgs[0];
        after_path = args.resultsArgs[1];
    } else if (args.resultsArgs.size() == 1) {
        if (!args.baselinePath.empty()) {
            logRaw("--results diff: both an explicit snapshot "
                   "and --baseline given; drop one\n");
            return 1;
        }
        before_path = args.resultsArgs[0];
        after_path = args.storePath;
    } else {
        before_path = args.baselinePath;
        after_path = args.storePath;
    }
    if (before_path.empty() || after_path.empty()) {
        logRaw("--results diff needs two snapshots: "
               "'--results diff BEFORE [AFTER]' (AFTER "
               "defaults to --store) or --baseline PATH with "
               "--store DIR\n");
        return 1;
    }

    std::string error;
    std::vector<results::ResultRecord> before;
    if (!results::loadSnapshot(before_path, before, error)) {
        logRaw("baseline: " + error + "\n");
        return 1;
    }
    std::vector<results::ResultRecord> after;
    if (!results::loadSnapshot(after_path, after, error)) {
        logRaw("store: " + error + "\n");
        return 1;
    }

    const results::DiffTolerances tolerances =
        results::tolerancesFromOptions(args.options);
    const results::DiffResult diff =
        results::diffSnapshots(before, after, tolerances);
    std::fputs(results::renderDiff(diff).c_str(), stdout);
    return diff.clean() ? 0 : 1;
}

int
gcRecords(const DriverArgs &args)
{
    auto store = openStoreOrComplain(args);
    if (!store)
        return 1;
    std::string error;
    const long dropped = store->gc(error);
    if (dropped < 0) {
        logRaw("gc: " + error + "\n");
        return 1;
    }
    std::printf("gc: dropped %ld superseded/malformed lines, kept "
                "%zu records\n",
                dropped, store->size());
    return 0;
}

} // namespace

int
runResultsMode(const DriverArgs &args)
{
    if (args.resultsCmd == "list")
        return listRecords(args);
    if (args.resultsCmd == "show")
        return showRecord(args);
    if (args.resultsCmd == "diff")
        return diffRecords(args);
    if (args.resultsCmd == "gc")
        return gcRecords(args);
    logRaw("unknown --results command '" + args.resultsCmd +
           "' (expected list, show, diff, or gc)\n");
    return 1;
}

results::ResultRecord
makeExperimentRecord(const Experiment &experiment,
                     const Options &options, const Report &report)
{
    results::ResultRecord record = report.toResultRecord();
    record.experiment = experiment.name();
    record.params = results::normalizedParams(options.items());
    record.fingerprint = results::fingerprintExperiment(
        experiment.name(), experiment.schemaVersion(),
        options.items());
    record.gitDescribe = results::gitDescribe();
    record.timestamp = results::utcTimestamp();
    return record;
}

} // namespace stms::driver
