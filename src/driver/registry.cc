#include "driver/registry.hh"

#include "common/log.hh"

namespace stms::driver
{

void
ExperimentRegistry::add(std::unique_ptr<Experiment> experiment)
{
    stms_assert(experiment != nullptr, "null experiment");
    const std::string name = experiment->name();
    const bool inserted =
        experiments_.emplace(name, std::move(experiment)).second;
    if (!inserted)
        stms_fatal("duplicate experiment name '%s'", name.c_str());
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    auto it = experiments_.find(name);
    return it == experiments_.end() ? nullptr : it->second.get();
}

std::vector<const Experiment *>
ExperimentRegistry::all() const
{
    std::vector<const Experiment *> result;
    result.reserve(experiments_.size());
    for (const auto &[name, experiment] : experiments_)
        result.push_back(experiment.get());
    return result;  // std::map iteration is already name-sorted.
}

ExperimentRegistry &
ExperimentRegistry::global()
{
    static ExperimentRegistry registry = [] {
        ExperimentRegistry r;
        registerBuiltinExperiments(r);
        return r;
    }();
    return registry;
}

} // namespace stms::driver
