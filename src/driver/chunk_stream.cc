#include "driver/chunk_stream.hh"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/log.hh"

namespace stms::driver
{

/** One lane's consuming end: holds exactly the chunk being simulated
 *  and refills from the lane queue when it drains. */
class ChunkedWorkloadSource::LaneCursor final
    : public trace_io::RecordCursor
{
  public:
    LaneCursor(ChunkedWorkloadSource &source, ChunkQueue &queue)
        : source_(source), queue_(queue)
    {
        refill();
    }

    ~LaneCursor() override { dropChunk(); }

    const TraceRecord *
    peek() override
    {
        if (index_ >= chunk_.size() && !exhausted_)
            refill();
        return index_ < chunk_.size() ? &chunk_[index_] : nullptr;
    }

    void next() override { ++index_; }

    std::span<const TraceRecord>
    chunk() override
    {
        if (index_ >= chunk_.size() && !exhausted_)
            refill();
        return {chunk_.data() + index_, chunk_.size() - index_};
    }

    void consume(std::size_t count) override { index_ += count; }

  private:
    void
    refill()
    {
        dropChunk();
        if (auto next = queue_.pop()) {
            chunk_ = std::move(*next);
            source_.notePop();
        } else {
            exhausted_ = true;
        }
        index_ = 0;
    }

    void
    dropChunk()
    {
        if (!chunk_.empty()) {
            source_.recycleChunk(std::move(chunk_));
            source_.noteChunkDead();
        }
    }

    ChunkedWorkloadSource &source_;
    ChunkQueue &queue_;
    ChunkVec chunk_;
    std::size_t index_ = 0;
    bool exhausted_ = false;
};

ChunkedWorkloadSource::ChunkedWorkloadSource(
    const WorkloadSpec &spec, std::uint64_t chunk_records,
    ChunkAccounting *shared, std::string label)
    : spec_(spec), chunkRecords_(chunk_records), shared_(shared),
      label_(std::move(label))
{
    stms_assert(chunkRecords_ > 0, "chunk size must be nonzero");
    queues_.reserve(spec_.numCores);
    for (CoreId lane = 0; lane < spec_.numCores; ++lane) {
        queues_.push_back(std::make_unique<ChunkQueue>(kChunksPerLane));
        // Span-only: many per-run lane queues sharing one counter
        // track would garble it; global residency is covered by the
        // pipeline.resident_chunks counter instead.
        queues_.back()->instrument("queue.chunks", false);
    }
    producer_ = std::thread([this] { produce(); });
}

ChunkedWorkloadSource::~ChunkedWorkloadSource()
{
    // An abandoned source (simulation never drained it) leaves the
    // producer parked; closing the queues and flagging the abort lets
    // it exit from either the tryPush or the wait.
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        aborted_ = true;
    }
    for (auto &queue : queues_)
        queue->close();
    wake_.notify_all();
    if (producer_.joinable())
        producer_.join();
    // Chunks still enqueued were counted live when produced but never
    // reached a cursor; drain them so the resident accounting (and
    // the shared pipeline.resident_chunks series) balances to zero.
    for (auto &queue : queues_)
        while (queue->pop())
            noteChunkDead();
}

std::unique_ptr<trace_io::RecordCursor>
ChunkedWorkloadSource::openLane(CoreId lane)
{
    stms_assert(lane < spec_.numCores,
                "lane %u out of range (workload has %u lanes)", lane,
                spec_.numCores);
    return std::make_unique<LaneCursor>(*this, *queues_[lane]);
}

void
ChunkedWorkloadSource::produce()
{
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->threadName("produce " + label_);
    std::vector<LaneGenerator> lanes;
    lanes.reserve(spec_.numCores);
    for (CoreId lane = 0; lane < spec_.numCores; ++lane)
        lanes.emplace_back(spec_, lane);

    // A chunk that found its lane queue full is parked here and
    // retried next pass — the producer never blocks on one specific
    // lane, because the simulator thread may itself be blocked
    // waiting on a *different* lane's queue (lanes consume at
    // different record rates; with tiny chunks the skew exceeds any
    // fixed queue bound almost immediately).
    std::vector<std::optional<ChunkVec>> parked(spec_.numCores);

    // A lane's queue is closed the moment the lane is fully produced
    // and flushed — NOT at end of stream. Waiting for every lane
    // would deadlock: the simulator can block popping an exhausted
    // lane while the remaining lanes' queues are full, leaving the
    // producer asleep waiting for a pop that can never come (the
    // consumer-side mirror of the parked-chunk hazard above).
    std::vector<bool> closed(spec_.numCores, false);

    while (true) {
        std::uint64_t pops_before;
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
            pops_before = pops_;
        }
        bool progressed = false;
        bool work_left = false;
        for (CoreId lane = 0; lane < spec_.numCores; ++lane) {
            if (parked[lane]) {
                switch (queues_[lane]->tryPush(*parked[lane])) {
                case PushResult::Ok:
                    parked[lane].reset();
                    progressed = true;
                    break;
                case PushResult::Full:
                    work_left = true;
                    continue;
                case PushResult::Closed:
                    // Teardown: account every parked chunk (this
                    // lane's included — it is still in parked[]).
                    for (auto &chunk : parked)
                        if (chunk)
                            noteChunkDead();
                    return;
                }
            }
            if (lanes[lane].done()) {
                if (!closed[lane] && !parked[lane]) {
                    queues_[lane]->close();
                    closed[lane] = true;
                }
                continue;
            }
            const auto cap = static_cast<std::size_t>(
                std::min<std::uint64_t>(chunkRecords_,
                                        spec_.recordsPerCore));
            ChunkVec chunk = takeChunk();
            chunk.resize(cap);
            const auto fill_start = std::chrono::steady_clock::now();
            std::size_t filled;
            {
                telemetry::ScopedSpan span("stage", "generate",
                                           label_);
                filled = lanes[lane].fill(chunk.data(), cap);
            }
            chunk.resize(filled);
            // Relaxed: monotonic accumulator read by
            // produceSeconds() — mid-run reads are documented
            // approximate, and the final read happens after the
            // producer join in ~ChunkedWorkloadSource (the join is
            // the happens-before edge that makes it exact).
            produceNanos_.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - fill_start)
                        .count()),
                std::memory_order_relaxed);
            noteChunkLive();
            switch (queues_[lane]->tryPush(chunk)) {
            case PushResult::Ok:
                progressed = true;
                break;
            case PushResult::Full:
                parked[lane] = std::move(chunk);
                break;
            case PushResult::Closed:
                noteChunkDead();  // The chunk in hand...
                for (auto &other : parked)
                    if (other)
                        noteChunkDead();  // ...plus any parked ones.
                return;
            }
            work_left = true;
        }
        if (!work_left)
            break;
        if (!progressed) {
            // Every queue is full: sleep until a cursor pops (or the
            // source is torn down).
            telemetry::ScopedSpan wait_span("queue", "produce wait",
                                            label_);
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wake_.wait(lock, [&] {
                return pops_ != pops_before || aborted_;
            });
            if (aborted_) {
                for (auto &chunk : parked)
                    if (chunk)
                        noteChunkDead();
                return;
            }
        }
    }
    for (auto &queue : queues_)
        queue->close();
}

void
ChunkedWorkloadSource::noteChunkLive()
{
    // Relaxed throughout: resident_/peakResident_ are observer-only
    // counters (telemetry + the peak watermark report); they guard no
    // data. fetch_add keeps the count exact, the CAS loop keeps the
    // peak monotone, and no reader infers other memory from them.
    const std::uint64_t live =
        resident_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peakResident_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peakResident_.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
    if (shared_)
        shared_->noteLive();
}

void
ChunkedWorkloadSource::noteChunkDead()
{
    resident_.fetch_sub(1, std::memory_order_relaxed);
    if (shared_)
        shared_->noteDead();
}

ChunkedWorkloadSource::ChunkVec
ChunkedWorkloadSource::takeChunk()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        if (!pool_.empty()) {
            ChunkVec chunk = std::move(pool_.back());
            pool_.pop_back();
            return chunk;
        }
    }
    // Pool dry: bind a fresh buffer to the source arena. Only the
    // producer thread ever lands here, so the arena sees exactly one
    // allocating thread (its single-thread contract).
    return ChunkVec(ArenaAllocator<TraceRecord>(&chunkArena_));
}

void
ChunkedWorkloadSource::recycleChunk(ChunkVec &&chunk)
{
    // clear() destroys records (trivially) but keeps capacity; the
    // arena storage itself is reclaimed only when the source dies.
    chunk.clear();
    std::lock_guard<std::mutex> lock(poolMutex_);
    pool_.push_back(std::move(chunk));
}

void
ChunkedWorkloadSource::notePop()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        ++pops_;
    }
    wake_.notify_one();
}

} // namespace stms::driver
