/**
 * @file
 * Bounded MPMC hand-off queue for the pipelined run scheduler.
 *
 * Stages of the run pipeline (acquire -> simulate -> encode) hand
 * work over through these queues. The bound is what makes the
 * pipeline memory-safe: the acquire stage can run at most `capacity`
 * items ahead of the simulators, so the set of pinned traces — and
 * with it peak RSS — stays constant no matter how long the sweep is.
 *
 * close() ends the stream: blocked producers give up, and consumers
 * drain the remaining items before pop() returns nullopt.
 */

#ifndef STMS_DRIVER_BOUNDED_QUEUE_HH
#define STMS_DRIVER_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/log.hh"
#include "telemetry/trace_writer.hh"

namespace stms::driver
{

/** Outcome of a non-blocking tryPush. */
enum class PushResult : std::uint8_t
{
    Ok,      ///< Item enqueued.
    Full,    ///< No room; the item was left with the caller.
    Closed,  ///< Stream ended; the item was left with the caller.
};

/** Blocking bounded queue; any number of producers and consumers. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        stms_assert(capacity > 0, "queue capacity must be nonzero");
    }

    /**
     * Telemetry: name this queue in the trace. Occupancy becomes a
     * counter track named @p name (pass counters=false for queues
     * whose occupancy would aggregate wrongly across instances, e.g.
     * the per-run per-lane chunk queues), and blocked push/pop waits
     * become spans. @p name must have static storage duration. A
     * no-op unless a TraceSink is installed — the hot path without
     * one stays branch-plus-load cheap.
     */
    void
    instrument(const char *name, bool counters = true)
    {
        traceName_ = name;
        traceCounters_ = counters;
    }

    /**
     * Block until there is room, then enqueue @p item.
     * @return false if the queue was closed (item dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        {
            std::optional<telemetry::ScopedSpan> wait_span;
            if (traceName_ && !closed_ &&
                items_.size() >= capacity_ && telemetry::traceSink())
                wait_span.emplace("queue", "push wait", traceName_);
            notFull_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
        }
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        noteOccupancy();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue @p item if there is room, without blocking. On Full or
     * Closed the item is not consumed (the caller keeps it and may
     * retry). A producer feeding several queues uses this to skip a
     * full one instead of blocking on it — the starvation-free pacing
     * the chunked pipeline needs when one consumer lane runs ahead of
     * another.
     */
    PushResult
    tryPush(T &item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return PushResult::Closed;
        if (items_.size() >= capacity_)
            return PushResult::Full;
        items_.push_back(std::move(item));
        noteOccupancy();
        notEmpty_.notify_one();
        return PushResult::Ok;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained. @return the item, or nullopt at end of stream.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        {
            std::optional<telemetry::ScopedSpan> wait_span;
            if (traceName_ && !closed_ && items_.empty() &&
                telemetry::traceSink())
                wait_span.emplace("queue", "pop wait", traceName_);
            notEmpty_.wait(lock,
                           [&] { return closed_ || !items_.empty(); });
        }
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        noteOccupancy();
        notFull_.notify_one();
        return item;
    }

    /** End the stream: producers stop, consumers drain then finish. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

  private:
    /** Occupancy counter sample; called with mutex_ held, so counter
     *  timestamps are totally ordered with the size they report. */
    void
    noteOccupancy()
    {
        if (traceName_ && traceCounters_)
            telemetry::emitCounter(
                traceName_, static_cast<double>(items_.size()));
    }

    const std::size_t capacity_;
    std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
    const char *traceName_ = nullptr;
    bool traceCounters_ = true;
};

} // namespace stms::driver

#endif // STMS_DRIVER_BOUNDED_QUEUE_HH
