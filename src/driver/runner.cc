#include "driver/runner.hh"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "results/fingerprint.hh"
#include "results/run_codec.hh"

namespace stms::driver
{

ExperimentRunner::ExperimentRunner(TraceCache &traces,
                                   RunnerConfig config)
    : traces_(traces), config_(config)
{
    if (config_.shardCount > 0) {
        stms_assert(config_.shardIndex >= 1 &&
                        config_.shardIndex <= config_.shardCount,
                    "shard index out of range");
        stms_assert(config_.store != nullptr,
                    "sharding requires a result store");
    }
}

RunSet
ExperimentRunner::execute(const Experiment &experiment,
                          const Options &options,
                          ExecStats *stats) const
{
    std::vector<RunSpec> plan = experiment.plan(options);

    // Cross-cutting STMS knobs apply here, after plan(), so every
    // experiment honors them without threading them through each
    // definition. Sharding the index table never changes model
    // results (core/sharded_index_table.hh), so this cannot
    // invalidate a plan's figure semantics.
    const std::uint32_t index_shards = plannedIndexShards(options);
    if (index_shards > 1) {
        for (RunSpec &spec : plan) {
            if (spec.config.stms)
                spec.config.stms->indexShards = index_shards;
        }
    }

    ExecStats local;
    local.planned = plan.size();

    // Per-spec store bookkeeping, decided up front so the worker
    // loop stays a pure index -> output map.
    enum class Action : std::uint8_t { Run, Resume, Shard };
    std::vector<Action> actions(plan.size(), Action::Run);
    std::vector<results::Fingerprint> fingerprints(plan.size());
    std::vector<RunOutput> outputs(plan.size());
    // Force-append when a stored record exists but could not be
    // decoded (incompatible codec): the fresh record must supersede
    // it despite the fingerprint already being indexed.
    std::vector<std::uint8_t> force_store(plan.size(), 0);

    const bool fingerprinted =
        config_.store != nullptr || config_.shardCount > 0;
    if (fingerprinted) {
        const results::ParamList params = options.items();
        for (std::size_t i = 0; i < plan.size(); ++i) {
            fingerprints[i] = results::fingerprintRun(
                experiment.name(), experiment.schemaVersion(),
                plan[i].id, params);
            if (config_.shardCount > 0 &&
                fingerprints[i].value % config_.shardCount !=
                    config_.shardIndex - 1) {
                actions[i] = Action::Shard;
                ++local.sharded;
                continue;
            }
            if (!config_.store || config_.rerun)
                continue;
            // findLatest serves from the store's in-memory cache:
            // one records.jsonl parse per store, not per experiment.
            const auto archived =
                config_.store->findLatest(fingerprints[i]);
            if (!archived || archived->kind != results::kKindRun)
                continue;
            std::string decode_error;
            if (results::decodeRunOutput(archived->scalars,
                                         outputs[i], decode_error)) {
                actions[i] = Action::Resume;
                ++local.resumed;
            } else {
                // An incompatible or damaged record: re-simulate
                // rather than trust it.
                outputs[i] = RunOutput{};
                force_store[i] = 1;
            }
        }
    }

    std::atomic<std::size_t> appended{0};
    auto executeOne = [&](std::size_t index) {
        const RunSpec &spec = plan[index];
        if (spec.ingest) {
            // Ingested traces stream per run — a fresh reader per
            // RunSpec, one bounded chunk per lane resident — and
            // never enter the TraceCache.
            std::string error;
            auto source = trace_io::openSource(*spec.ingest, error);
            if (!source) {
                stms_fatal("run '%s': %s", spec.id.c_str(),
                           error.c_str());
            }
            outputs[index] = runTrace(*source, spec.config);
        } else {
            const Trace &trace =
                traces_.get(spec.workload, spec.records);
            outputs[index] = runTrace(trace, spec.config);
        }
        if (config_.store) {
            results::ResultRecord record;
            record.kind = results::kKindRun;
            record.fingerprint = fingerprints[index];
            record.experiment = experiment.name();
            record.run = spec.id;
            record.params = results::normalizedParams(options.items());
            record.gitDescribe = results::gitDescribe();
            record.timestamp = results::utcTimestamp();
            record.scalars = results::encodeRunOutput(outputs[index]);
            if (config_.store->append(record,
                                      config_.rerun ||
                                          force_store[index] != 0))
                appended.fetch_add(1);
        }
        if (config_.verbose) {
            std::fprintf(stderr, "[%s] run %zu/%zu done: %s\n",
                         experiment.name().c_str(), index + 1,
                         plan.size(), spec.id.c_str());
        }
    };

    std::vector<std::size_t> pending;
    pending.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (actions[i] == Action::Run)
            pending.push_back(i);
    local.executed = pending.size();

    const std::size_t workers = std::min<std::size_t>(
        config_.threads > 0 ? config_.threads : 1, pending.size());
    if (workers <= 1) {
        for (const std::size_t index : pending)
            executeOne(index);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < pending.size(); i = next.fetch_add(1)) {
                    executeOne(pending[i]);
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
    }

    local.stored = appended.load();

    RunSet runs;
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (actions[i] != Action::Shard)
            runs.add(plan[i].id, std::move(outputs[i]));
    if (stats)
        *stats = local;
    return runs;
}

Report
ExperimentRunner::run(const Experiment &experiment,
                      const Options &options, ExecStats *stats) const
{
    return experiment.report(options,
                             execute(experiment, options, stats));
}

} // namespace stms::driver
