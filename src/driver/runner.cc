#include "driver/runner.hh"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace stms::driver
{

ExperimentRunner::ExperimentRunner(TraceCache &traces,
                                   RunnerConfig config)
    : traces_(traces), config_(config)
{}

RunSet
ExperimentRunner::execute(const Experiment &experiment,
                          const Options &options) const
{
    const std::vector<RunSpec> plan = experiment.plan(options);
    std::vector<RunOutput> outputs(plan.size());

    auto executeOne = [&](std::size_t index) {
        const RunSpec &spec = plan[index];
        if (spec.ingest) {
            // Ingested traces stream per run — a fresh reader per
            // RunSpec, one bounded chunk per lane resident — and
            // never enter the TraceCache.
            std::string error;
            auto source = trace_io::openSource(*spec.ingest, error);
            if (!source) {
                stms_fatal("run '%s': %s", spec.id.c_str(),
                           error.c_str());
            }
            outputs[index] = runTrace(*source, spec.config);
        } else {
            const Trace &trace =
                traces_.get(spec.workload, spec.records);
            outputs[index] = runTrace(trace, spec.config);
        }
        if (config_.verbose) {
            std::fprintf(stderr, "[%s] run %zu/%zu done: %s\n",
                         experiment.name().c_str(), index + 1,
                         plan.size(), spec.id.c_str());
        }
    };

    const std::size_t workers =
        std::min<std::size_t>(config_.threads > 0 ? config_.threads : 1,
                              plan.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            executeOne(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < plan.size(); i = next.fetch_add(1)) {
                    executeOne(i);
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
    }

    RunSet runs;
    for (std::size_t i = 0; i < plan.size(); ++i)
        runs.add(plan[i].id, std::move(outputs[i]));
    return runs;
}

Report
ExperimentRunner::run(const Experiment &experiment,
                      const Options &options) const
{
    return experiment.report(options, execute(experiment, options));
}

} // namespace stms::driver
