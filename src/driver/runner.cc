#include "driver/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/resource.h>
#ifdef __GLIBC__
#include <malloc.h>
#endif

#include "common/arena.hh"
#include "common/log.hh"
#include "driver/bounded_queue.hh"
#include "driver/chunk_stream.hh"
#include "results/fingerprint.hh"
#include "results/run_codec.hh"
#include "telemetry/trace_writer.hh"
#include "workload/workloads.hh"

namespace stms::driver
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Name the calling thread's trace track (no-op when tracing off). */
void
nameTraceThread(const char *name)
{
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->threadName(name);
}

/** Flush the calling thread's span buffer (run-boundary contract). */
void
flushTraceThread()
{
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->flushCurrentThread();
}

/** Open/close the run-lifecycle async span (cat "run", id = plan
 *  index). Begin and end may run on different threads — exactly what
 *  the b/e async phases exist for. */
void
traceRunBegin(std::size_t index, const std::string &id)
{
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->asyncBegin("run", index, id);
}

void
traceRunEnd(std::size_t index, const std::string &id)
{
    if (telemetry::TraceSink *sink = telemetry::traceSink())
        sink->asyncEnd("run", index, id);
}

} // namespace

std::uint64_t
peakRssKb()
{
    // VmHWM is exact on Linux; ru_maxrss is the portable fallback.
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#ifdef __APPLE__
        // ru_maxrss is bytes on macOS, KiB elsewhere.
        return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
        return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
    }
    return 0;
}

bool
resetPeakRss()
{
    // The run arena retains its blocks across runs by design (warm
    // reuse); for the same double-counting reason as malloc_trim
    // below, release this thread's cached run arena so a later phase
    // running on *other* threads is not floored by it.
    trimThreadRunArena();
#ifdef __GLIBC__
    // Return freed heap to the kernel first: malloc retains freed
    // pages in its arenas, so without the trim the watermark resets
    // to the previous phase's near-peak RSS and a later phase that
    // allocates from *new* threads (fresh arenas) double-counts that
    // retained floor on top of its own footprint.
    malloc_trim(0);
#endif
    // Writing "5" to clear_refs resets VmHWM to the *current* RSS, so
    // a measurement taken after this isolates one phase's high-water
    // mark instead of inheriting every earlier allocation's. Linux
    // only, and some sandboxes deny the write — callers must treat
    // false as "peak is still the process-lifetime value".
    std::ofstream clear("/proc/self/clear_refs");
    if (!clear.is_open())
        return false;
    clear << "5";
    clear.flush();
    return clear.good();
}

ExperimentRunner::ExperimentRunner(TraceCache &traces,
                                   RunnerConfig config)
    : traces_(traces), config_(config)
{
    if (config_.shardCount > 0) {
        stms_assert(config_.shardIndex >= 1 &&
                        config_.shardIndex <= config_.shardCount,
                    "shard index out of range");
        stms_assert(config_.store != nullptr,
                    "sharding requires a result store");
    }
    // threads == 0 auto-detects. The resolved count is execution
    // metadata only — it never reaches plans, options, or
    // fingerprints, so stored results stay thread-count-independent.
    resolvedThreads_ = config_.threads;
    if (resolvedThreads_ == 0) {
        resolvedThreads_ = std::thread::hardware_concurrency();
        if (resolvedThreads_ == 0)
            resolvedThreads_ = 1;
    }
}

RunSet
ExperimentRunner::execute(const Experiment &experiment,
                          const Options &options,
                          ExecStats *stats) const
{
    const Clock::time_point wall_start = Clock::now();
    std::vector<RunSpec> plan = experiment.plan(options);

    // Cross-cutting STMS knobs apply here, after plan(), so every
    // experiment honors them without threading them through each
    // definition. Sharding the index table never changes model
    // results (core/sharded_index_table.hh), so this cannot
    // invalidate a plan's figure semantics.
    const std::uint32_t index_shards = plannedIndexShards(options);
    if (index_shards > 1) {
        for (RunSpec &spec : plan) {
            if (spec.config.stms)
                spec.config.stms->indexShards = index_shards;
        }
    }

    // --mem-backend swaps the memory timing model under every run the
    // same way, except runs that pinned their backend (mem_tech_sweep
    // plans one run per backend; a global override must not collapse
    // that sweep onto a single model).
    if (const auto backend = plannedMemBackend(options)) {
        for (RunSpec &spec : plan) {
            if (!spec.config.sim.memory.backendPinned)
                spec.config.sim.memory.backend = *backend;
        }
    }

    // Telemetry sampling rides the same chokepoint — but NOT the
    // Options store: the epoch is observation, not configuration, so
    // it must never reach normalizedParams()/fingerprints. Probes
    // only read counters, so model output is untouched (the
    // telemetry determinism tests byte-compare exactly that).
    const std::uint64_t sample_every =
        config_.sampleEvery != 0 ? config_.sampleEvery
                                 : telemetry::globalSampleEvery();
    if (sample_every != 0) {
        for (RunSpec &spec : plan)
            spec.config.sim.sampleEvery = sample_every;
    }

    ExecStats local;
    local.planned = plan.size();

    // Per-spec store bookkeeping, decided up front so the worker
    // loop stays a pure index -> output map.
    enum class Action : std::uint8_t { Run, Resume, Shard };
    std::vector<Action> actions(plan.size(), Action::Run);
    std::vector<results::Fingerprint> fingerprints(plan.size());
    std::vector<RunOutput> outputs(plan.size());
    // Force-append when a stored record exists but could not be
    // decoded (incompatible codec): the fresh record must supersede
    // it despite the fingerprint already being indexed.
    std::vector<std::uint8_t> force_store(plan.size(), 0);

    const bool fingerprinted =
        config_.store != nullptr || config_.shardCount > 0;
    if (fingerprinted) {
        const results::ParamList params = options.items();
        for (std::size_t i = 0; i < plan.size(); ++i) {
            fingerprints[i] = results::fingerprintRun(
                experiment.name(), experiment.schemaVersion(),
                plan[i].id, params);
            if (config_.shardCount > 0 &&
                fingerprints[i].value % config_.shardCount !=
                    config_.shardIndex - 1) {
                actions[i] = Action::Shard;
                ++local.sharded;
                continue;
            }
            if (!config_.store || config_.rerun)
                continue;
            // findLatest serves from the store's in-memory cache:
            // one records.jsonl parse per store, not per experiment.
            const auto archived =
                config_.store->findLatest(fingerprints[i]);
            if (!archived || archived->kind != results::kKindRun)
                continue;
            std::string decode_error;
            if (results::decodeRunOutput(archived->scalars,
                                         outputs[i], decode_error)) {
                actions[i] = Action::Resume;
                ++local.resumed;
            } else {
                // An incompatible or damaged record: re-simulate
                // rather than trust it.
                outputs[i] = RunOutput{};
                force_store[i] = 1;
            }
        }
    }

    std::vector<std::size_t> pending;
    pending.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (actions[i] == Action::Run)
            pending.push_back(i);
    local.executed = pending.size();

    std::vector<RunTiming> timings(plan.size());
    std::atomic<std::size_t> appended{0};

    // --- Stage bodies -------------------------------------------------

    // acquire: pin the synthetic trace (generating on first use).
    // Ingest runs open their readers in the simulate stage instead, so
    // the one-bounded-chunk-per-lane residency guarantee starts only
    // when the run actually executes.
    auto acquireOne = [&](std::size_t index) -> TraceCache::Handle {
        const RunSpec &spec = plan[index];
        if (spec.ingest)
            return TraceCache::Handle();
        telemetry::ScopedSpan span("stage", "acquire", spec.id);
        const Clock::time_point start = Clock::now();
        TraceCache::Handle handle =
            traces_.acquire(spec.workload, spec.records);
        timings[index].acquireSeconds = secondsSince(start);
        return handle;
    };

    // simulate: one isolated System/EventQueue per run.
    auto simulateOne = [&](std::size_t index,
                           TraceCache::Handle handle) {
        const RunSpec &spec = plan[index];
        if (spec.ingest) {
            // Ingested traces stream per run — a fresh reader per
            // RunSpec, one bounded chunk per lane resident — and
            // never enter the TraceCache.
            const Clock::time_point open_start = Clock::now();
            std::string error;
            std::unique_ptr<trace_io::TraceSource> source;
            {
                telemetry::ScopedSpan span("stage", "acquire",
                                           spec.id);
                source = trace_io::openSource(*spec.ingest, error);
            }
            if (!source) {
                stms_fatal("run '%s': %s", spec.id.c_str(),
                           error.c_str());
            }
            timings[index].acquireSeconds = secondsSince(open_start);
            telemetry::ScopedSpan span("stage", "simulate", spec.id);
            const Clock::time_point start = Clock::now();
            outputs[index] = runTrace(*source, spec.config);
            timings[index].simulateSeconds = secondsSince(start);
            // A streaming source may not know its length up front
            // (ChampSim through a decompressor pipe reports 0); the
            // simulated access count is the records actually driven.
            timings[index].records = source->totalRecords();
            if (timings[index].records == 0)
                timings[index].records =
                    outputs[index].sim.mem.accesses;
        } else {
            timings[index].records = handle.trace().totalRecords();
            telemetry::ScopedSpan span("stage", "simulate", spec.id);
            const Clock::time_point start = Clock::now();
            outputs[index] = runTrace(handle.trace(), spec.config);
            timings[index].simulateSeconds = secondsSince(start);
        }
        stms_debug("[%s] run %zu/%zu done: %s",
                   experiment.name().c_str(), index + 1, plan.size(),
                   spec.id.c_str());
    };

    // encode: serialize into the store. The span covers the stage
    // even with no store attached (instantaneous), so serial and
    // pipelined traces always show the same three stages per run.
    auto encodeOne = [&](std::size_t index) {
        telemetry::ScopedSpan span("stage", "encode", plan[index].id);
        if (!config_.store)
            return;
        const Clock::time_point start = Clock::now();
        results::ResultRecord record;
        record.kind = results::kKindRun;
        record.fingerprint = fingerprints[index];
        record.experiment = experiment.name();
        record.run = plan[index].id;
        record.params = results::normalizedParams(options.items());
        record.gitDescribe = results::gitDescribe();
        record.timestamp = results::utcTimestamp();
        record.scalars = results::encodeRunOutput(outputs[index]);
        {
            telemetry::ScopedSpan append_span("store", "store.append",
                                              plan[index].id);
            if (config_.store->append(record,
                                      config_.rerun ||
                                          force_store[index] != 0))
                appended.fetch_add(1);
        }
        timings[index].encodeSeconds = secondsSince(start);
    };

    // --- Schedules ----------------------------------------------------

    const std::size_t workers = std::min<std::size_t>(
        std::max<std::uint32_t>(resolvedThreads_, 1), pending.size());

    // Report the execution actually used, not the one requested: a
    // <= 1-run plan degenerates to fan-out, and the pool never
    // exceeds the pending work.
    const bool pipelined = config_.pipeline && pending.size() > 1;
    local.pipelined = pipelined;
    local.threadsResolved =
        static_cast<std::uint32_t>(std::max<std::size_t>(workers, 1));

    telemetry::ProgressMeter progress(
        telemetry::progressEnabled(config_.progress) &&
            !pending.empty(),
        experiment.name(), pending.size(), local.threadsResolved);

    if (!pipelined) {
        // Fan-out: each worker runs all three stages back to back.
        auto executeOne = [&](std::size_t index) {
            traceRunBegin(index, plan[index].id);
            simulateOne(index, acquireOne(index));
            encodeOne(index);
            traceRunEnd(index, plan[index].id);
            flushTraceThread();
            progress.noteRun(timings[index].records,
                             timings[index].acquireSeconds,
                             timings[index].simulateSeconds,
                             timings[index].encodeSeconds);
        };
        if (workers <= 1) {
            for (const std::size_t index : pending)
                executeOne(index);
        } else {
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&, w] {
                    char label[32];
                    std::snprintf(label, sizeof(label), "worker-%zu",
                                  w);
                    nameTraceThread(label);
                    for (std::size_t i = next.fetch_add(1);
                         i < pending.size(); i = next.fetch_add(1)) {
                        executeOne(pending[i]);
                    }
                });
            }
            for (auto &thread : pool)
                thread.join();
        }
    } else {
        // Pipelined: stages exchange bounded record chunks, never
        // whole traces. The acquire stage opens a ChunkedWorkloadSource
        // per synthetic run — its producer thread generates lane
        // chunks ahead of the simulator, paced by per-lane bounded
        // queues — and hands sources (not traces) to the simulator
        // pool over a bounded run-lookahead queue. A dedicated
        // encoder drains into the store. Residency is therefore
        // (runs in flight) x lanes x O(1) chunks, independent of
        // trace length; ingest runs keep their existing bounded
        // streaming path inside simulateOne.
        const std::uint64_t chunk_records =
            config_.pipelineChunkRecords != 0
                ? config_.pipelineChunkRecords
                : kDefaultPipelineChunkRecords;
        local.chunkRecords = chunk_records;
        ChunkAccounting chunk_accounting;

        struct AcquiredRun
        {
            std::size_t index;
            std::unique_ptr<ChunkedWorkloadSource> source;
        };
        // Run lookahead is a residency multiplier, not a throughput
        // one: every queued source has a live producer thread holding
        // lanes x O(1) chunks, so capacity here scales peak RSS with
        // the worker count. One spare run is enough to keep the
        // simulators from ever waiting on acquire.
        BoundedQueue<AcquiredRun> acquired(2);
        BoundedQueue<std::size_t> simulated(2 * workers + 2);
        acquired.instrument("queue.acquired");
        simulated.instrument("queue.simulated");

        std::thread acquirer([&] {
            nameTraceThread("acquire");
            for (const std::size_t index : pending) {
                const RunSpec &spec = plan[index];
                traceRunBegin(index, spec.id);
                AcquiredRun item{index, nullptr};
                if (!spec.ingest) {
                    // The span covers opening the stream (the bulk of
                    // acquire cost — generation — lands on the
                    // producer thread as "generate" spans).
                    telemetry::ScopedSpan span("stage", "acquire",
                                               spec.id);
                    item.source =
                        std::make_unique<ChunkedWorkloadSource>(
                            makeWorkload(spec.workload, spec.records),
                            chunk_records, &chunk_accounting,
                            spec.id);
                }
                if (!acquired.push(std::move(item)))
                    break;
            }
            acquired.close();
            flushTraceThread();
        });

        std::vector<std::thread> simulators;
        simulators.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            simulators.emplace_back([&, w] {
                char label[32];
                std::snprintf(label, sizeof(label), "simulate-%zu",
                              w);
                nameTraceThread(label);
                while (auto item = acquired.pop()) {
                    const std::size_t index = item->index;
                    if (item->source) {
                        timings[index].records =
                            item->source->totalRecords();
                        telemetry::ScopedSpan span("stage",
                                                   "simulate",
                                                   plan[index].id);
                        const Clock::time_point start = Clock::now();
                        outputs[index] =
                            runTrace(*item->source,
                                     plan[index].config);
                        timings[index].simulateSeconds =
                            secondsSince(start);
                        // Generation ran on the producer thread,
                        // overlapped with simulation; report it as
                        // this run's acquire cost.
                        timings[index].acquireSeconds =
                            item->source->produceSeconds();
                        timings[index].peakResidentChunks =
                            item->source->peakResidentChunks();
                        item->source.reset();
                        stms_debug("[%s] run %zu/%zu done: %s",
                                   experiment.name().c_str(),
                                   index + 1, plan.size(),
                                   plan[index].id.c_str());
                    } else {
                        simulateOne(index, TraceCache::Handle());
                    }
                    flushTraceThread();
                    simulated.push(index);
                }
            });
        }

        std::thread encoder([&] {
            nameTraceThread("encode");
            while (auto index = simulated.pop()) {
                encodeOne(*index);
                traceRunEnd(*index, plan[*index].id);
                flushTraceThread();
                progress.noteRun(timings[*index].records,
                                 timings[*index].acquireSeconds,
                                 timings[*index].simulateSeconds,
                                 timings[*index].encodeSeconds);
            }
        });

        acquirer.join();
        for (auto &thread : simulators)
            thread.join();
        simulated.close();
        encoder.join();
        local.peakResidentChunks = chunk_accounting.peak.load();
    }

    progress.finish();

    local.stored = appended.load();
    flushTraceThread();

    // Fold per-run timings (plan order) into the stats. Sampled
    // series move out of the outputs here: they are timing-style
    // observations, reported under the timing key and never part of
    // the model output RunSet/report consumers see.
    local.sampleEvery = sample_every;
    for (const std::size_t index : pending) {
        RunTiming &timing = timings[index];
        timing.id = plan[index].id;
        timing.wallSeconds = timing.acquireSeconds +
                             timing.simulateSeconds +
                             timing.encodeSeconds;
        timing.samples = std::move(outputs[index].sim.samples);
        outputs[index].sim.samples = telemetry::SampleSeries();
        if (local.sampleColumns.empty() &&
            !timing.samples.columns.empty())
            local.sampleColumns = timing.samples.columns;
        local.acquireSeconds += timing.acquireSeconds;
        local.simulateSeconds += timing.simulateSeconds;
        local.encodeSeconds += timing.encodeSeconds;
        local.recordsProcessed += timing.records;
        local.runs.push_back(std::move(timing));
    }
    local.wallSeconds = secondsSince(wall_start);

    RunSet runs;
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (actions[i] != Action::Shard)
            runs.add(plan[i].id, std::move(outputs[i]));
    if (stats)
        *stats = local;
    return runs;
}

Report
ExperimentRunner::run(const Experiment &experiment,
                      const Options &options, ExecStats *stats) const
{
    return experiment.report(options,
                             execute(experiment, options, stats));
}

} // namespace stms::driver
