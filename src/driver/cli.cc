#include "driver/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "driver/registry.hh"
#include "driver/results_cli.hh"
#include "driver/runner.hh"
#include "results/store.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_writer.hh"

namespace stms::driver
{

namespace
{

const char kUsage[] =
    "usage: driver [--list] [--experiment NAME]... [--threads N]\n"
    "              [--pipeline] [--pipeline-chunk N]\n"
    "              [--trace-cache-mb N]\n"
    "              [--index-shards N] [--mem-backend SPEC]\n"
    "              [--trace PATH[,format=...]]...\n"
    "              [--json PATH|-] [--no-timing] [--store DIR]\n"
    "              [--rerun] [--shard I/N] [--results CMD]\n"
    "              [--baseline PATH] [--csv] [--verbose]\n"
    "              [--trace-out FILE] [--sample-every N]\n"
    "              [--log-level LEVEL] [--progress|--no-progress]\n"
    "              [key=value]...\n"
    "\n"
    "  --list            list registered experiments and exit\n"
    "  --experiment NAME run NAME (repeatable; 'all' runs everything)\n"
    "  --threads N       worker threads for independent runs "
    "(default 1;\n"
    "                    0 = auto-detect hardware concurrency; "
    "results are\n"
    "                    bit-identical to serial for every N)\n"
    "  --pipeline        stage-pipelined scheduling: trace "
    "generation for\n"
    "                    run k+1 overlaps simulation of run k over "
    "bounded\n"
    "                    queues (results stay bit-identical to "
    "serial)\n"
    "  --pipeline-chunk N  records per streamed chunk in the "
    "pipelined\n"
    "                    schedule (default 8192); bounds pipeline "
    "residency\n"
    "                    to O(lanes x N) records per run — model "
    "output is\n"
    "                    byte-identical for every N\n"
    "  --trace-cache-mb N  bound the synthetic-trace cache to N MiB "
    "(LRU\n"
    "                    eviction of unpinned traces; 0 = no "
    "caching;\n"
    "                    default unbounded); evicted traces "
    "regenerate\n"
    "                    bit-identically on demand\n"
    "  --index-shards N  lock-striped index-table shards per STMS "
    "instance\n"
    "                    (default 1 = the unsharded legacy structure; "
    "model\n"
    "                    results are bit-identical for every N; "
    "N > 1 joins\n"
    "                    the result-store fingerprint)\n"
    "  --mem-backend SPEC  memory timing model: "
    "NAME[,key=val...] with NAME\n"
    "                    in fixed|queued|dram (e.g. 'queued,channels=4',\n"
    "                    'dram,policy=closed'); the default 'fixed' is\n"
    "                    canonicalized away so existing fingerprints "
    "stay\n"
    "                    stable; other specs join the result-store\n"
    "                    fingerprint (experiments that sweep backends\n"
    "                    themselves pin each run and ignore the flag)\n"
    "  --trace SPEC      ingest an on-disk trace: "
    "PATH[,format=native|champsim]\n"
    "                    (repeatable: each ChampSim file is one "
    "core's lane;\n"
    "                    consumed by ingest_replay and friends, see "
    "--list)\n"
    "  --json PATH       write structured results to PATH "
    "('-' = JSON only\n"
    "                    on stdout, suppressing the text report); "
    "writes are\n"
    "                    atomic (temp file + rename); includes a "
    "'timing' key\n"
    "                    (wall clock + per-run stage timings) that "
    "never joins\n"
    "                    store fingerprints or snapshot diffs\n"
    "  --no-timing       omit the timing key (timing is wall-clock "
    "noise;\n"
    "                    determinism gates byte-compare timing-free "
    "reports)\n"
    "  --store DIR       archive completed runs in the result store "
    "at DIR:\n"
    "                    exact-fingerprint duplicates are skipped and\n"
    "                    interrupted sweeps resume (docs/RESULTS.md)\n"
    "  --rerun           execute and append even when the store "
    "already\n"
    "                    holds the configuration's fingerprint\n"
    "  --shard I/N       execute only shard I of N (1-based; "
    "partitioned\n"
    "                    by run fingerprint; requires --store; "
    "suppresses\n"
    "                    the report — merge stores, then rerun "
    "without\n"
    "                    --shard to fold the archived runs)\n"
    "  --results CMD     store maintenance instead of simulation:\n"
    "                    list | show FP | diff [BEFORE AFTER] | gc\n"
    "                    (diff defaults to --baseline vs --store;\n"
    "                    tolerances: abs_tol=, rel_tol=, "
    "tol.<metric>=REL)\n"
    "  --baseline PATH   the 'before' snapshot for --results diff "
    "(a store\n"
    "                    directory or a records .jsonl file)\n"
    "  --csv             print tables as CSV instead of aligned text\n"
    "  --verbose         shorthand for --log-level debug\n"
    "  --trace-out FILE  write a Perfetto/chrome://tracing JSON trace "
    "of the\n"
    "                    sweep (run lifecycles, pipeline stage spans, "
    "queue\n"
    "                    and cache counter tracks); never perturbs "
    "model\n"
    "                    output (docs/OBSERVABILITY.md)\n"
    "  --sample-every N  snapshot simulator counters every N accessed\n"
    "                    cycles into per-run time series under the "
    "report's\n"
    "                    timing key (0 = off; excluded from "
    "fingerprints\n"
    "                    and snapshot diffs; render with\n"
    "                    tools/telemetry_report.py)\n"
    "  --log-level LEVEL stderr verbosity: error|warn|info|debug\n"
    "                    (default warn)\n"
    "  --progress        live sweep progress line on stderr (default: "
    "only\n"
    "                    when stderr is a TTY; --no-progress forces "
    "off)\n"
    "  key=value         experiment options (e.g. records=65536, "
    "chunk=4096)\n";

/** Strict unsigned parse: the whole token must be a number. */
bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 0);
    return *end == '\0';
}

/**
 * Apply --threads: a strict non-negative integer. 0 is the auto
 * spelling (resolve std::thread::hardware_concurrency() at run
 * time); the resolved count is reported in the timing metadata and
 * never joins fingerprints, so stored results stay
 * thread-count-independent.
 */
bool
applyThreads(const std::string &value, DriverArgs &args,
             std::string &error)
{
    std::uint64_t parsed = 0;
    if (!parseUint(value, parsed) || parsed > 4096) {
        error = "--threads needs an integer in [0, 4096] "
                "(0 = auto-detect)";
        return false;
    }
    args.threads = static_cast<std::uint32_t>(parsed);
    return true;
}

/**
 * Apply --pipeline-chunk: records per streamed chunk, strictly
 * positive (a zero chunk could never make progress; 0 as "default"
 * stays an internal RunnerConfig spelling, not a CLI one). The cap
 * matches --threads-style sanity bounds: 2^30 records is ~16 GiB of
 * chunk, far beyond any real use.
 */
bool
applyPipelineChunk(const std::string &value, DriverArgs &args,
                   std::string &error)
{
    std::uint64_t parsed = 0;
    if (!parseUint(value, parsed) || parsed < 1 ||
        parsed > (1ULL << 30)) {
        error = "--pipeline-chunk needs an integer in [1, 2^30]";
        return false;
    }
    args.pipelineChunk = parsed;
    return true;
}

/**
 * Apply --sample-every: counter-snapshot epoch in accessed cycles.
 * 0 is the explicit "off" spelling. The value steers observation
 * only — it flows through RunnerConfig (never Options), so it cannot
 * join result-store fingerprints or change model output.
 */
bool
applySampleEvery(const std::string &value, DriverArgs &args,
                 std::string &error)
{
    std::uint64_t parsed = 0;
    if (!parseUint(value, parsed) || parsed > (1ULL << 40)) {
        error = "--sample-every needs an integer in [0, 2^40] "
                "(0 = off)";
        return false;
    }
    args.sampleEvery = parsed;
    return true;
}

/** Apply --log-level: error|warn|info|debug. */
bool
applyLogLevel(const std::string &value, DriverArgs &args,
              std::string &error)
{
    LogLevel level = LogLevel::Warn;
    if (!parseLogLevel(value, level)) {
        error = "--log-level needs error|warn|info|debug";
        return false;
    }
    args.logLevel = static_cast<int>(level);
    return true;
}

/** Apply --trace-cache-mb: MiB bound, 0 = no caching. */
bool
applyTraceCacheMb(const std::string &value, DriverArgs &args,
                  std::string &error)
{
    std::uint64_t parsed = 0;
    if (!parseUint(value, parsed) || parsed > (1ULL << 24)) {
        error = "--trace-cache-mb needs an integer in [0, 2^24]";
        return false;
    }
    args.traceCacheMb = parsed;
    return true;
}

/** Append one --trace spec to the joined "trace" option the
 *  experiments consume (';'-separated, see trace_io::parseIngestSpec). */
void
appendTraceSpec(Options &options, const std::string &spec)
{
    const std::string existing = options.get("trace", "");
    options.set("trace",
                existing.empty() ? spec : existing + ";" + spec);
}

/**
 * Apply --index-shards: the value flows to the experiments as the
 * "index-shards" option, so a sharded sweep participates in the
 * result-store fingerprint like any other parameter. One shard IS
 * the legacy structure, so it is canonicalized away — `--index-shards
 * 1` fingerprints (and outputs) byte-identically to not passing the
 * flag, keeping every archived record reachable.
 */
bool
applyIndexShards(const std::string &value, DriverArgs &args,
                 std::string &error)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(value.c_str(), &end, 0);
    if (value.empty() || *end != '\0' || parsed < 1 ||
        parsed > (1UL << 16)) {
        error = "--index-shards needs an integer in [1, 65536]";
        return false;
    }
    if (parsed > 1)
        args.options.set("index-shards", std::to_string(parsed));
    return true;
}

/**
 * Apply --mem-backend: validate + canonicalize the spec, then flow it
 * to the experiments as the "mem-backend" option. The plain fixed
 * backend IS the legacy memory model, so it is canonicalized away —
 * `--mem-backend fixed` fingerprints (and outputs) byte-identically
 * to not passing the flag, keeping every archived record reachable.
 */
bool
applyMemBackend(const std::string &value, DriverArgs &args,
                std::string &error)
{
    MemBackendSpec spec;
    if (!parseMemBackendSpec(value, spec, error))
        return false;
    if (!spec.isDefault())
        args.options.set("mem-backend", spec.canonical());
    return true;
}

/**
 * Parse "I/N" (1 <= I <= N) into the shard fields. Strict: both
 * numbers must consume every character ("2x/4" or "1/4junk" silently
 * running the wrong partition would break the disjoint+complete
 * guarantee a multi-machine sweep relies on).
 */
bool
parseShard(const std::string &text, DriverArgs &args,
           std::string &error)
{
    const char *cursor = text.c_str();
    char *end = nullptr;
    const long index = std::strtol(cursor, &end, 10);
    if (end != cursor && *end == '/') {
        cursor = end + 1;
        const long count = std::strtol(cursor, &end, 10);
        if (end != cursor && *end == '\0' && index >= 1 &&
            count >= 1 && index <= count) {
            args.shardIndex = static_cast<std::uint32_t>(index);
            args.shardCount = static_cast<std::uint32_t>(count);
            return true;
        }
    }
    error = "--shard needs I/N with 1 <= I <= N";
    return false;
}

/** Fold runner ExecStats into the report's timing metadata. */
ReportTiming
makeReportTiming(const ExecStats &stats)
{
    ReportTiming timing;
    timing.present = true;
    timing.wallSeconds = stats.wallSeconds;
    timing.acquireSeconds = stats.acquireSeconds;
    timing.simulateSeconds = stats.simulateSeconds;
    timing.encodeSeconds = stats.encodeSeconds;
    timing.threads = stats.threadsResolved;
    timing.pipelined = stats.pipelined;
    timing.records = stats.recordsProcessed;
    timing.recordsPerSecond = stats.recordsPerSecond();
    timing.peakRssKb = peakRssKb();
    timing.chunkRecords = stats.chunkRecords;
    timing.peakResidentChunks = stats.peakResidentChunks;
    timing.sampleEvery = stats.sampleEvery;
    timing.sampleColumns = stats.sampleColumns;
    timing.runs = stats.runs;
    return timing;
}

void
printList(const ExperimentRegistry &registry)
{
    std::printf("registered experiments:\n");
    for (const Experiment *experiment : registry.all()) {
        std::printf("  %-16s %s\n", experiment->name().c_str(),
                    experiment->description().c_str());
    }
}

/** Render one report in the selected human format. */
void
printReport(const Report &report, bool csv)
{
    if (!csv) {
        std::fputs(report.toText().c_str(), stdout);
        return;
    }
    for (const auto &entry : report.tables()) {
        if (!entry.title.empty())
            std::printf("# %s\n", entry.title.c_str());
        std::fputs(entry.table.toCsv().c_str(), stdout);
    }
}

bool
writeJson(const std::string &path, const std::string &payload)
{
    if (path == "-") {
        std::fputs(payload.c_str(), stdout);
        return true;
    }
    // Atomic: an interrupted run must never leave a truncated JSON
    // file that downstream json.load() chokes on.
    return results::atomicWriteFile(path, payload);
}

/**
 * Owns the process-wide TraceSink for one driver invocation.
 * Installs on construction (when a path was given) and guarantees
 * uninstall-then-close on every exit path; finish() reports write
 * failures on the success paths.
 */
class TraceSinkGuard
{
  public:
    explicit TraceSinkGuard(const std::string &path)
    {
        if (path.empty())
            return;
        sink_ = std::make_unique<telemetry::TraceSink>(path);
        telemetry::installTraceSink(sink_.get());
    }

    ~TraceSinkGuard()
    {
        if (!sink_)
            return;
        // Error-path teardown: still write what was captured (a
        // partial trace of a failed sweep is exactly when you want
        // one), but swallow I/O errors — the run already failed.
        telemetry::installTraceSink(nullptr);
        std::string error;
        sink_->close(error);
        sink_.reset();
    }

    /** Close + write the trace; false (with a message) on failure. */
    bool
    finish()
    {
        if (!sink_)
            return true;
        telemetry::installTraceSink(nullptr);
        std::string error;
        const bool ok = sink_->close(error);
        if (!ok)
            logRaw(error + "\n");
        else
            stms_inform("trace written to %s", sink_->path().c_str());
        sink_.reset();
        return ok;
    }

  private:
    std::unique_ptr<telemetry::TraceSink> sink_;
};

int
runExperiments(const DriverArgs &args)
{
    const ExperimentRegistry &registry = ExperimentRegistry::global();

    std::vector<const Experiment *> selected;
    for (const std::string &name : args.experiments) {
        if (name == "all") {
            selected = registry.all();
            break;
        }
        const Experiment *experiment = registry.find(name);
        if (!experiment) {
            logRaw("unknown experiment '" + name + "'\n\n");
            printList(registry);
            return 1;
        }
        selected.push_back(experiment);
    }

    std::unique_ptr<results::ResultStore> store;
    if (!args.storePath.empty()) {
        std::string error;
        store = results::ResultStore::open(args.storePath, error);
        if (!store) {
            logRaw("--store: " + error + "\n");
            return 1;
        }
    }

    if (args.traceCacheMb != DriverArgs::kCacheUnset) {
        globalTraceCache().setCapacity(args.traceCacheMb *
                                       (1ULL << 20));
    }

    TraceSinkGuard trace_sink(args.traceOutPath);

    RunnerConfig runner_config;
    runner_config.threads = args.threads;
    runner_config.pipeline = args.pipeline;
    runner_config.pipelineChunkRecords = args.pipelineChunk;
    runner_config.sampleEvery = args.sampleEvery;
    runner_config.progress = args.progress;
    runner_config.store = store.get();
    runner_config.rerun = args.rerun;
    runner_config.shardIndex = args.shardIndex;
    runner_config.shardCount = args.shardCount;
    ExperimentRunner runner(globalTraceCache(), runner_config);

    // Shard mode archives runs without reporting: report() needs the
    // whole plan, and this invocation deliberately executes a slice.
    if (args.shardCount > 0) {
        for (const Experiment *experiment : selected) {
            ExecStats stats;
            runner.execute(*experiment, args.options, &stats);
            stms_inform("[%s] shard %u/%u: %zu of %zu runs "
                        "(%zu resumed, %zu other-shard)",
                        experiment->name().c_str(), args.shardIndex,
                        args.shardCount, stats.executed,
                        stats.planned, stats.resumed, stats.sharded);
        }
        return trace_sink.finish() ? 0 : 1;
    }

    // With --json -, stdout carries the JSON payload alone; the
    // human rendering would interleave and break json.load().
    const bool json_on_stdout = args.jsonPath == "-";

    std::vector<std::string> json_reports;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const Experiment &experiment = *selected[i];
        ExecStats stats;
        Report report = runner.run(experiment, args.options, &stats);
        if (args.timing)
            report.setTiming(makeReportTiming(stats));
        if (store) {
            stms_inform("[%s] store: %zu of %zu runs resumed, %zu "
                        "executed",
                        experiment.name().c_str(), stats.resumed,
                        stats.planned, stats.executed);
            results::ResultRecord record = makeExperimentRecord(
                experiment, args.options, report);
            if (store->append(record, args.rerun)) {
                stms_inform("[%s] store: recorded %s",
                            experiment.name().c_str(),
                            record.fingerprint.hex().c_str());
            } else {
                stms_inform("[%s] store: %s already recorded "
                            "(--rerun to append again)",
                            experiment.name().c_str(),
                            record.fingerprint.hex().c_str());
            }
        }
        if (!json_on_stdout) {
            if (i > 0)
                std::printf("\n");
            printReport(report, args.csv);
        }
        if (!args.jsonPath.empty())
            json_reports.push_back(report.toJson());
    }

    if (!args.jsonPath.empty()) {
        // A single experiment writes a bare object; several write an
        // array. Downstream json.load() handles either shape.
        std::string payload;
        if (json_reports.size() == 1) {
            payload = json_reports[0];
        } else {
            payload = "[\n";
            for (std::size_t i = 0; i < json_reports.size(); ++i) {
                if (i > 0)
                    payload += ",\n";
                payload += json_reports[i];
            }
            payload += "]\n";
        }
        if (!writeJson(args.jsonPath, payload)) {
            logRaw("failed to write '" + args.jsonPath + "'\n");
            return 1;
        }
    }
    return trace_sink.finish() ? 0 : 1;
}

/**
 * Apply the parsed telemetry/logging globals. --verbose is the
 * legacy debug spelling; an explicit --log-level wins over it.
 * Sampling flows through the process-wide telemetry global so nested
 * runners (perf_suite's inner sweeps) inherit the flag.
 */
void
applyTelemetryGlobals(const DriverArgs &args)
{
    if (args.logLevel != DriverArgs::kLogUnset)
        setLogLevel(static_cast<LogLevel>(args.logLevel));
    else if (args.verbose)
        setLogLevel(LogLevel::Debug);
    telemetry::setGlobalSampleEvery(args.sampleEvery);
}

} // namespace

bool
parseDriverArgs(int argc, char **argv, DriverArgs &args,
                std::string &error)
{
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        auto nextValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                error = std::string(flag) + " needs a value";
                return nullptr;
            }
            return argv[++i];
        };

        // GNU-style --flag=value spellings of the driver's own flags
        // must not fall through to the key=value option store (where
        // "--threads=8" would silently become the experiment option
        // threads=8 and never change the worker count).
        if (token.size() > 2 && token[0] == '-') {
            const auto eq = token.find('=');
            if (eq != std::string::npos) {
                std::size_t start = token[1] == '-' ? 2 : 1;
                const std::string key = token.substr(start, eq - start);
                const std::string value = token.substr(eq + 1);
                if (key == "experiment" || key == "e") {
                    args.experiments.push_back(value);
                    continue;
                }
                if (key == "threads" || key == "j") {
                    if (!applyThreads(value, args, error))
                        return false;
                    continue;
                }
                if (key == "trace-cache-mb") {
                    if (!applyTraceCacheMb(value, args, error))
                        return false;
                    continue;
                }
                if (key == "pipeline-chunk") {
                    if (!applyPipelineChunk(value, args, error))
                        return false;
                    continue;
                }
                if (key == "json") {
                    args.jsonPath = value;
                    continue;
                }
                if (key == "index-shards") {
                    if (!applyIndexShards(value, args, error))
                        return false;
                    continue;
                }
                if (key == "mem-backend") {
                    if (!applyMemBackend(value, args, error))
                        return false;
                    continue;
                }
                if (key == "trace") {
                    appendTraceSpec(args.options, value);
                    continue;
                }
                if (key == "store") {
                    args.storePath = value;
                    continue;
                }
                if (key == "baseline") {
                    args.baselinePath = value;
                    continue;
                }
                if (key == "shard") {
                    if (!parseShard(value, args, error))
                        return false;
                    continue;
                }
                if (key == "results") {
                    args.resultsCmd = value;
                    continue;
                }
                if (key == "trace-out") {
                    args.traceOutPath = value;
                    continue;
                }
                if (key == "sample-every") {
                    if (!applySampleEvery(value, args, error))
                        return false;
                    continue;
                }
                if (key == "log-level") {
                    if (!applyLogLevel(value, args, error))
                        return false;
                    continue;
                }
                // The boolean flags take no value; swallowing
                // "--csv=1" as the experiment option csv=1 would be
                // the same silent fallthrough this block prevents.
                if (key == "list" || key == "csv" || key == "help" ||
                    key == "h" || key == "verbose" || key == "v" ||
                    key == "rerun" || key == "pipeline" ||
                    key == "no-timing" || key == "progress" ||
                    key == "no-progress") {
                    error = "--" + key + " does not take a value";
                    return false;
                }
            }
        }

        if (token == "--help" || token == "-h") {
            args.help = true;
        } else if (token == "--list") {
            args.list = true;
        } else if (token == "--csv") {
            args.csv = true;
        } else if (token == "--verbose" || token == "-v") {
            args.verbose = true;
        } else if (token == "--rerun") {
            args.rerun = true;
        } else if (token == "--pipeline") {
            args.pipeline = true;
        } else if (token == "--pipeline-chunk") {
            const char *value = nextValue("--pipeline-chunk");
            if (!value)
                return false;
            if (!applyPipelineChunk(value, args, error))
                return false;
        } else if (token == "--no-timing") {
            args.timing = false;
        } else if (token == "--progress") {
            args.progress = telemetry::ProgressMode::On;
        } else if (token == "--no-progress") {
            args.progress = telemetry::ProgressMode::Off;
        } else if (token == "--trace-out") {
            const char *value = nextValue("--trace-out");
            if (!value)
                return false;
            args.traceOutPath = value;
        } else if (token == "--sample-every") {
            const char *value = nextValue("--sample-every");
            if (!value)
                return false;
            if (!applySampleEvery(value, args, error))
                return false;
        } else if (token == "--log-level") {
            const char *value = nextValue("--log-level");
            if (!value)
                return false;
            if (!applyLogLevel(value, args, error))
                return false;
        } else if (token == "--trace-cache-mb") {
            const char *value = nextValue("--trace-cache-mb");
            if (!value)
                return false;
            if (!applyTraceCacheMb(value, args, error))
                return false;
        } else if (token == "--experiment" || token == "-e") {
            const char *value = nextValue("--experiment");
            if (!value)
                return false;
            args.experiments.push_back(value);
        } else if (token == "--threads" || token == "-j") {
            const char *value = nextValue("--threads");
            if (!value)
                return false;
            if (!applyThreads(value, args, error))
                return false;
        } else if (token == "--json") {
            const char *value = nextValue("--json");
            if (!value)
                return false;
            args.jsonPath = value;
        } else if (token == "--index-shards") {
            const char *value = nextValue("--index-shards");
            if (!value)
                return false;
            if (!applyIndexShards(value, args, error))
                return false;
        } else if (token == "--mem-backend") {
            const char *value = nextValue("--mem-backend");
            if (!value)
                return false;
            if (!applyMemBackend(value, args, error))
                return false;
        } else if (token == "--trace") {
            const char *value = nextValue("--trace");
            if (!value)
                return false;
            appendTraceSpec(args.options, value);
        } else if (token == "--store") {
            const char *value = nextValue("--store");
            if (!value)
                return false;
            args.storePath = value;
        } else if (token == "--baseline") {
            const char *value = nextValue("--baseline");
            if (!value)
                return false;
            args.baselinePath = value;
        } else if (token == "--shard") {
            const char *value = nextValue("--shard");
            if (!value)
                return false;
            if (!parseShard(value, args, error))
                return false;
        } else if (token == "--results") {
            const char *value = nextValue("--results");
            if (!value)
                return false;
            args.resultsCmd = value;
        } else if (token.rfind("index-shards=", 0) == 0) {
            // The bare key=value spelling of --index-shards routes
            // through the same validation and one-shard
            // canonicalization, so every spelling fingerprints
            // consistently.
            if (!applyIndexShards(
                    token.substr(sizeof("index-shards=") - 1), args,
                    error))
                return false;
        } else if (args.options.parseToken(token)) {
            // key=value (or --key=value) passthrough.
        } else if (!args.resultsCmd.empty() && !token.empty() &&
                   token[0] != '-') {
            // Bare operands belong to the --results subcommand
            // (snapshot paths for diff, a fingerprint for show).
            args.resultsArgs.push_back(token);
        } else {
            error = "unrecognized argument '" + token + "'";
            return false;
        }
    }

    if (args.shardCount > 0 && args.storePath.empty() &&
        args.resultsCmd.empty()) {
        error = "--shard requires --store (sharded runs exist only "
                "as store records)";
        return false;
    }
    return true;
}

int
driverMain(int argc, char **argv)
{
    DriverArgs args;
    std::string error;
    if (!parseDriverArgs(argc, argv, args, error)) {
        logRaw(error + "\n" + kUsage);
        return 1;
    }
    if (args.help) {
        std::fputs(kUsage, stdout);
        return 0;
    }
    applyTelemetryGlobals(args);
    if (args.list) {
        printList(ExperimentRegistry::global());
        return 0;
    }
    if (!args.resultsCmd.empty())
        return runResultsMode(args);
    if (args.experiments.empty()) {
        logRaw(std::string("no experiment selected\n\n") + kUsage);
        printList(ExperimentRegistry::global());
        return 1;
    }
    return runExperiments(args);
}

int
experimentMain(const std::string &name, int argc, char **argv)
{
    DriverArgs args;
    std::string error;
    if (!parseDriverArgs(argc, argv, args, error)) {
        logRaw(error + "\n" + kUsage);
        return 1;
    }
    if (args.help) {
        std::fputs(kUsage, stdout);
        return 0;
    }
    applyTelemetryGlobals(args);
    if (args.list) {
        printList(ExperimentRegistry::global());
        return 0;
    }
    if (!args.experiments.empty()) {
        logRaw("this binary always runs '" + name +
               "'; use the driver binary to select experiments\n");
        return 1;
    }
    args.experiments.assign(1, name);
    return runExperiments(args);
}

} // namespace stms::driver
