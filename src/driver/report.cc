#include "driver/report.hh"

namespace stms::driver
{

void
Report::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
Report::addTable(std::string title, Table table)
{
    tables_.push_back(ReportTable{std::move(title), std::move(table)});
}

void
Report::addNote(const std::string &note)
{
    notes_.push_back(note);
}

std::string
Report::toText() const
{
    std::string out;
    for (const auto &entry : tables_) {
        if (!entry.title.empty())
            out += entry.title + "\n\n";
        out += entry.table.toString() + "\n";
    }
    for (const auto &note : notes_)
        out += note + "\n";
    return out;
}

std::string
Report::toJson() const
{
    std::string out = "{\n  \"experiment\": \"" +
                      jsonEscape(experiment_) + "\",\n";

    out += "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    \"" + jsonEscape(metrics_[i].first) +
               "\": " + jsonNumber(metrics_[i].second);
    }
    out += metrics_.empty() ? "},\n" : "\n  },\n";

    out += "  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const auto &entry = tables_[t];
        out += t == 0 ? "\n" : ",\n";
        out += "    {\n      \"title\": \"" + jsonEscape(entry.title) +
               "\",\n      \"columns\": [";
        const auto &headers = entry.table.headers();
        for (std::size_t c = 0; c < headers.size(); ++c) {
            if (c)
                out += ", ";
            out += "\"" + jsonEscape(headers[c]) + "\"";
        }
        out += "],\n      \"rows\": [";
        const auto &rows = entry.table.rows();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            out += r == 0 ? "\n" : ",\n";
            out += "        [";
            for (std::size_t c = 0; c < rows[r].size(); ++c) {
                if (c)
                    out += ", ";
                out += "\"" + jsonEscape(rows[r][c]) + "\"";
            }
            out += "]";
        }
        out += rows.empty() ? "]\n    }" : "\n      ]\n    }";
    }
    out += tables_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

results::ResultRecord
Report::toResultRecord() const
{
    results::ResultRecord record;
    record.kind = results::kKindExperiment;
    record.experiment = experiment_;
    record.scalars = metrics_;
    for (const ReportTable &entry : tables_) {
        results::Series series;
        series.title = entry.title;
        series.columns = entry.table.headers();
        series.rows = entry.table.rows();
        record.series.push_back(std::move(series));
    }
    return record;
}

} // namespace stms::driver
