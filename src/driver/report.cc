#include "driver/report.hh"

#include "common/simd.hh"

namespace stms::driver
{

void
Report::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
Report::addTable(std::string title, Table table)
{
    tables_.push_back(ReportTable{std::move(title), std::move(table)});
}

void
Report::addNote(const std::string &note)
{
    notes_.push_back(note);
}

std::string
Report::toText() const
{
    std::string out;
    for (const auto &entry : tables_) {
        if (!entry.title.empty())
            out += entry.title + "\n\n";
        out += entry.table.toString() + "\n";
    }
    for (const auto &note : notes_)
        out += note + "\n";
    return out;
}

std::string
Report::toJson() const
{
    std::string out = "{\n  \"experiment\": \"" +
                      jsonEscape(experiment_) + "\",\n";

    out += "  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    \"" + jsonEscape(metrics_[i].first) +
               "\": " + jsonNumber(metrics_[i].second);
    }
    out += metrics_.empty() ? "},\n" : "\n  },\n";

    // Timing renders before the model output and only when attached:
    // reports without timing are byte-identical to the pre-timing
    // format, and determinism gates compare timing-free reports.
    if (timing_.present) {
        out += "  \"timing\": {\n";
        out += "    \"wall_s\": " + jsonNumber(timing_.wallSeconds) +
               ",\n";
        out += "    \"threads\": " +
               std::to_string(timing_.threads) + ",\n";
        out += std::string("    \"pipeline\": ") +
               (timing_.pipelined ? "true" : "false") + ",\n";
        out += "    \"records\": " +
               std::to_string(timing_.records) + ",\n";
        out += "    \"records_per_sec\": " +
               jsonNumber(timing_.recordsPerSecond) + ",\n";
        out += "    \"peak_rss_kb\": " +
               std::to_string(timing_.peakRssKb) + ",\n";
        out += "    \"chunk_records\": " +
               std::to_string(timing_.chunkRecords) + ",\n";
        out += "    \"peak_resident_chunks\": " +
               std::to_string(timing_.peakResidentChunks) + ",\n";
        // Timing-only by design: the kernel ISA never appears in
        // timing-free reports, so the byte-identity gates stay blind
        // to which SIMD path produced the model output (which is the
        // point — they prove it doesn't matter).
        out += "    \"simd_isa\": \"" +
               jsonEscape(simd::activeIsa()) + "\",\n";
        // Sampler keys render only when sampling ran: default timing
        // output stays byte-identical to the pre-telemetry format.
        if (timing_.sampleEvery > 0) {
            out += "    \"sample_every\": " +
                   std::to_string(timing_.sampleEvery) + ",\n";
            out += "    \"sample_columns\": [";
            for (std::size_t c = 0; c < timing_.sampleColumns.size();
                 ++c) {
                if (c)
                    out += ", ";
                out += "\"" + jsonEscape(timing_.sampleColumns[c]) +
                       "\"";
            }
            out += "],\n";
        }
        out += "    \"stages\": {\"acquire_s\": " +
               jsonNumber(timing_.acquireSeconds) +
               ", \"simulate_s\": " +
               jsonNumber(timing_.simulateSeconds) +
               ", \"encode_s\": " +
               jsonNumber(timing_.encodeSeconds) + "},\n";
        out += "    \"runs\": [";
        for (std::size_t r = 0; r < timing_.runs.size(); ++r) {
            const ReportRunTiming &run = timing_.runs[r];
            out += r == 0 ? "\n" : ",\n";
            out += "      {\"id\": \"" + jsonEscape(run.id) +
                   "\", \"acquire_s\": " +
                   jsonNumber(run.acquireSeconds) +
                   ", \"simulate_s\": " +
                   jsonNumber(run.simulateSeconds) +
                   ", \"encode_s\": " +
                   jsonNumber(run.encodeSeconds) + ", \"wall_s\": " +
                   jsonNumber(run.wallSeconds) +
                   ", \"peak_resident_chunks\": " +
                   std::to_string(run.peakResidentChunks);
            if (!run.samples.empty()) {
                // Rows as [accesses, cycle, v0, v1, ...] matching
                // sample_columns; tools/telemetry_report.py renders
                // these into per-run ramp tables.
                out += ", \"samples\": [";
                for (std::size_t s = 0; s < run.samples.rows.size();
                     ++s) {
                    const auto &row = run.samples.rows[s];
                    if (s)
                        out += ", ";
                    out += "[" + std::to_string(row.accesses) + ", " +
                           std::to_string(row.cycle);
                    for (const double value : row.values)
                        out += ", " + jsonNumber(value);
                    out += "]";
                }
                out += "]";
            }
            out += "}";
        }
        out += timing_.runs.empty() ? "]\n" : "\n    ]\n";
        out += "  },\n";
    }

    out += "  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const auto &entry = tables_[t];
        out += t == 0 ? "\n" : ",\n";
        out += "    {\n      \"title\": \"" + jsonEscape(entry.title) +
               "\",\n      \"columns\": [";
        const auto &headers = entry.table.headers();
        for (std::size_t c = 0; c < headers.size(); ++c) {
            if (c)
                out += ", ";
            out += "\"" + jsonEscape(headers[c]) + "\"";
        }
        out += "],\n      \"rows\": [";
        const auto &rows = entry.table.rows();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            out += r == 0 ? "\n" : ",\n";
            out += "        [";
            for (std::size_t c = 0; c < rows[r].size(); ++c) {
                if (c)
                    out += ", ";
                out += "\"" + jsonEscape(rows[r][c]) + "\"";
            }
            out += "]";
        }
        out += rows.empty() ? "]\n    }" : "\n      ]\n    }";
    }
    out += tables_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

results::ResultRecord
Report::toResultRecord() const
{
    results::ResultRecord record;
    record.kind = results::kKindExperiment;
    record.experiment = experiment_;
    record.scalars = metrics_;
    for (const ReportTable &entry : tables_) {
        results::Series series;
        series.title = entry.title;
        series.columns = entry.table.headers();
        series.rows = entry.table.rows();
        record.series.push_back(std::move(series));
    }
    return record;
}

} // namespace stms::driver
