/**
 * @file
 * The experiment abstraction of the driver subsystem.
 *
 * An Experiment describes one of the paper's figures/tables/ablations
 * declaratively: plan() lists the (workload, records, configuration)
 * points to simulate, and report() folds the finished RunOutputs into
 * a Report. The ExperimentRunner owns everything in between — trace
 * caching, scheduling runs across worker threads, and collecting
 * outputs — so an experiment definition contains no simulation
 * machinery at all.
 *
 * plan() and report() must be pure functions of (options, runs):
 * the runner may execute runs in any order and on any thread, and
 * the determinism guarantee (--threads N bit-identical to serial)
 * holds because each run is an isolated System/EventQueue and the
 * report only sees the completed set keyed by id.
 */

#ifndef STMS_DRIVER_EXPERIMENT_HH
#define STMS_DRIVER_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "driver/report.hh"
#include "sim/run.hh"
#include "trace_io/format.hh"

namespace stms::driver
{

/** One simulation point of an experiment's plan. */
struct RunSpec
{
    /** Unique id within the plan; report() fetches outputs by id. */
    std::string id;
    /** standardSuite() workload name (unused for ingest runs). */
    std::string workload;
    /** Trace length in records per core (unused for ingest runs). */
    std::uint64_t records = 0;
    /**
     * When set, the run streams its records from these on-disk trace
     * files instead of the synthetic (workload, records) pair. The
     * runner opens a fresh source per run and bypasses the
     * TraceCache, so ingested traces never become cache-resident.
     */
    std::optional<trace_io::IngestSpec> ingest;
    /** System + prefetcher configuration for this point. */
    RunConfig config;
};

/** Completed outputs of a plan, keyed by RunSpec::id. */
class RunSet
{
  public:
    void add(const std::string &id, RunOutput output);

    bool has(const std::string &id) const;

    /** Output of run @p id; fatal when the plan had no such id. */
    const RunOutput &at(const std::string &id) const;

    std::size_t size() const { return outputs_.size(); }

  private:
    std::map<std::string, RunOutput> outputs_;
};

/** A named, registered experiment (one figure/table/ablation). */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    /** Registry key, e.g. "fig7". */
    virtual const std::string &name() const = 0;

    /** One-line summary for --list. */
    virtual const std::string &description() const = 0;

    /**
     * Version of this experiment's metric schema, folded into every
     * result-store fingerprint. Bump it when the meaning, naming, or
     * normalization of reported metrics changes: old store records
     * and baselines are then deliberately orphaned (they show up as
     * added/removed in a diff) instead of being compared
     * apples-to-oranges against the new scheme.
     */
    virtual int schemaVersion() const { return 1; }

    /** The simulation points this experiment needs. */
    virtual std::vector<RunSpec> plan(const Options &options) const = 0;

    /** Fold completed runs into tables + metrics. */
    virtual Report report(const Options &options,
                          const RunSet &runs) const = 0;
};

/** Convenience base holding the name/description strings. */
class ExperimentBase : public Experiment
{
  public:
    ExperimentBase(std::string name, std::string description)
        : name_(std::move(name)), description_(std::move(description))
    {}

    const std::string &name() const override { return name_; }
    const std::string &description() const override
    {
        return description_;
    }

  private:
    std::string name_;
    std::string description_;
};

/**
 * Trace length for a plan: the "records" option when present, else
 * the STMS_BENCH_RECORDS environment override, else @p fallback.
 */
std::uint64_t plannedRecords(const Options &options,
                             std::uint64_t fallback);

/**
 * Index-table shard count for a plan: the "index-shards" option
 * (set by the driver's --index-shards flag) when present, else 1 —
 * the unsharded legacy structure. Sharding never changes model
 * results, so every STMS experiment threads this through its
 * StmsConfig unconditionally.
 */
std::uint32_t plannedIndexShards(const Options &options);

/**
 * Memory-backend spec for a plan: parsed from the "mem-backend"
 * option (set by the driver's --mem-backend flag). Returns nullopt
 * when the option is absent — every run keeps its own default — and
 * aborts on an unparseable spec (the CLI validates first, so this
 * only fires for malformed programmatic options).
 */
std::optional<MemBackendSpec> plannedMemBackend(const Options &options);

} // namespace stms::driver

#endif // STMS_DRIVER_EXPERIMENT_HH
