/**
 * @file
 * Capacity-bounded, refcounted cache of generated workload traces.
 *
 * Trace synthesis is the most expensive part of a sweep after the
 * simulation itself, and most experiments reuse the same (workload,
 * records) traces across many configuration points. The cache
 * generates each distinct trace once — concurrent requests for the
 * same key block on the generating thread; distinct keys generate
 * concurrently — and hands out pinned Handles.
 *
 * Unlike the original generate-once-keep-forever design, residency is
 * bounded: when the configured capacity is exceeded, least-recently
 * used *unpinned* traces are dropped, so a sweep's peak RSS no longer
 * scales with the number of distinct traces it visits. A dropped
 * trace that is requested again is simply regenerated — generation is
 * deterministic (seeded per workload spec), so a regenerated trace is
 * bit-identical to the evicted one and model results cannot change.
 *
 * Capacity semantics:
 *  - kUnbounded (default): never evict — the legacy behavior.
 *  - 0: no caching at all — every acquire() generates a private
 *    trace owned solely by its Handle.
 *  - otherwise: a soft bound in bytes. Pinned traces are never
 *    evicted, so the bound can be exceeded while the pinned working
 *    set alone exceeds it.
 *
 * Only synthetic traces live here. Ingested on-disk traces (RunSpecs
 * with an IngestSpec) stream through trace_io per run in bounded
 * chunks and never enter the cache.
 */

#ifndef STMS_DRIVER_TRACE_CACHE_HH
#define STMS_DRIVER_TRACE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "workload/trace.hh"

namespace stms::driver
{

/** Thread-safe, generate-once, capacity-bounded trace store. */
class TraceCache
{
  public:
    /** Capacity value meaning "never evict" (the default). */
    static constexpr std::uint64_t kUnbounded =
        ~static_cast<std::uint64_t>(0);

    explicit TraceCache(std::uint64_t capacity_bytes = kUnbounded)
        : capacity_(capacity_bytes)
    {}

    /**
     * RAII pin on a cached trace. While any Handle to an entry lives,
     * the entry cannot be evicted and the Trace reference stays
     * valid. Movable, not copyable.
     */
    class Handle
    {
      public:
        Handle() = default;
        Handle(Handle &&other) noexcept
            : cache_(std::exchange(other.cache_, nullptr)),
              entry_(std::move(other.entry_))
        {}
        Handle &
        operator=(Handle &&other) noexcept
        {
            if (this != &other) {
                release();
                cache_ = std::exchange(other.cache_, nullptr);
                entry_ = std::move(other.entry_);
            }
            return *this;
        }
        Handle(const Handle &) = delete;
        Handle &operator=(const Handle &) = delete;
        ~Handle() { release(); }

        explicit operator bool() const { return entry_ != nullptr; }
        const Trace &trace() const { return entry_->trace; }
        const Trace &operator*() const { return entry_->trace; }
        const Trace *operator->() const { return &entry_->trace; }

      private:
        friend class TraceCache;
        struct Entry;
        Handle(TraceCache *cache, std::shared_ptr<Entry> entry)
            : cache_(cache), entry_(std::move(entry))
        {}
        void release();

        TraceCache *cache_ = nullptr;
        std::shared_ptr<Entry> entry_;
    };

    /**
     * Pin the trace for (@p workload, @p records_per_core),
     * generating it on first request (or after eviction). Blocks
     * while another thread generates the same key; distinct keys
     * generate concurrently.
     */
    Handle acquire(const std::string &workload,
                   std::uint64_t records_per_core);

    /**
     * Legacy convenience: acquire and pin for the cache's lifetime.
     * The returned reference stays valid until the cache dies, even
     * under a capacity bound (the permanent pin blocks eviction).
     */
    const Trace &get(const std::string &workload,
                     std::uint64_t records_per_core);

    /**
     * Change the capacity; evicts LRU unpinned entries immediately if
     * the new bound is exceeded. Entries pinned by live Handles are
     * kept (and, under capacity 0, entries already resident remain
     * until released — new acquires bypass the cache entirely).
     */
    void setCapacity(std::uint64_t capacity_bytes);

    std::uint64_t capacityBytes() const;

    /** Number of resident traces. */
    std::size_t size() const;

    /** Estimated bytes of resident traces. */
    std::uint64_t residentBytes() const;

    /** Trace generations performed over the cache's lifetime —
     *  size() plus regenerations after eviction (test hook). */
    std::uint64_t generations() const;

  private:
    using Key = std::pair<std::string, std::uint64_t>;

    struct Handle::Entry
    {
        Key key;
        Trace trace;
        std::uint64_t bytes = 0;
        std::uint32_t pins = 0;
        std::uint64_t lastUse = 0;
        bool ready = false;
        bool cached = false;  ///< Still in entries_ (evictable set).
    };
    using Entry = Handle::Entry;

    /** Estimated resident footprint of a generated trace. */
    static std::uint64_t traceBytes(const Trace &trace);

    /** Generate outside the lock; publish under it. */
    std::shared_ptr<Entry> generateEntry(const Key &key);

    /** Drop LRU unpinned entries until within capacity. Caller holds
     *  the lock. */
    void evictToCapacity();

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::uint64_t capacity_;
    std::map<Key, std::shared_ptr<Entry>> entries_;
    /** Lifetime pins taken by get(), deduped by key so repeated
     *  get() calls return one instance (and, under capacity 0,
     *  do not accumulate private copies); these never evict. */
    std::map<Key, std::shared_ptr<Entry>> permanent_;
    std::uint64_t residentBytes_ = 0;
    std::uint64_t useClock_ = 0;
    std::uint64_t generations_ = 0;
};

/** The shared cache used by the driver CLI and the bench stubs. */
TraceCache &globalTraceCache();

} // namespace stms::driver

#endif // STMS_DRIVER_TRACE_CACHE_HH
