/**
 * @file
 * Process-wide cache of generated workload traces.
 *
 * Trace synthesis is the most expensive part of a sweep after the
 * simulation itself, and most experiments reuse the same (workload,
 * records) traces across many configuration points. The cache
 * generates each distinct trace exactly once — even when many runner
 * threads request it concurrently — and hands out const references
 * that stay valid for the cache's lifetime (entries are never
 * evicted). Generation is deterministic (seeded per workload spec),
 * so a cached trace is bit-identical to a freshly generated one.
 *
 * Only synthetic traces live here. Ingested on-disk traces (RunSpecs
 * with an IngestSpec) stream through trace_io per run in bounded
 * chunks and never enter the cache, so resident memory stays capped
 * no matter how large the replayed trace files are.
 */

#ifndef STMS_DRIVER_TRACE_CACHE_HH
#define STMS_DRIVER_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "workload/trace.hh"

namespace stms::driver
{

/** Thread-safe, generate-once trace store. */
class TraceCache
{
  public:
    /**
     * The trace for @p workload at @p records_per_core, generating it
     * on first request. Blocks while another thread generates the
     * same key; distinct keys generate concurrently.
     */
    const Trace &get(const std::string &workload,
                     std::uint64_t records_per_core);

    /** Number of distinct traces generated so far. */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::once_flag once;
        Trace trace;
    };

    using Key = std::pair<std::string, std::uint64_t>;

    mutable std::mutex mutex_;
    std::map<Key, std::unique_ptr<Entry>> entries_;
};

/** The shared cache used by the driver CLI and the bench stubs. */
TraceCache &globalTraceCache();

} // namespace stms::driver

#endif // STMS_DRIVER_TRACE_CACHE_HH
