#include "driver/experiment.hh"

#include <cstdlib>

#include "common/log.hh"

namespace stms::driver
{

void
RunSet::add(const std::string &id, RunOutput output)
{
    const bool inserted =
        outputs_.emplace(id, std::move(output)).second;
    stms_assert(inserted, "duplicate run id '%s'", id.c_str());
}

bool
RunSet::has(const std::string &id) const
{
    return outputs_.count(id) != 0;
}

const RunOutput &
RunSet::at(const std::string &id) const
{
    auto it = outputs_.find(id);
    if (it == outputs_.end())
        stms_fatal("experiment requested unknown run id '%s'",
                   id.c_str());
    return it->second;
}

std::uint64_t
plannedRecords(const Options &options, std::uint64_t fallback)
{
    if (options.has("records"))
        return options.getUint("records", fallback);
    if (const char *env = std::getenv("STMS_BENCH_RECORDS")) {
        const std::uint64_t value = std::strtoull(env, nullptr, 0);
        if (value > 0)
            return value;
    }
    return fallback;
}

std::uint32_t
plannedIndexShards(const Options &options)
{
    const std::uint64_t shards = options.getUint("index-shards", 1);
    if (shards == 0 || shards > (1ULL << 16)) {
        stms_fatal("index-shards must be in [1, 65536], got %llu",
                   static_cast<unsigned long long>(shards));
    }
    return static_cast<std::uint32_t>(shards);
}

std::optional<MemBackendSpec>
plannedMemBackend(const Options &options)
{
    const std::string text = options.get("mem-backend", "");
    if (text.empty())
        return std::nullopt;
    MemBackendSpec spec;
    std::string error;
    if (!parseMemBackendSpec(text, spec, error))
        stms_fatal("bad mem-backend option: %s", error.c_str());
    return spec;
}

} // namespace stms::driver
