#include "driver/experiment.hh"

#include <cstdlib>

#include "common/log.hh"

namespace stms::driver
{

void
RunSet::add(const std::string &id, RunOutput output)
{
    const bool inserted =
        outputs_.emplace(id, std::move(output)).second;
    stms_assert(inserted, "duplicate run id '%s'", id.c_str());
}

bool
RunSet::has(const std::string &id) const
{
    return outputs_.count(id) != 0;
}

const RunOutput &
RunSet::at(const std::string &id) const
{
    auto it = outputs_.find(id);
    if (it == outputs_.end())
        stms_fatal("experiment requested unknown run id '%s'",
                   id.c_str());
    return it->second;
}

std::uint64_t
plannedRecords(const Options &options, std::uint64_t fallback)
{
    if (options.has("records"))
        return options.getUint("records", fallback);
    if (const char *env = std::getenv("STMS_BENCH_RECORDS")) {
        const std::uint64_t value = std::strtoull(env, nullptr, 0);
        if (value > 0)
            return value;
    }
    return fallback;
}

} // namespace stms::driver
