#include "driver/experiments/builtins.hh"

#include "driver/registry.hh"

namespace stms::driver
{

void
registerBuiltinExperiments(ExperimentRegistry &registry)
{
    registry.add(makeFig1Overhead());
    registry.add(makeFig1Storage());
    registry.add(makeFig4Potential());
    registry.add(makeFig5Storage());
    registry.add(makeFig6Lookup());
    registry.add(makeFig7Traffic());
    registry.add(makeFig8Sampling());
    registry.add(makeFig9Performance());
    registry.add(makeTable2Mlp());
    registry.add(makeIndexContention());
    registry.add(makeMemTechSweep());
    registry.add(makePerfSuite());
    registry.add(makeIngestReplay());
    registry.add(makeSynthVsIngest());
    registry.add(makeAblateBucket());
    registry.add(makeAblatePriority());
    registry.add(makeAblateSharing());
}

} // namespace stms::driver
