/**
 * @file
 * Experiment "fig4" — prefetching potential of idealized temporal
 * memory streaming: coverage (in excess of the stride prefetcher)
 * and speedup over the stride-only base system. Paper shape: Web/OLTP
 * 40-60% coverage, Sci up to 99%, DSS ~20%; speedups 5-18% for
 * OLTP/Web and up to ~80% for scientific codes.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

class Fig4Potential final : public ExperimentBase
{
  public:
    Fig4Potential()
        : ExperimentBase("fig4",
                         "potential of idealized temporal streaming: "
                         "coverage and speedup vs the stride-only base")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 384 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &info : standardSuite()) {
            RunSpec base;
            base.id = info.name + "/base";
            base.workload = info.name;
            base.records = records;
            base.config.sim = defaultSimConfig();
            specs.push_back(base);

            RunSpec ideal = base;
            ideal.id = info.name + "/ideal";
            ideal.config.stms = makeIdealTmsConfig();
            specs.push_back(ideal);
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"group", "workload", "coverage", "speedup",
                     "base-ipc", "ideal-ipc", "mlp"});
        for (const auto &info : standardSuite()) {
            const RunOutput &base = runs.at(info.name + "/base");
            const RunOutput &ideal = runs.at(info.name + "/ideal");
            const double gain = speedup(base.sim, ideal.sim);
            table.addRow({info.group, info.label,
                          Table::pct(ideal.stmsCoverage),
                          Table::pct(gain), Table::num(base.sim.ipc),
                          Table::num(ideal.sim.ipc),
                          Table::num(base.sim.meanMlp)});
            out.addMetric(info.name + ".coverage",
                          ideal.stmsCoverage);
            out.addMetric(info.name + ".speedup", gain);
        }
        out.addTable("Figure 4: potential of idealized temporal "
                     "streaming\n(coverage in excess of stride; "
                     "speedup vs stride-only base)",
                     std::move(table));
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig4Potential()
{
    return std::make_unique<Fig4Potential>();
}

} // namespace stms::driver
