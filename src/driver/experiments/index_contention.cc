/**
 * @file
 * Experiment "index_contention" — quantifies the single-map
 * bottleneck the sharded index table removes (ROADMAP: concurrent
 * runs sharing one table across overlapped pipeline stages).
 *
 * The bench sweeps shards x threads over one deterministic stream of
 * index operations and reports lookups/sec plus shard imbalance. It
 * is a measurement harness, not a simulation: plan() is empty and the
 * work happens in report() on real host threads.
 *
 * Determinism is the point, not an accident: every op on a given
 * global bucket executes on the thread that *owns* that bucket
 * (owner = hash(bucket) % threads), so per-bucket op order equals
 * stream order for any thread count, and — because the global bucket
 * assignment is independent of the shard count — every model metric
 * (lookups, hits, inserts, replacements, occupancy, per-shard op
 * counts) is bit-identical across both axes of the sweep. Only the
 * *_per_sec timing metrics vary run to run; CI gates on the rest.
 * Threads still contend, exactly as intended, because one shard's
 * lock is hammered by every thread whose buckets it stripes across.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "core/sharded_index_table.hh"
#include "driver/experiments/builtins.hh"

namespace stms::driver
{
namespace
{

/** Pairs per 64-byte bucket (the paper's packing). */
constexpr std::uint32_t kEntriesPerBucket = 12;

/** One pre-generated index operation. */
struct Op
{
    Addr block;
    std::uint64_t seq;
    bool isUpdate;
};

/** Deterministic block address for update number @p update. */
Addr
keyFor(std::uint64_t update)
{
    // 2^24 block numbers: enough churn to overflow buckets (evictions
    // and misses happen) while reuse keeps the hit rate meaningful.
    return blockAddress(mixHash64(update * 2 + 1) & ((1ULL << 24) - 1));
}

/**
 * The op stream: every 4th op is an update of a fresh update-number
 * key (STMS samples 1-in-8 updates; 1-in-4 leans write-heavier to
 * stress the update path), the rest look up a pseudo-randomly chosen
 * earlier key — hits unless the pair was LRU-evicted.
 */
std::vector<Op>
makeStream(std::uint64_t ops)
{
    std::vector<Op> stream;
    stream.reserve(ops);
    std::uint64_t updates = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        if (i % 4 == 0) {
            stream.push_back(Op{keyFor(updates), updates, true});
            ++updates;
        } else {
            const std::uint64_t j = mixHash64(i) % updates;
            stream.push_back(Op{keyFor(j), 0, false});
        }
    }
    return stream;
}

/** Comma-separated unsigned list option ("1,2,4"), else @p fallback. */
std::vector<std::uint32_t>
listOption(const Options &options, const std::string &key,
           std::vector<std::uint32_t> fallback)
{
    if (!options.has(key))
        return fallback;
    std::vector<std::uint32_t> values;
    const std::string text = options.get(key, "");
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(',', begin);
        const std::string item = text.substr(
            begin, end == std::string::npos ? end : end - begin);
        char *parse_end = nullptr;
        const unsigned long parsed =
            std::strtoul(item.c_str(), &parse_end, 0);
        if (item.empty() || *parse_end != '\0' || parsed == 0)
            stms_fatal("option %s: '%s' is not a positive integer",
                       key.c_str(), item.c_str());
        values.push_back(static_cast<std::uint32_t>(parsed));
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
    return values;
}

/** Everything one (shards, threads) point measures. */
struct PointResult
{
    IndexTableStats merged;
    std::uint64_t occupancy = 0;
    double imbalance = 1.0;
    double elapsedSeconds = 0.0;
};

PointResult
runPoint(const std::vector<Op> &stream, std::uint64_t index_bytes,
         std::uint32_t shards, std::uint32_t threads)
{
    ShardedIndexTable table(index_bytes, kEntriesPerBucket, shards);

    // Deal ops to their bucket-owner thread. The owner hash depends
    // only on the global bucket (never the shard count), so the
    // per-bucket op order — and with it every model stat — is the
    // stream order regardless of how many threads execute it.
    std::vector<std::vector<const Op *>> work(threads);
    for (const Op &op : stream) {
        const std::uint64_t bucket = table.bucketOf(op.block);
        work[mixHash64(bucket ^ 0x9e3779b97f4a7c15ULL) % threads]
            .push_back(&op);
    }

    std::atomic<std::uint32_t> ready{0};
    std::atomic<bool> go{false};
    auto worker = [&](std::uint32_t id) {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (const Op *op : work[id]) {
            if (op->isUpdate)
                table.update(op->block, HistoryPointer{0, op->seq});
            else
                table.lookup(op->block);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
        pool.emplace_back(worker, t);
    while (ready.load() != threads) {
    }
    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto &thread : pool)
        thread.join();
    const auto stop = std::chrono::steady_clock::now();

    PointResult result;
    result.merged = table.stats();
    result.occupancy = table.occupancy();
    result.elapsedSeconds =
        std::chrono::duration<double>(stop - start).count();

    // Acceptance gate, enforced where the numbers are made: the
    // per-shard stats must sum exactly to the merged aggregate, and
    // the live occupancy must match the full recount.
    IndexTableStats summed;
    std::uint64_t busiest = 0;
    for (std::uint32_t s = 0; s < table.numShards(); ++s) {
        summed += table.shardStats(s);
        busiest = std::max(busiest, table.shardOps(s));
    }
    stms_assert(summed == result.merged,
                "per-shard stats do not sum to the aggregate");
    stms_assert(result.occupancy == table.occupancyScan(),
                "live occupancy diverged from the store scan");

    const double mean =
        static_cast<double>(result.merged.lookups +
                            result.merged.updates) /
        static_cast<double>(table.numShards());
    result.imbalance =
        mean == 0.0 ? 1.0 : static_cast<double>(busiest) / mean;
    return result;
}

class IndexContention final : public ExperimentBase
{
  public:
    IndexContention()
        : ExperimentBase("index_contention",
                         "index-table lock contention: lookups/sec "
                         "and shard imbalance across shards x threads")
    {}

    std::vector<RunSpec>
    plan(const Options &) const override
    {
        // A host-thread measurement harness, not a simulation sweep:
        // the work runs in report().
        return {};
    }

    Report
    report(const Options &options, const RunSet &) const override
    {
        const std::vector<std::uint32_t> shard_counts =
            listOption(options, "shards", {1, 2, 4, 8});
        const std::vector<std::uint32_t> thread_counts =
            listOption(options, "threads", {1, 2, 4});
        const std::uint64_t ops =
            options.getUint("ops", 1ULL << 20);
        // Small enough that the default op count overflows buckets:
        // replacements and missed lookups are part of the workload.
        const std::uint64_t index_bytes =
            parseSize(options.get("index-bytes", "1M"));
        stms_assert(ops >= 4, "need at least one update op");

        const std::vector<Op> stream = makeStream(ops);

        Report out(name());
        Table table({"shards", "threads", "Mops/s", "lookups/s",
                     "imbalance", "hit-rate", "occupancy"});
        // The model metrics are thread-invariant by construction;
        // emit them once per shard count and hard-verify every other
        // point against the first, so a nondeterminism bug fails the
        // run rather than producing quietly wobbling numbers.
        bool first_point = true;
        PointResult reference;
        for (std::uint32_t shards : shard_counts) {
            bool first_threads = true;
            PointResult shard_reference;
            for (std::uint32_t threads : thread_counts) {
                const PointResult point =
                    runPoint(stream, index_bytes, shards, threads);
                if (first_point) {
                    reference = point;
                    first_point = false;
                } else {
                    stms_assert(
                        point.merged == reference.merged &&
                            point.occupancy == reference.occupancy,
                        "merged stats drifted across the sweep "
                        "(shards=%u threads=%u)",
                        shards, threads);
                }
                if (first_threads) {
                    shard_reference = point;
                    first_threads = false;
                    const std::string prefix =
                        "s" + std::to_string(shards);
                    const auto &m = point.merged;
                    out.addMetric(prefix + ".lookups",
                                  static_cast<double>(m.lookups));
                    out.addMetric(prefix + ".lookup_hits",
                                  static_cast<double>(m.lookupHits));
                    out.addMetric(prefix + ".updates",
                                  static_cast<double>(m.updates));
                    out.addMetric(prefix + ".inserts",
                                  static_cast<double>(m.inserts));
                    out.addMetric(
                        prefix + ".replacements",
                        static_cast<double>(m.replacements));
                    out.addMetric(prefix + ".occupancy",
                                  static_cast<double>(point.occupancy));
                    out.addMetric(prefix + ".imbalance",
                                  point.imbalance);
                }
                const double mops =
                    static_cast<double>(ops) /
                    point.elapsedSeconds / 1.0e6;
                const double lookups_per_sec =
                    static_cast<double>(point.merged.lookups) /
                    point.elapsedSeconds;
                const std::string id = "s" + std::to_string(shards) +
                                       ".t" + std::to_string(threads);
                out.addMetric(id + ".mops_per_sec", mops);
                out.addMetric(id + ".lookups_per_sec",
                              lookups_per_sec);
                const double hit_rate =
                    point.merged.lookups == 0
                        ? 0.0
                        : static_cast<double>(
                              point.merged.lookupHits) /
                              static_cast<double>(
                                  point.merged.lookups);
                table.addRow({std::to_string(shards),
                              std::to_string(threads),
                              Table::num(mops),
                              Table::num(lookups_per_sec),
                              Table::num(shard_reference.imbalance),
                              Table::pct(hit_rate),
                              std::to_string(point.occupancy)});
            }
        }
        out.addTable("Index-table contention: shards x threads",
                     std::move(table));
        out.addNote(
            "Shape check: with one shard, added threads serialize on "
            "a single lock (flat or\nfalling Mops/s); with shards >= "
            "threads, throughput scales while every model\nmetric "
            "stays bit-identical — sharding moves locks, never "
            "results.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeIndexContention()
{
    return std::make_unique<IndexContention>();
}

} // namespace stms::driver
