/**
 * @file
 * Experiment "fig1-overhead" — memory traffic overheads of prior
 * off-chip meta-data designs (EBCP, ULMT, TSE-like), re-measured
 * mechanically in our simulator rather than copied from their papers.
 *
 * EBCP: fixed-depth single table, epoch-gated lookups, RMW updates.
 * ULMT: fixed-depth single table, lookup + RMW update on every miss.
 * TSE-like: split-table streaming with always-on (100%) index update
 * and no bucket buffer — the un-sampled traffic structure STMS fixes.
 *
 * Paper shape: overhead traffic around 3x the baseline read traffic,
 * dominated by meta-data updates and lookups.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kCommercial = {
    "web-apache", "web-zeus", "oltp-db2", "oltp-oracle"};

struct Breakdown
{
    double lookup = 0.0;
    double update = 0.0;
    double erroneous = 0.0;

    double total() const { return lookup + update + erroneous; }
};

/** Overhead per baseline read byte, from the traffic counters. */
Breakdown
breakdownOf(const SimResult &result)
{
    const double reads = static_cast<double>(
        result.traffic.bytesFor(TrafficClass::DemandRead));
    Breakdown b;
    if (reads <= 0)
        return b;
    b.lookup = static_cast<double>(
                   result.traffic.bytesFor(TrafficClass::MetaLookup)) /
               reads;
    b.update =
        static_cast<double>(
            result.traffic.bytesFor(TrafficClass::MetaUpdate) +
            result.traffic.bytesFor(TrafficClass::MetaRecord)) /
        reads;
    // Erroneous = prefetched bytes never consumed.
    double issued_bytes = 0.0;
    for (const auto &pf : result.prefetchers)
        issued_bytes += static_cast<double>(pf.erroneous) * kBlockBytes;
    b.erroneous = issued_bytes / reads;
    return b;
}

class Fig1Overhead final : public ExperimentBase
{
  public:
    Fig1Overhead()
        : ExperimentBase("fig1-overhead",
                         "traffic overheads of prior off-chip "
                         "meta-data designs (EBCP/ULMT/TSE-like)")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &name : kCommercial) {
            RunSpec ebcp;
            ebcp.id = name + "/ebcp";
            ebcp.workload = name;
            ebcp.records = records;
            ebcp.config.sim = defaultSimConfig(true);
            CorrelationConfig cc;
            cc.offchipMeta = true;
            cc.epochMode = true;
            ebcp.config.correlation = cc;
            specs.push_back(ebcp);

            RunSpec ulmt = ebcp;
            ulmt.id = name + "/ulmt";
            ulmt.config.correlation->epochMode = false;
            specs.push_back(ulmt);

            // TSE-like: STMS machinery, 100% updates, no bucket
            // buffer.
            RunSpec tse;
            tse.id = name + "/tse";
            tse.workload = name;
            tse.records = records;
            tse.config.sim = defaultSimConfig(true);
            StmsConfig tse_config;
            tse_config.samplingProbability = 1.0;
            tse_config.bucketBufferBuckets = 1;
            tse.config.stms = tse_config;
            specs.push_back(tse);
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Breakdown ebcp, ulmt, tse;
        auto add = [](Breakdown &acc, const Breakdown &b) {
            acc.lookup += b.lookup;
            acc.update += b.update;
            acc.erroneous += b.erroneous;
        };
        for (const auto &name : kCommercial) {
            add(ebcp, breakdownOf(runs.at(name + "/ebcp").sim));
            add(ulmt, breakdownOf(runs.at(name + "/ulmt").sim));
            add(tse, breakdownOf(runs.at(name + "/tse").sim));
        }
        const double n = static_cast<double>(kCommercial.size());

        Report out(name());
        Table table(
            {"design", "lookup", "update", "erroneous", "total"});
        auto row = [&](const char *label, const char *key,
                       const Breakdown &b) {
            table.addRow({label, Table::num(b.lookup / n),
                          Table::num(b.update / n),
                          Table::num(b.erroneous / n),
                          Table::num(b.total() / n)});
            out.addMetric(std::string(key) + ".total", b.total() / n);
        };
        row("EBCP-like (epoch, fixed depth)", "ebcp", ebcp);
        row("ULMT-like (per-miss, fixed depth)", "ulmt", ulmt);
        row("TSE-like (split table, unsampled)", "tse", tse);

        out.addTable("Figure 1 (right): overhead accesses per "
                     "baseline read (commercial mean)",
                     std::move(table));
        out.addNote("Shape check: prior designs cost on the order of "
                    "the baseline read traffic\nagain (or more), "
                    "dominated by meta-data updates/lookups (Sec. 3).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig1Overhead()
{
    return std::make_unique<Fig1Overhead>();
}

} // namespace stms::driver
