/**
 * @file
 * Experiment "fig9" — the headline result: practical STMS with
 * off-chip meta-data vs idealized on-chip lookup.
 *
 * Left: coverage of idealized TMS vs off-chip STMS (12.5% sampling),
 * with STMS coverage split into fully- and partially-covered misses.
 * Right: speedup of both over the stride-only base system.
 *
 * Paper shape: STMS achieves ~90% of the idealized design's coverage
 * and performance while keeping all predictor meta-data in main
 * memory.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

class Fig9Performance final : public ExperimentBase
{
  public:
    Fig9Performance()
        : ExperimentBase("fig9",
                         "headline result: practical off-chip STMS "
                         "vs idealized on-chip TMS")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 384 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &info : standardSuite()) {
            RunSpec base;
            base.id = info.name + "/base";
            base.workload = info.name;
            base.records = records;
            base.config.sim = defaultSimConfig();
            specs.push_back(base);

            RunSpec ideal = base;
            ideal.id = info.name + "/ideal";
            ideal.config.stms = makeIdealTmsConfig();
            specs.push_back(ideal);

            RunSpec stms = base;
            stms.id = info.name + "/stms";
            // Defaults: off-chip, 12.5% sampling.
            stms.config.stms = StmsConfig{};
            specs.push_back(stms);
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"group", "workload", "ideal-cov", "stms-cov",
                     "stms-full", "stms-partial", "ideal-speedup",
                     "stms-speedup", "stms/ideal"});

        double ratio_sum = 0.0;
        int ratio_count = 0;
        for (const auto &info : standardSuite()) {
            const RunOutput &base = runs.at(info.name + "/base");
            const RunOutput &ideal = runs.at(info.name + "/ideal");
            const RunOutput &stms = runs.at(info.name + "/stms");

            const double ideal_speedup = speedup(base.sim, ideal.sim);
            const double stms_speedup = speedup(base.sim, stms.sim);
            double ratio = 0.0;
            if (ideal_speedup > 0.005) {
                ratio = stms_speedup / ideal_speedup;
                ratio_sum += ratio;
                ++ratio_count;
            }

            table.addRow({info.group, info.label,
                          Table::pct(ideal.stmsCoverage),
                          Table::pct(stms.stmsCoverage),
                          Table::pct(stms.stmsFullCoverage),
                          Table::pct(stms.stmsPartialCoverage),
                          Table::pct(ideal_speedup),
                          Table::pct(stms_speedup),
                          ideal_speedup > 0.005 ? Table::pct(ratio, 0)
                                                : "-"});
            out.addMetric(info.name + ".ideal_coverage",
                          ideal.stmsCoverage);
            out.addMetric(info.name + ".stms_coverage",
                          stms.stmsCoverage);
            out.addMetric(info.name + ".ideal_speedup", ideal_speedup);
            out.addMetric(info.name + ".stms_speedup", stms_speedup);
        }
        out.addTable("Figure 9: idealized TMS vs practical STMS "
                     "(off-chip meta-data, 12.5% sampling)",
                     std::move(table));
        if (ratio_count > 0) {
            const double mean =
                ratio_sum / static_cast<double>(ratio_count);
            out.addMetric("mean_stms_ideal_ratio", mean);
            out.addNote("Mean STMS/ideal speedup ratio: " +
                        Table::pct(mean, 0) + "  (paper: ~90%)");
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig9Performance()
{
    return std::make_unique<Fig9Performance>();
}

} // namespace stms::driver
