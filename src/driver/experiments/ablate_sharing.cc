/**
 * @file
 * Experiment "ablate-sharing" — history-buffer organization and
 * stream-slot count.
 *
 * Per-core vs shared history: the paper keeps one history buffer per
 * core because "when accesses from multiple cores are interleaved,
 * repetitive sequences are obscured" (Sec. 4.2). The shared index
 * table is kept in both configurations.
 *
 * Stream slots per core: the engine's ability to track several
 * concurrent streams (TSE-style) vs a single stream.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kWorkloads = {"web-apache", "oltp-db2",
                                             "sci-em3d"};
const std::vector<std::uint32_t> kSlots = {1, 2, 4, 8};

class AblateSharing final : public ExperimentBase
{
  public:
    AblateSharing()
        : ExperimentBase("ablate-sharing",
                         "per-core vs shared history buffer, and "
                         "stream slots per core engine")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &workload : kWorkloads) {
            for (bool shared : {false, true}) {
                RunSpec spec;
                spec.id = workload +
                          (shared ? "/shared" : "/per-core");
                spec.workload = workload;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config = makeIdealTmsConfig();
                config.sharedHistory = shared;
                // Shared mode needs a bounded HB to be meaningful;
                // use the same aggregate capacity in both arms.
                config.historyEntriesPerCore =
                    shared ? 4ULL << 20 : 1ULL << 20;
                spec.config.stms = config;
                specs.push_back(spec);
            }
            for (std::uint32_t n : kSlots) {
                RunSpec spec;
                spec.id = workload + "/slots" + std::to_string(n);
                spec.workload = workload;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config = makeIdealTmsConfig();
                config.streamsPerCore = n;
                spec.config.stms = config;
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());

        Table history({"workload", "history", "coverage", "accuracy"});
        for (const auto &workload : kWorkloads) {
            for (bool shared : {false, true}) {
                const std::string arm =
                    shared ? "shared" : "per-core";
                const RunOutput &run =
                    runs.at(workload + "/" + arm);
                history.addRow({workload, arm,
                                Table::pct(run.stmsCoverage),
                                Table::pct(run.stms.accuracy())});
                out.addMetric(workload + "." + arm + ".coverage",
                              run.stmsCoverage);
            }
        }
        out.addTable("Ablation: per-core vs shared history buffer "
                     "(Sec. 4.2)",
                     std::move(history));

        Table slots({"workload", "slots/core", "coverage",
                     "accuracy"});
        for (const auto &workload : kWorkloads) {
            for (std::uint32_t n : kSlots) {
                const RunOutput &run =
                    runs.at(workload + "/slots" + std::to_string(n));
                slots.addRow({workload, std::to_string(n),
                              Table::pct(run.stmsCoverage),
                              Table::pct(run.stms.accuracy())});
                out.addMetric(workload + ".slots" +
                                  std::to_string(n) + ".coverage",
                              run.stmsCoverage);
            }
        }
        out.addTable("Ablation: stream slots per core engine",
                     std::move(slots));
        out.addNote("Shape check: interleaving cores into one shared "
                    "history obscures recurrence\n(coverage drops); a "
                    "few stream slots per core beat a single slot.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeAblateSharing()
{
    return std::make_unique<AblateSharing>();
}

} // namespace stms::driver
