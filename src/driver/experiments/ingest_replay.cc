/**
 * @file
 * Experiment "ingest_replay" — replay a trace through the full STMS
 * pipeline (timed base system vs base + STMS) and report coverage,
 * speedup, and traffic overhead.
 *
 * Two source modes, one pipeline:
 *  - with `--trace PATH[,format=...]` the records stream from disk
 *    in bounded chunks (native or ChampSim, chunk=N records/lane);
 *  - without it, the synthetic workload named by `workload=` is run
 *    at `records=` per core — the baseline an ingested export of the
 *    same workload must match.
 *
 * The report deliberately contains no file paths, so replaying an
 * exported synthetic trace yields JSON byte-identical to its direct
 * synthetic baseline; CI diffs exactly that.
 */

#include "driver/experiments/builtins.hh"

#include "common/log.hh"
#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

class IngestReplay final : public ExperimentBase
{
  public:
    IngestReplay()
        : ExperimentBase("ingest_replay",
                         "replay an on-disk (--trace) or synthetic "
                         "trace through base vs base+STMS")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        std::optional<trace_io::IngestSpec> ingest;
        const std::string joined = options.get("trace", "");
        if (!joined.empty()) {
            trace_io::IngestSpec spec;
            std::string error;
            if (!trace_io::parseIngestSpec(
                    joined,
                    options.getUint("chunk",
                                    trace_io::kDefaultChunkRecords),
                    spec, error)) {
                stms_fatal("ingest_replay: %s", error.c_str());
            }
            ingest = std::move(spec);
        }
        const std::string workload =
            options.get("workload", "oltp-db2");
        if (!ingest && !isKnownWorkload(workload)) {
            stms_fatal("ingest_replay: unknown workload '%s' (and no "
                       "--trace given)",
                       workload.c_str());
        }
        const std::uint64_t records =
            plannedRecords(options, 64 * 1024);

        std::vector<RunSpec> specs;
        for (const bool with_stms : {false, true}) {
            RunSpec spec;
            spec.id = with_stms ? "stms" : "base";
            spec.workload = workload;
            spec.records = records;
            spec.ingest = ingest;
            spec.config.sim = defaultSimConfig(false);
            if (with_stms) {
                StmsConfig config;
                config.samplingProbability =
                    options.getDouble("sampling",
                                      config.samplingProbability);
                spec.config.stms = config;
            }
            specs.push_back(std::move(spec));
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        const RunOutput &base = runs.at("base");
        const RunOutput &stms = runs.at("stms");

        Report out(name());
        Table table({"metric", "base", "stms"});
        table.addRow({"ipc", Table::num(base.sim.ipc, 3),
                      Table::num(stms.sim.ipc, 3)});
        table.addRow({"off-chip read coverage", "-",
                      Table::pct(stms.stmsCoverage)});
        table.addRow({"  fully covered", "-",
                      Table::pct(stms.stmsFullCoverage)});
        table.addRow({"  partially covered", "-",
                      Table::pct(stms.stmsPartialCoverage)});
        table.addRow({"overhead bytes/useful byte",
                      Table::num(overheadPerBaseByte(base)),
                      Table::num(overheadPerBaseByte(stms))});
        table.addRow({"STMS meta-data footprint", "-",
                      formatSize(stms.stmsMetaBytes)});
        out.addTable("Trace replay: base system vs base + STMS",
                     std::move(table));

        out.addMetric("ipc.base", base.sim.ipc);
        out.addMetric("ipc.stms", stms.sim.ipc);
        out.addMetric("speedup", speedup(base.sim, stms.sim));
        out.addMetric("coverage", stms.stmsCoverage);
        out.addMetric("coverage.full", stms.stmsFullCoverage);
        out.addMetric("coverage.partial", stms.stmsPartialCoverage);
        out.addMetric("overheadPerUsefulByte",
                      overheadPerBaseByte(stms));
        out.addMetric("stmsMetaBytes",
                      static_cast<double>(stms.stmsMetaBytes));
        out.addNote("Same pipeline for ingested (--trace) and "
                    "synthetic sources: an exported synthetic\n"
                    "workload replayed here reports byte-identical "
                    "JSON to its direct baseline.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeIngestReplay()
{
    return std::make_unique<IngestReplay>();
}

} // namespace stms::driver
