/**
 * @file
 * Experiment "fig8" — sensitivity to the probabilistic-update
 * sampling probability.
 *
 * Left: traffic overhead (bytes per useful data byte) vs sampling
 * probability — proportional to p until other sources dominate.
 * Right: coverage vs sampling probability — decreases only
 * logarithmically as updates are dropped.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<double> kProbabilities = {0.01, 0.03125, 0.0625,
                                            0.125, 0.25, 0.5, 1.0};

class Fig8Sampling final : public ExperimentBase
{
  public:
    Fig8Sampling()
        : ExperimentBase("fig8",
                         "traffic overhead and coverage vs "
                         "index-update sampling probability")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (double p : kProbabilities) {
            for (const auto &info : standardSuite()) {
                RunSpec spec;
                spec.id = "p" + Table::num(p, 5) + "/" + info.name;
                spec.workload = info.name;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config;
                config.samplingProbability = p;
                spec.config.stms = config;
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());

        std::vector<std::string> headers = {"sampling"};
        for (const auto &info : standardSuite())
            headers.push_back(info.label);

        Table traffic(headers);
        Table coverage(headers);
        for (double p : kProbabilities) {
            std::vector<std::string> t_row = {Table::pct(p, 1)};
            std::vector<std::string> c_row = {Table::pct(p, 1)};
            const std::string point = "p" + Table::num(p, 5);
            for (const auto &info : standardSuite()) {
                const RunOutput &run = runs.at(point + "/" + info.name);
                t_row.push_back(Table::num(overheadPerBaseByte(run)));
                c_row.push_back(Table::pct(run.stmsCoverage, 0));
                out.addMetric(point + "." + info.name + ".coverage",
                              run.stmsCoverage);
                out.addMetric(point + "." + info.name + ".overhead",
                              overheadPerBaseByte(run));
            }
            traffic.addRow(t_row);
            coverage.addRow(c_row);
        }

        out.addTable("Figure 8 (left): traffic overhead (bytes/useful "
                     "byte) vs sampling probability",
                     std::move(traffic));
        out.addTable("Figure 8 (right): coverage vs sampling "
                     "probability",
                     std::move(coverage));
        out.addNote("Shape check: traffic falls roughly linearly in "
                    "p; coverage falls only\nlogarithmically "
                    "(Sec. 5.5), so 12.5% is the sweet spot the paper "
                    "picks.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig8Sampling()
{
    return std::make_unique<Fig8Sampling>();
}

} // namespace stms::driver
