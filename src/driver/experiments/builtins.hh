/**
 * @file
 * Factories for the built-in experiments (one per paper figure,
 * table, or ablation). Registration is explicit — see
 * registerBuiltinExperiments() — so the definitions survive
 * static-library linking without self-registration tricks.
 */

#ifndef STMS_DRIVER_EXPERIMENTS_BUILTINS_HH
#define STMS_DRIVER_EXPERIMENTS_BUILTINS_HH

#include <memory>

#include "driver/experiment.hh"

namespace stms::driver
{

std::unique_ptr<Experiment> makeFig1Overhead();
std::unique_ptr<Experiment> makeIngestReplay();
std::unique_ptr<Experiment> makeSynthVsIngest();
std::unique_ptr<Experiment> makeFig1Storage();
std::unique_ptr<Experiment> makeFig4Potential();
std::unique_ptr<Experiment> makeFig5Storage();
std::unique_ptr<Experiment> makeFig6Lookup();
std::unique_ptr<Experiment> makeFig7Traffic();
std::unique_ptr<Experiment> makeFig8Sampling();
std::unique_ptr<Experiment> makeFig9Performance();
std::unique_ptr<Experiment> makeTable2Mlp();
std::unique_ptr<Experiment> makeIndexContention();
std::unique_ptr<Experiment> makeMemTechSweep();
std::unique_ptr<Experiment> makePerfSuite();
std::unique_ptr<Experiment> makeAblateBucket();
std::unique_ptr<Experiment> makeAblatePriority();
std::unique_ptr<Experiment> makeAblateSharing();

} // namespace stms::driver

#endif // STMS_DRIVER_EXPERIMENTS_BUILTINS_HH
