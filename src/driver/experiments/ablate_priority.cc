/**
 * @file
 * Experiment "ablate-priority" — arbitration priority of predictor
 * meta-data traffic. The paper: "We find that assigning a low
 * priority to predictor memory traffic is essential to minimize
 * queueing-related stalls" (Sec. 4.3). Runs STMS with meta-data
 * traffic at low (default) and demand priority and compares IPC and
 * coverage under full timing.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kWorkloads = {
    "web-apache", "oltp-db2", "sci-em3d", "sci-ocean"};

class AblatePriority final : public ExperimentBase
{
  public:
    AblatePriority()
        : ExperimentBase("ablate-priority",
                         "meta-data traffic at low vs demand "
                         "priority under full timing")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 192 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &workload : kWorkloads) {
            RunSpec base;
            base.id = workload + "/base";
            base.workload = workload;
            base.records = records;
            base.config.sim = defaultSimConfig();
            specs.push_back(base);

            for (bool high : {false, true}) {
                RunSpec spec = base;
                spec.id = workload + (high ? "/demand" : "/low");
                spec.config.sim.memory.metaHighPriority = high;
                spec.config.stms =
                    StmsConfig{};  // Off-chip, 12.5% sampling.
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"workload", "meta-priority", "ipc",
                     "speedup-vs-base", "coverage",
                     "mem-utilization"});
        for (const auto &workload : kWorkloads) {
            const RunOutput &base = runs.at(workload + "/base");
            for (bool high : {false, true}) {
                const std::string arm = high ? "demand" : "low";
                const RunOutput &run =
                    runs.at(workload + "/" + arm);
                table.addRow({workload, arm,
                              Table::num(run.sim.ipc, 3),
                              Table::pct(speedup(base.sim, run.sim)),
                              Table::pct(run.stmsCoverage),
                              Table::pct(run.sim.memUtilization)});
                out.addMetric(workload + "." + arm + ".speedup",
                              speedup(base.sim, run.sim));
            }
        }
        out.addTable("Ablation: meta-data traffic priority (Sec. 4.3)",
                     std::move(table));
        out.addNote("Shape check: demand-priority meta-data steals "
                    "channel slots from demand\nfetches; low priority "
                    "wins on IPC especially when bandwidth is tight.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeAblatePriority()
{
    return std::make_unique<AblatePriority>();
}

} // namespace stms::driver
