/**
 * @file
 * Experiment "fig5" — off-chip meta-data storage requirements.
 *
 * Left: coverage vs history-buffer size. Paper shape: commercial
 * workloads improve smoothly with history size (a spectrum of reuse
 * distances); scientific workloads are bimodal — negligible coverage
 * until the buffer holds a full iteration, near-perfect after.
 *
 * Right: coverage vs index-table size with an unbounded history.
 * Paper shape: saturation at a fraction of the idealized prefetcher's
 * entry count, because in-bucket LRU retains the useful pointers.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::uint64_t> kHistoryEntries = {
    1ULL << 13, 1ULL << 14, 1ULL << 15, 1ULL << 16, 1ULL << 17,
    1ULL << 18, 1ULL << 19, 1ULL << 20};

const std::vector<std::uint64_t> kIndexBytes = {
    256ULL << 10, 512ULL << 10, 1ULL << 20, 2ULL << 20, 4ULL << 20,
    8ULL << 20, 16ULL << 20, 32ULL << 20};

class Fig5Storage final : public ExperimentBase
{
  public:
    Fig5Storage()
        : ExperimentBase("fig5",
                         "coverage vs history-buffer and index-table "
                         "size (off-chip storage requirements)")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (std::uint64_t entries : kHistoryEntries) {
            for (const auto &info : standardSuite()) {
                RunSpec spec;
                spec.id =
                    "hb" + std::to_string(entries) + "/" + info.name;
                spec.workload = info.name;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config = makeIdealTmsConfig();
                config.historyEntriesPerCore = entries;
                spec.config.stms = config;
                specs.push_back(spec);
            }
        }
        for (std::uint64_t bytes : kIndexBytes) {
            for (const auto &info : standardSuite()) {
                RunSpec spec;
                spec.id =
                    "idx" + std::to_string(bytes) + "/" + info.name;
                spec.workload = info.name;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config = makeIdealTmsConfig();
                config.indexBytes = bytes;  // History stays unbounded.
                spec.config.stms = config;
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());

        std::vector<std::string> headers = {"hb-size(total)"};
        for (const auto &info : standardSuite())
            headers.push_back(info.label);

        Table left(headers);
        for (std::uint64_t entries : kHistoryEntries) {
            std::vector<std::string> row;
            // 4 cores x entries, packed 12/block.
            row.push_back(
                formatSize(4 * divCeil(entries, 12) * kBlockBytes));
            for (const auto &info : standardSuite()) {
                const RunOutput &run = runs.at(
                    "hb" + std::to_string(entries) + "/" + info.name);
                row.push_back(Table::pct(run.stmsCoverage, 0));
                out.addMetric("hb" + std::to_string(entries) + "." +
                                  info.name,
                              run.stmsCoverage);
            }
            left.addRow(row);
        }
        out.addTable("Figure 5 (left): coverage vs aggregate "
                     "history-buffer size",
                     std::move(left));

        std::vector<std::string> right_headers = headers;
        right_headers[0] = "index-size";
        Table right(right_headers);
        for (std::uint64_t bytes : kIndexBytes) {
            std::vector<std::string> row;
            row.push_back(formatSize(bytes));
            for (const auto &info : standardSuite()) {
                const RunOutput &run = runs.at(
                    "idx" + std::to_string(bytes) + "/" + info.name);
                row.push_back(Table::pct(run.stmsCoverage, 0));
                out.addMetric("idx" + std::to_string(bytes) + "." +
                                  info.name,
                              run.stmsCoverage);
            }
            right.addRow(row);
        }
        out.addTable("Figure 5 (right): coverage vs index-table size "
                     "(unbounded history)",
                     std::move(right));
        out.addNote(
            "Shape check: commercial curves grow smoothly with "
            "history size; scientific\ncurves are bimodal (nothing "
            "until one iteration fits, then near-max). The index\n"
            "table saturates at a few MB thanks to in-bucket LRU "
            "(Sec. 5.3).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig5Storage()
{
    return std::make_unique<Fig5Storage>();
}

} // namespace stms::driver
