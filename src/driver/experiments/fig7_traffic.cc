/**
 * @file
 * Experiment "fig7" — off-chip traffic overhead breakdown, without
 * (100%) and with (12.5%) probabilistic index update.
 *
 * Overhead bytes per useful data byte (demand fetches + writebacks),
 * split into: recording streams (history appends + end marks), index
 * updates, stream lookups (index + history reads), and incorrect
 * prefetches. Paper shape: at 100% sampling, index updates dominate
 * and exceed the useful traffic for many workloads; 12.5% sampling
 * removes most of it.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<double> kSamplings = {1.0, 0.125};

class Fig7Traffic final : public ExperimentBase
{
  public:
    Fig7Traffic()
        : ExperimentBase("fig7",
                         "traffic overhead breakdown at 100% vs "
                         "12.5% index-update sampling")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &info : standardSuite()) {
            for (double p : kSamplings) {
                RunSpec spec;
                spec.id = info.name + "/p" + Table::num(p, 3);
                spec.workload = info.name;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                StmsConfig config;
                config.samplingProbability = p;
                spec.config.stms = config;
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"workload", "sampling", "record", "update",
                     "lookup", "incorrect", "total"});
        for (const auto &info : standardSuite()) {
            for (double p : kSamplings) {
                const RunOutput &run =
                    runs.at(info.name + "/p" + Table::num(p, 3));

                // Fig. 7 normalization: base-system data traffic,
                // i.e. demand fetches + writebacks + consumed
                // prefetches (the base system would fetch those
                // blocks on demand).
                const double useful = usefulBaseBytes(run.sim);
                auto share = [&](TrafficClass cls) {
                    return useful == 0
                               ? 0.0
                               : static_cast<double>(
                                     run.sim.traffic.bytesFor(cls)) /
                                     useful;
                };
                const double record = share(TrafficClass::MetaRecord);
                const double update = share(TrafficClass::MetaUpdate);
                const double lookup = share(TrafficClass::MetaLookup);
                const double incorrect =
                    useful == 0
                        ? 0.0
                        : static_cast<double>(run.stms.erroneous) *
                              kBlockBytes / useful;
                const double total =
                    record + update + lookup + incorrect;
                table.addRow({info.label, Table::pct(p, 1),
                              Table::num(record), Table::num(update),
                              Table::num(lookup),
                              Table::num(incorrect),
                              Table::num(total)});
                out.addMetric(info.name + ".p" + Table::num(p, 3) +
                                  ".total",
                              total);
            }
        }
        out.addTable("Figure 7: overhead bytes per useful data byte, "
                     "100% vs 12.5% sampling",
                     std::move(table));
        out.addNote("Shape check: at 100% sampling index updates "
                    "dominate; 12.5% cuts update\ntraffic ~8x while "
                    "record traffic stays negligible (1 write per 12 "
                    "misses).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig7Traffic()
{
    return std::make_unique<Fig7Traffic>();
}

} // namespace stms::driver
