/**
 * @file
 * Experiment "table2" — memory-level parallelism of off-chip reads in
 * the base system (stride prefetcher only, no STMS).
 *
 * MLP is the time-weighted average number of outstanding off-chip
 * reads while at least one is outstanding. Paper values: Web 1.5,
 * OLTP 1.3, DSS 1.6, em3d 1.7, moldyn 1.0, ocean 1.2 — low MLP is
 * what makes lookup round-trips cheap relative to fragmentation
 * losses (Sec. 5.4).
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

class Table2Mlp final : public ExperimentBase
{
  public:
    Table2Mlp()
        : ExperimentBase("table2",
                         "memory-level parallelism of off-chip reads "
                         "in the base system")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 384 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &info : standardSuite()) {
            RunSpec spec;
            spec.id = info.name;
            spec.workload = info.name;
            spec.records = records;
            spec.config.sim = defaultSimConfig();
            specs.push_back(spec);
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table(
            {"group", "workload", "mlp", "paper-mlp", "per-core"});
        for (const auto &info : standardSuite()) {
            const RunOutput &base = runs.at(info.name);
            std::string per_core;
            for (double mlp : base.sim.mlpPerCore)
                per_core += Table::num(mlp) + " ";
            table.addRow({info.group, info.label,
                          Table::num(base.sim.meanMlp),
                          Table::num(info.paperMlp, 1), per_core});
            out.addMetric(info.name + ".mlp", base.sim.meanMlp);
        }
        out.addTable("Table 2: MLP of off-chip reads (base system)",
                     std::move(table));
        out.addNote("Shape check: moldyn is fully serial (1.0); "
                    "commercial workloads sit in the\n1.2-1.8 band; "
                    "no workload is deeply parallel (pointer "
                    "chasing).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeTable2Mlp()
{
    return std::make_unique<Table2Mlp>();
}

} // namespace stms::driver
