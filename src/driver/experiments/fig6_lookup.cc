/**
 * @file
 * Experiment "fig6" — amortizing off-chip lookups.
 *
 * Left: cumulative distribution of streamed blocks vs the length of
 * the stream they came from (commercial workloads). Paper shape: half
 * of all streamed blocks come from streams longer than ~10 blocks,
 * with a tail reaching hundreds — fixed-depth tables fragment these.
 *
 * Right: coverage loss vs restricted prefetch depth (the single-table
 * designs' fixed depth), relative to unbounded depth.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kCommercial = {
    "web-apache", "web-zeus", "oltp-db2", "oltp-oracle", "dss-db2"};

const std::vector<std::uint64_t> kDepths = {1, 2, 3, 4, 6, 8, 12, 15};

class Fig6Lookup final : public ExperimentBase
{
  public:
    Fig6Lookup()
        : ExperimentBase("fig6",
                         "stream-length CDF and coverage loss vs "
                         "fixed prefetch depth")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &name : kCommercial) {
            RunSpec unbounded;
            unbounded.id = name + "/unbounded";
            unbounded.workload = name;
            unbounded.records = records;
            unbounded.config.sim = defaultSimConfig(true);
            unbounded.config.stms = makeIdealTmsConfig();
            specs.push_back(unbounded);

            for (std::uint64_t depth : kDepths) {
                RunSpec spec = unbounded;
                spec.id = name + "/depth" + std::to_string(depth);
                spec.config.stms->maxStreamDepth = depth;
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());

        std::vector<std::string> headers = {"stream-length<="};
        for (const auto &name : kCommercial)
            headers.push_back(name);

        Table left(headers);
        for (std::size_t bucket = 0; bucket < 14; ++bucket) {
            std::vector<std::string> row;
            row.push_back(std::to_string((2ULL << bucket) - 1));
            for (const auto &name : kCommercial) {
                const auto &hist = runs.at(name + "/unbounded")
                                       .stmsInternal.streamLengths;
                row.push_back(
                    Table::pct(hist.cumulativeFraction(bucket), 0));
            }
            left.addRow(row);
        }
        out.addTable("Figure 6 (left): cumulative % of streamed "
                     "blocks by temporal-stream length\n(idealized "
                     "prefetcher, commercial workloads)",
                     std::move(left));

        std::vector<std::string> right_headers = headers;
        right_headers[0] = "depth";
        Table right(right_headers);
        for (std::uint64_t depth : kDepths) {
            std::vector<std::string> row;
            row.push_back(std::to_string(depth));
            for (const auto &name : kCommercial) {
                const double unbounded =
                    runs.at(name + "/unbounded").stmsCoverage;
                const double bounded =
                    runs.at(name + "/depth" + std::to_string(depth))
                        .stmsCoverage;
                const double loss = unbounded - bounded;
                row.push_back(Table::pct(loss, 0));
                out.addMetric("loss.depth" + std::to_string(depth) +
                                  "." + name,
                              loss);
            }
            right.addRow(row);
        }
        out.addTable("Figure 6 (right): coverage LOSS vs fixed "
                     "prefetch depth (vs unbounded)",
                     std::move(right));
        out.addNote("Shape check: half the streamed blocks come from "
                    "streams >10 long; restricting\ndepth to the 3-6 "
                    "of single-table designs forfeits a large "
                    "coverage slice (Sec. 5.4).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig6Lookup()
{
    return std::make_unique<Fig6Lookup>();
}

} // namespace stms::driver
