/**
 * @file
 * Experiment "perf_suite" — the simulator's own throughput, tracked
 * as a first-class, regression-gated metric.
 *
 * Runs a pinned sweep (the fig7 plan — the full standard suite at
 * both index-update samplings, functional mode) through the run
 * scheduler in two schedules:
 *
 *   serial     --threads 1, no pipeline — the reference schedule
 *              every determinism gate is defined against;
 *   pipelined  --pipeline with a small worker pool — trace
 *              generation overlapping simulation over bounded
 *              queues.
 *
 * and reports records/sec, per-stage wall time, and peak RSS for
 * each. Like index_contention, this is a measurement harness: plan()
 * is empty and the work happens in report() on real host threads.
 *
 * Determinism is gated where the numbers are made: the encoded
 * RunOutput scalars of every run must be bit-identical across the
 * two schedules (asserted in-binary), and the digest over them is
 * reported as model_digest_hi/lo so CI can compare across
 * invocations. Only the *_s / *_per_sec / *_kb / *_ratio timing
 * metrics vary run to run; gates exclude them (docs/PERF.md).
 */

#include <algorithm>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "driver/experiments/builtins.hh"
#include "driver/registry.hh"
#include "driver/runner.hh"
#include "results/run_codec.hh"

namespace stms::driver
{
namespace
{

/** Adapter handing a prebuilt plan to an ExperimentRunner. */
class PinnedSweep final : public ExperimentBase
{
  public:
    PinnedSweep(std::string name, std::vector<RunSpec> plan)
        : ExperimentBase(std::move(name), "perf_suite pinned sweep"),
          plan_(std::move(plan))
    {}

    std::vector<RunSpec>
    plan(const Options &) const override
    {
        return plan_;
    }

    Report
    report(const Options &, const RunSet &) const override
    {
        return Report(name());  // The harness reads outputs directly.
    }

  private:
    std::vector<RunSpec> plan_;
};

/** FNV-1a over the canonically encoded scalars of every run, in plan
 *  order — one number that changes iff any model output changes. */
std::uint64_t
modelDigest(const std::vector<RunSpec> &plan, const RunSet &runs)
{
    std::uint64_t digest = kFnv1aOffset;
    for (const RunSpec &spec : plan) {
        digest = fnv1a64(spec.id.data(), spec.id.size(), digest);
        for (const auto &[name, value] :
             results::encodeRunOutput(runs.at(spec.id))) {
            digest = fnv1a64(name.data(), name.size(), digest);
            static_assert(sizeof(double) == sizeof(std::uint64_t));
            char bits[sizeof(double)];
            __builtin_memcpy(bits, &value, sizeof(bits));
            digest = fnv1a64(bits, sizeof(bits), digest);
        }
    }
    return digest;
}

/** One schedule's measurement. */
struct ModeResult
{
    ExecStats stats;
    std::uint64_t digest = 0;
    std::uint64_t peakRssKb = 0;
    /** Whether the kernel watermark was reset before this mode ran —
     *  when true, peakRssKb is this schedule's own high-water mark,
     *  not the process-lifetime one. */
    bool rssIsolated = false;
};

class PerfSuite final : public ExperimentBase
{
  public:
    PerfSuite()
        : ExperimentBase("perf_suite",
                         "simulator throughput on a pinned sweep: "
                         "records/sec + stage timings, serial vs "
                         "pipelined (determinism-gated)")
    {}

    std::vector<RunSpec>
    plan(const Options &) const override
    {
        // A host-side measurement harness (like index_contention):
        // the sweeps run inside report() with their own runners.
        return {};
    }

    Report
    report(const Options &options, const RunSet &) const override
    {
        const Experiment *fig7 =
            ExperimentRegistry::global().find("fig7");
        stms_assert(fig7 != nullptr,
                    "perf_suite needs the fig7 experiment");

        // Pin the sweep: fig7's plan at 64Ki records/core unless the
        // caller overrides. The pinned defaults are what BENCH_*.json
        // trajectories compare across commits (docs/PERF.md).
        Options sweep_options = options;
        if (!sweep_options.has("records"))
            sweep_options.set("records", "65536");
        const std::uint32_t pipeline_threads = static_cast<
            std::uint32_t>(options.getUint("threads", 2));

        const std::vector<RunSpec> plan = fig7->plan(sweep_options);
        std::uint64_t plan_records = 0;
        PinnedSweep sweep("perf_sweep", plan);

        auto runMode = [&](bool pipelined) {
            // A fresh cache per mode: generation cost is part of the
            // measured pipeline (it is exactly what the pipelined
            // schedule overlaps with simulation).
            TraceCache cache;
            RunnerConfig config;
            config.threads = pipelined ? pipeline_threads : 1;
            config.pipeline = pipelined;
            config.pipelineChunkRecords =
                options.getUint("pipeline-chunk", 0);
            ExperimentRunner runner(cache, config);
            ModeResult result;
            // Isolate this schedule's RSS high-water mark so the
            // pipeline-vs-serial comparison is honest: without the
            // reset, whichever mode runs second inherits the first's
            // peak and the RSS gate (docs/PERF.md) measures nothing.
            result.rssIsolated = resetPeakRss();
            const RunSet runs =
                runner.execute(sweep, sweep_options, &result.stats);
            result.digest = modelDigest(plan, runs);
            result.peakRssKb = peakRssKb();
            return result;
        };

        const ModeResult serial = runMode(false);
        const ModeResult pipelined = runMode(true);
        plan_records = serial.stats.recordsProcessed;

        // The determinism gate, enforced where the numbers are made:
        // the pipelined schedule must reproduce the serial model
        // output bit for bit.
        stms_assert(pipelined.digest == serial.digest,
                    "pipelined sweep diverged from serial "
                    "(digest %016llx != %016llx)",
                    static_cast<unsigned long long>(pipelined.digest),
                    static_cast<unsigned long long>(serial.digest));
        stms_assert(pipelined.stats.recordsProcessed == plan_records,
                    "pipelined sweep processed a different record "
                    "count");

        Report out(name());

        // Model metrics (bit-identical across schedules; CI gates on
        // these). The 64-bit digest is split so each half is exact in
        // a double.
        out.addMetric("runs", static_cast<double>(plan.size()));
        out.addMetric("records", static_cast<double>(plan_records));
        out.addMetric("model_digest_hi",
                      static_cast<double>(serial.digest >> 32));
        out.addMetric("model_digest_lo",
                      static_cast<double>(serial.digest &
                                          0xffffffffULL));

        // Timing metrics (wall-clock noise; excluded from gates).
        Table table({"schedule", "threads", "records/s", "wall s",
                     "acquire s", "simulate s", "encode s",
                     "peak RSS MB"});
        auto addMode = [&](const char *mode, const ModeResult &r) {
            const ExecStats &s = r.stats;
            const std::string prefix = mode;
            out.addMetric(prefix + ".records_per_sec",
                          s.recordsPerSecond());
            out.addMetric(prefix + ".wall_s", s.wallSeconds);
            out.addMetric(prefix + ".acquire_s", s.acquireSeconds);
            out.addMetric(prefix + ".simulate_s", s.simulateSeconds);
            out.addMetric(prefix + ".encode_s", s.encodeSeconds);
            out.addMetric(prefix + ".peak_rss_kb",
                          static_cast<double>(r.peakRssKb));
            table.addRow(
                {mode, std::to_string(s.threadsResolved),
                 Table::num(s.recordsPerSecond()),
                 Table::num(s.wallSeconds),
                 Table::num(s.acquireSeconds),
                 Table::num(s.simulateSeconds),
                 Table::num(s.encodeSeconds),
                 Table::num(static_cast<double>(r.peakRssKb) /
                            1024.0)});
        };
        addMode("serial", serial);
        addMode("pipeline", pipelined);
        // "_ratio" marks these as timing-derived (excluded from
        // determinism gates alongside _s / _per_sec / _kb / _chunks).
        out.addMetric("pipeline_speedup_ratio",
                      pipelined.stats.recordsPerSecond() /
                          std::max(serial.stats.recordsPerSecond(),
                                   1e-9));
        out.addMetric(
            "pipeline_rss_ratio",
            static_cast<double>(pipelined.peakRssKb) /
                std::max(static_cast<double>(serial.peakRssKb), 1.0));

        // Chunked-pipeline residency telemetry. The chunk count is
        // scheduling-dependent (it varies with thread interleaving),
        // so the "_chunks" suffix keeps it out of determinism gates.
        out.addMetric("pipeline.chunk_records_chunks",
                      static_cast<double>(
                          pipelined.stats.chunkRecords));
        out.addMetric("pipeline.peak_resident_chunks",
                      static_cast<double>(
                          pipelined.stats.peakResidentChunks));

        out.addTable("perf_suite: pinned fig7 sweep, serial vs "
                     "pipelined schedule",
                     std::move(table));
        out.addNote(
            "Shape check: model_digest_* is bit-identical across "
            "schedules (asserted in-binary);\nonly the *_s / "
            "*_per_sec / *_kb / *_ratio / *_chunks timing metrics "
            "may differ between runs.");
        const bool rss_isolated =
            serial.rssIsolated && pipelined.rssIsolated;
        // Environment fact, not model output ("_ratio" excludes it
        // from gates): tools/bench_report.py only enforces the RSS
        // gate when the per-schedule watermark reset worked.
        out.addMetric("rss_isolated_ratio", rss_isolated ? 1.0 : 0.0);
        out.addNote(
            rss_isolated
                ? "Peak RSS is per-schedule (kernel watermark reset "
                  "between modes via clear_refs)."
                : "Peak RSS watermark reset unavailable: each value "
                  "is the process high-water mark,\nso the second "
                  "schedule's value includes the first's.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makePerfSuite()
{
    return std::make_unique<PerfSuite>();
}

} // namespace stms::driver
