/**
 * @file
 * Experiment "fig1-storage" — correlation-table entries required for
 * a given coverage in commercial server workloads. An idealized
 * (zero-latency, on-chip) prefetcher is swept over bounded
 * index-table sizes. Paper shape: coverage keeps growing past 10^6
 * entries (~64MB at the paper's packing — impractical on chip, the
 * whole motivation for off-chip meta-data).
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kCommercial = {
    "web-apache", "web-zeus", "oltp-db2", "oltp-oracle"};

const std::vector<std::uint64_t> kEntryCounts = {
    1ULL << 14, 1ULL << 15, 1ULL << 16, 1ULL << 17, 1ULL << 18,
    1ULL << 19, 1ULL << 20, 1ULL << 21};

StmsConfig
boundedIdealConfig(std::uint64_t entries)
{
    StmsConfig config = makeIdealTmsConfig();
    // Bounded index, everything else idealized.
    config.indexBytes =
        divCeil(entries, config.entriesPerBucket) * kBlockBytes;
    return config;
}

class Fig1Storage final : public ExperimentBase
{
  public:
    Fig1Storage()
        : ExperimentBase("fig1-storage",
                         "coverage vs correlation-table entries "
                         "(idealized lookup, commercial workloads)")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (std::uint64_t entries : kEntryCounts) {
            for (const auto &name : kCommercial) {
                RunSpec spec;
                spec.id = std::to_string(entries) + "/" + name;
                spec.workload = name;
                spec.records = records;
                spec.config.sim = defaultSimConfig(true);
                spec.config.stms = boundedIdealConfig(entries);
                specs.push_back(spec);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table(
            {"entries", "bytes", "mean-coverage", "per-workload"});
        for (std::uint64_t entries : kEntryCounts) {
            double sum = 0.0;
            std::string detail;
            for (const auto &name : kCommercial) {
                const RunOutput &run =
                    runs.at(std::to_string(entries) + "/" + name);
                sum += run.stmsCoverage;
                detail += Table::pct(run.stmsCoverage, 0) + " ";
            }
            const double mean =
                sum / static_cast<double>(kCommercial.size());
            table.addRow(
                {std::to_string(entries),
                 formatSize(boundedIdealConfig(entries).indexBytes),
                 Table::pct(mean), detail});
            out.addMetric("coverage." + std::to_string(entries), mean);
        }
        out.addTable("Figure 1 (left): coverage vs correlation-table "
                     "entries\n(idealized lookup, commercial "
                     "workloads: apache zeus oltp-db2 oltp-oracle)",
                     std::move(table));
        out.addNote("Shape check: coverage should rise smoothly and "
                    "only saturate at >10^6-entry\ntables, which is "
                    "megabytes of storage -- impractical on chip "
                    "(Sec. 3).");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeFig1Storage()
{
    return std::make_unique<Fig1Storage>();
}

} // namespace stms::driver
