/**
 * @file
 * Experiment "ablate-bucket" — index-table bucket organization
 * (Sec. 5.4). The paper packs 12 {address, pointer} pairs into one
 * 64-byte bucket so a lookup costs exactly one memory access, relying
 * on in-bucket LRU to retain useful pointers. Sweeps entries-per-
 * bucket at fixed table size: fewer entries per bucket means more
 * buckets but less associativity (more conflict churn); more would
 * not fit a block.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kWorkloads = {"web-apache", "oltp-db2"};
const std::vector<std::uint32_t> kEntries = {1, 2, 4, 8, 12};
const std::vector<std::uint64_t> kSizes = {512ULL << 10, 2ULL << 20,
                                           8ULL << 20};

std::string
pointId(const std::string &workload, std::uint64_t size,
        std::uint32_t epb)
{
    return workload + "/" + std::to_string(size) + "/" +
           std::to_string(epb);
}

class AblateBucket final : public ExperimentBase
{
  public:
    AblateBucket()
        : ExperimentBase("ablate-bucket",
                         "entries per 64B index bucket vs coverage "
                         "at fixed table sizes")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 256 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &workload : kWorkloads) {
            for (std::uint64_t size : kSizes) {
                for (std::uint32_t epb : kEntries) {
                    RunSpec spec;
                    spec.id = pointId(workload, size, epb);
                    spec.workload = workload;
                    spec.records = records;
                    spec.config.sim = defaultSimConfig(true);
                    StmsConfig config = makeIdealTmsConfig();
                    config.indexBytes = size;
                    config.entriesPerBucket = epb;
                    spec.config.stms = config;
                    specs.push_back(spec);
                }
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"workload", "index-size", "entries/bucket",
                     "coverage", "index-hit-rate"});
        for (const auto &workload : kWorkloads) {
            for (std::uint64_t size : kSizes) {
                for (std::uint32_t epb : kEntries) {
                    const RunOutput &run =
                        runs.at(pointId(workload, size, epb));
                    const auto &idx = run.stmsInternal;
                    const double hit_rate =
                        idx.lookups == 0
                            ? 0.0
                            : static_cast<double>(idx.lookupHits) /
                                  static_cast<double>(idx.lookups);
                    table.addRow({workload, formatSize(size),
                                  std::to_string(epb),
                                  Table::pct(run.stmsCoverage),
                                  Table::pct(hit_rate)});
                    out.addMetric(pointId(workload, size, epb) +
                                      ".coverage",
                                  run.stmsCoverage);
                }
            }
        }
        out.addTable("Ablation: entries per 64B index bucket",
                     std::move(table));
        out.addNote("Shape check: low associativity (1-2 "
                    "entries/bucket) churns useful pointers\nat small "
                    "table sizes; 12/bucket recovers most of the loss "
                    "without extra accesses.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeAblateBucket()
{
    return std::make_unique<AblateBucket>();
}

} // namespace stms::driver
