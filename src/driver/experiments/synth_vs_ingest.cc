/**
 * @file
 * Experiment "synth_vs_ingest" — round-trip a synthetic workload
 * through each on-disk trace format and assert metric equality.
 *
 * plan() generates the workload's trace (deterministically, the same
 * bits the TraceCache serves), exports it to the native format and
 * to per-core ChampSim files in a scratch directory, and schedules
 * three otherwise-identical STMS runs: direct synthetic generation,
 * native ingestion, and ChampSim ingestion — the ingest runs
 * streaming from disk in bounded chunks. report() compares every
 * scalar the pipeline produces with exact (bit-identical) equality
 * and publishes the mismatch count as the `mismatches` metric, which
 * tests and CI assert to be zero.
 *
 * Warmup is disabled for all three runs: a ChampSim source cannot
 * report its record count up front (docs/TRACE_FORMATS.md), so a
 * warmup barrier would desynchronize it from the other two.
 *
 * The ChampSim export encodes think time as filler instructions
 * (~70x record inflation), so the default trace is deliberately
 * short; scale `records=` consciously.
 */

#include "driver/experiments/builtins.hh"

#include <filesystem>

#include <unistd.h>

#include "common/log.hh"
#include "trace_io/champsim.hh"
#include "trace_io/native.hh"
#include "workload/generators.hh"
#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

/** The scalars compared across the three source paths. */
struct ScalarProbe
{
    const char *name;
    double (*get)(const RunOutput &);
};

double
trafficBytes(const RunOutput &out, TrafficClass cls)
{
    return static_cast<double>(out.sim.traffic.bytesFor(cls));
}

const ScalarProbe kProbes[] = {
    {"cycles",
     [](const RunOutput &o) {
         return static_cast<double>(o.sim.cycles);
     }},
    {"instructions",
     [](const RunOutput &o) {
         return static_cast<double>(o.sim.instructions);
     }},
    {"ipc", [](const RunOutput &o) { return o.sim.ipc; }},
    {"meanMlp", [](const RunOutput &o) { return o.sim.meanMlp; }},
    {"coverage", [](const RunOutput &o) { return o.stmsCoverage; }},
    {"coverage.full",
     [](const RunOutput &o) { return o.stmsFullCoverage; }},
    {"coverage.partial",
     [](const RunOutput &o) { return o.stmsPartialCoverage; }},
    {"stms.useful",
     [](const RunOutput &o) {
         return static_cast<double>(o.stms.useful);
     }},
    {"stms.partial",
     [](const RunOutput &o) {
         return static_cast<double>(o.stms.partial);
     }},
    {"stms.erroneous",
     [](const RunOutput &o) {
         return static_cast<double>(o.stms.erroneous);
     }},
    {"stride.useful",
     [](const RunOutput &o) {
         return static_cast<double>(o.stride.useful);
     }},
    {"stmsMetaBytes",
     [](const RunOutput &o) {
         return static_cast<double>(o.stmsMetaBytes);
     }},
    {"bytes.demandRead",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::DemandRead);
     }},
    {"bytes.demandWriteback",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::DemandWriteback);
     }},
    {"bytes.prefetch",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::Prefetch);
     }},
    {"bytes.metaLookup",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::MetaLookup);
     }},
    {"bytes.metaUpdate",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::MetaUpdate);
     }},
    {"bytes.metaRecord",
     [](const RunOutput &o) {
         return trafficBytes(o, TrafficClass::MetaRecord);
     }},
};

class SynthVsIngest final : public ExperimentBase
{
  public:
    SynthVsIngest()
        : ExperimentBase("synth_vs_ingest",
                         "round-trip a synthetic workload through "
                         "native + ChampSim files; assert equality")
    {}

    /** Scratch directory (per process: parallel ctest runs must not
     *  overwrite each other's exports mid-read). */
    static std::filesystem::path
    scratchDir()
    {
        return std::filesystem::temp_directory_path() /
               ("stms_synth_vs_ingest." + std::to_string(getpid()));
    }

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        // dss-db2 has the suite's lowest think times, keeping the
        // filler-inflated ChampSim export small by default.
        const std::string workload =
            options.get("workload", "dss-db2");
        if (!isKnownWorkload(workload))
            stms_fatal("synth_vs_ingest: unknown workload '%s'",
                       workload.c_str());
        const std::uint64_t records = plannedRecords(options, 1024);
        const std::uint64_t chunk = options.getUint(
            "chunk", trace_io::kDefaultChunkRecords);

        // Export the trace the direct run will also use. Generation
        // is deterministic, so this is bit-identical to what the
        // TraceCache hands the "direct" run.
        WorkloadGenerator generator(makeWorkload(workload, records));
        const Trace trace = generator.generate();

        std::error_code ec;
        const std::filesystem::path dir = scratchDir();
        std::filesystem::create_directories(dir, ec);
        const std::string base =
            (dir / (workload + "-" + std::to_string(records)))
                .string();
        const std::string native_path = base + ".stms";
        if (!trace_io::save(trace, native_path))
            stms_fatal("synth_vs_ingest: cannot write '%s'",
                       native_path.c_str());
        const std::vector<std::string> champsim_paths =
            trace_io::writeChampSim(trace, base + ".champsim");
        if (champsim_paths.empty())
            stms_fatal("synth_vs_ingest: cannot write ChampSim "
                       "export under '%s'",
                       base.c_str());

        auto make_spec = [&](const char *id) {
            RunSpec spec;
            spec.id = id;
            spec.workload = workload;
            spec.records = records;
            spec.config.sim = defaultSimConfig(false);
            spec.config.stms.emplace();
            // No warmup barrier: see file comment.
            spec.config.warmupFraction = 0.0;
            return spec;
        };

        std::vector<RunSpec> specs;
        specs.push_back(make_spec("direct"));

        RunSpec native = make_spec("native");
        native.ingest.emplace();
        native.ingest->chunkRecords = chunk;
        native.ingest->inputs.push_back(
            {native_path, trace_io::TraceFormat::Native});
        specs.push_back(std::move(native));

        RunSpec champsim = make_spec("champsim");
        champsim.ingest.emplace();
        champsim.ingest->chunkRecords = chunk;
        for (const std::string &path : champsim_paths) {
            champsim.ingest->inputs.push_back(
                {path, trace_io::TraceFormat::ChampSim});
        }
        specs.push_back(std::move(champsim));
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        const RunOutput &direct = runs.at("direct");
        const RunOutput &native = runs.at("native");
        const RunOutput &champsim = runs.at("champsim");

        Report out(name());
        Table table(
            {"metric", "direct", "native", "champsim", "match"});
        std::uint64_t mismatches = 0;
        for (const ScalarProbe &probe : kProbes) {
            const double d = probe.get(direct);
            const double n = probe.get(native);
            const double c = probe.get(champsim);
            const bool match = d == n && d == c;
            mismatches += match ? 0 : 1;
            table.addRow({probe.name, Table::num(d, 6),
                          Table::num(n, 6), Table::num(c, 6),
                          match ? "yes" : "NO"});
        }
        out.addTable("Synthetic generation vs round-tripped "
                     "ingestion (exact equality)",
                     std::move(table));
        out.addMetric("compared",
                      static_cast<double>(std::size(kProbes)));
        out.addMetric("mismatches",
                      static_cast<double>(mismatches));
        out.addNote(mismatches == 0
                        ? "All scalars bit-identical across direct, "
                          "native, and ChampSim paths."
                        : "MISMATCH: ingestion is not metric-"
                          "equivalent to direct generation.");

        // Best-effort scratch cleanup; a replan recreates the files.
        std::error_code ec;
        std::filesystem::remove_all(scratchDir(), ec);
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeSynthVsIngest()
{
    return std::make_unique<SynthVsIngest>();
}

} // namespace stms::driver
