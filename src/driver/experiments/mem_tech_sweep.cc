/**
 * @file
 * Experiment "mem_tech_sweep" — does the paper's verdict on STMS
 * survive a change of memory technology?
 *
 * Re-runs the coverage/traffic comparison under full timing against
 * each memory backend (fixed-latency, multi-channel queued, DRAM
 * bank/row timing) and reports per-backend coverage, speedup, and
 * traffic overhead plus the deltas against the paper's fixed-latency
 * model. For the DRAM backend it also splits row-buffer hit rates by
 * stream: the predictor's meta-data traffic (sequential history-
 * buffer appends and reads) is far more row-friendly than the demand
 * miss stream, which is the mechanism that keeps meta-data overhead
 * affordable on a real memory system.
 *
 * Every run pins its backend (backendPinned), so a global
 * --mem-backend override cannot collapse the sweep onto one model.
 */

#include "driver/experiments/builtins.hh"

#include "workload/workloads.hh"

namespace stms::driver
{
namespace
{

const std::vector<std::string> kWorkloads = {
    "web-apache", "oltp-db2", "sci-em3d", "sci-ocean"};

struct BackendArm
{
    const char *name;
    MemBackendKind kind;
};

const BackendArm kBackends[] = {
    {"fixed", MemBackendKind::Fixed},
    {"queued", MemBackendKind::Queued},
    {"dram", MemBackendKind::Dram},
};

class MemTechSweep final : public ExperimentBase
{
  public:
    MemTechSweep()
        : ExperimentBase("mem_tech_sweep",
                         "STMS coverage/speedup across fixed, queued, "
                         "and DRAM memory backends")
    {}

    std::vector<RunSpec>
    plan(const Options &options) const override
    {
        const std::uint64_t records =
            plannedRecords(options, 128 * 1024);
        std::vector<RunSpec> specs;
        for (const auto &workload : kWorkloads) {
            for (const BackendArm &backend : kBackends) {
                RunSpec base;
                base.id = workload + "/" + backend.name + "/base";
                base.workload = workload;
                base.records = records;
                base.config.sim = defaultSimConfig();
                base.config.sim.memory.backend.kind = backend.kind;
                base.config.sim.memory.backendPinned = true;
                specs.push_back(base);

                RunSpec stms = base;
                stms.id = workload + "/" + backend.name + "/stms";
                stms.config.stms =
                    StmsConfig{};  // Off-chip, 12.5% sampling.
                specs.push_back(stms);
            }
        }
        return specs;
    }

    Report
    report(const Options &, const RunSet &runs) const override
    {
        Report out(name());
        Table table({"workload", "backend", "ipc", "speedup",
                     "coverage", "overhead/byte", "mem-util",
                     "row-hit demand", "row-hit meta"});
        for (const auto &workload : kWorkloads) {
            double fixed_speedup = 0.0;
            double fixed_coverage = 0.0;
            for (const BackendArm &backend : kBackends) {
                const std::string prefix =
                    workload + "/" + backend.name;
                const RunOutput &base = runs.at(prefix + "/base");
                const RunOutput &run = runs.at(prefix + "/stms");
                const double gain = speedup(base.sim, run.sim);
                const RowBufferStats &row = run.sim.rowBuffer;
                const bool has_rows = row.totalAccesses() != 0;

                table.addRow(
                    {workload, backend.name,
                     Table::num(run.sim.ipc, 3), Table::pct(gain),
                     Table::pct(run.stmsCoverage),
                     Table::num(run.sim.overheadPerDataByte, 3),
                     Table::pct(run.sim.memUtilization),
                     has_rows ? Table::pct(row.demandHitRate()) : "-",
                     has_rows ? Table::pct(row.metaHitRate()) : "-"});

                const std::string key =
                    workload + "." + backend.name;
                out.addMetric(key + ".speedup", gain);
                out.addMetric(key + ".coverage", run.stmsCoverage);
                out.addMetric(key + ".overhead_per_byte",
                              run.sim.overheadPerDataByte);
                out.addMetric(key + ".mem_utilization",
                              run.sim.memUtilization);
                if (has_rows) {
                    out.addMetric(key + ".row_hit_demand",
                                  row.demandHitRate());
                    out.addMetric(key + ".row_hit_meta",
                                  row.metaHitRate());
                }

                if (backend.kind == MemBackendKind::Fixed) {
                    fixed_speedup = gain;
                    fixed_coverage = run.stmsCoverage;
                } else {
                    out.addMetric(key + ".speedup_delta",
                                  gain - fixed_speedup);
                    out.addMetric(key + ".coverage_delta",
                                  run.stmsCoverage - fixed_coverage);
                }
            }
        }
        out.addTable("STMS benefit across memory technologies "
                     "(fig7-style sweep, full timing)",
                     std::move(table));
        out.addNote(
            "Shape check: fixed and queued agree on coverage and "
            "speedup (queued only\nrelieves bus contention — watch "
            "mem-util halve); the DRAM backend is the\nstressful "
            "one, since meta-data traffic now pays real bank and row "
            "timing.\nThe meta row-hit rate blends sequential "
            "history-buffer appends (row-\nfriendly) with scattered "
            "index probes, so it can land either side of the\ndemand "
            "stream's depending on the workload's own locality.");
        return out;
    }
};

} // namespace

std::unique_ptr<Experiment>
makeMemTechSweep()
{
    return std::make_unique<MemTechSweep>();
}

} // namespace stms::driver
