/** @file The unified experiment driver binary. */

#include "driver/cli.hh"

int
main(int argc, char **argv)
{
    return stms::driver::driverMain(argc, argv);
}
