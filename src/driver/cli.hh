/**
 * @file
 * The unified experiment CLI.
 *
 * One binary replaces the old per-bench mains:
 *
 *   driver --list
 *   driver --experiment fig7
 *   driver --experiment fig9 --threads 8 --json fig9.json
 *   driver --experiment all records=65536
 *
 * Flags select and steer the engine; bare key=value tokens (records,
 * sampling, ...) flow into the experiment's Options unchanged, the
 * same syntax the examples always used. The old bench binaries still
 * exist as two-line stubs calling experimentMain().
 */

#ifndef STMS_DRIVER_CLI_HH
#define STMS_DRIVER_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "telemetry/progress.hh"

namespace stms::driver
{

/** Parsed driver command line. */
struct DriverArgs
{
    std::vector<std::string> experiments;  ///< Names, or {"all"}.
    /** Worker threads; 0 = auto (hardware_concurrency). */
    std::uint32_t threads = 1;
    /** Stage-pipelined scheduling (acquire ahead of simulate). */
    bool pipeline = false;
    /** Records per streamed pipeline chunk; 0 = the engine default
     *  (kDefaultPipelineChunkRecords). Residency/overlap knob only —
     *  model output is byte-identical for every value. */
    std::uint64_t pipelineChunk = 0;
    /** Attach wall-clock timing to reports (--no-timing disables,
     *  for byte-compare determinism gates). */
    bool timing = true;
    /** TraceCache capacity in MiB; kCacheUnset keeps the unbounded
     *  default, 0 disables caching. */
    static constexpr std::uint64_t kCacheUnset =
        ~static_cast<std::uint64_t>(0);
    std::uint64_t traceCacheMb = kCacheUnset;
    std::string jsonPath;  ///< Empty = no JSON; "-" = stdout.
    bool csv = false;      ///< Emit tables as CSV instead of aligned.
    bool list = false;
    bool help = false;
    /** Shorthand for --log-level debug (kept for compatibility; an
     *  explicit --log-level wins). */
    bool verbose = false;

    // Telemetry (docs/OBSERVABILITY.md). None of these can perturb
    // model output or fingerprints: traces/samples/progress are
    // observations of the execution, reported out of band.
    std::string traceOutPath;      ///< --trace-out FILE; empty = off.
    std::uint64_t sampleEvery = 0; ///< --sample-every N; 0 = off.
    /** --log-level parsed; kLogUnset = default (warn, or debug
     *  under --verbose). */
    static constexpr int kLogUnset = -1;
    int logLevel = kLogUnset;
    /** --progress / --no-progress (Auto = TTY detection). */
    telemetry::ProgressMode progress = telemetry::ProgressMode::Auto;

    // Result-store integration (see docs/RESULTS.md).
    std::string storePath;     ///< --store DIR; empty = no store.
    std::string baselinePath;  ///< --baseline PATH (results diff).
    bool rerun = false;        ///< --rerun: force duplicate appends.
    /** --shard i/n (1-based); shardCount == 0 = no sharding. */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0;
    /** --results subcommand ("list", "show", "diff", "gc"). */
    std::string resultsCmd;
    /** Bare operands of the --results subcommand (e.g. snapshot
     *  paths for diff, a fingerprint prefix for show). */
    std::vector<std::string> resultsArgs;

    Options options;       ///< key=value passthrough.
};

/**
 * Parse @p argv. On failure, fills @p error and returns false.
 */
bool parseDriverArgs(int argc, char **argv, DriverArgs &args,
                     std::string &error);

/** Full CLI entry point (the driver binary's main). */
int driverMain(int argc, char **argv);

/**
 * Run a single named experiment with a bench-stub command line
 * (flags + key=value, no --experiment). Exit code 0 on success.
 */
int experimentMain(const std::string &name, int argc, char **argv);

} // namespace stms::driver

#endif // STMS_DRIVER_CLI_HH
