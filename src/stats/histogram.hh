/**
 * @file
 * Histogram statistics.
 *
 * The evaluation needs two histogram shapes: linear-bucket histograms
 * (e.g., MLP distribution) and log2-bucket histograms (temporal-stream
 * length distribution for Fig. 6 left, reuse distances for Fig. 5).
 */

#ifndef STMS_STATS_HISTOGRAM_HH
#define STMS_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stms
{

/** Histogram with fixed-width linear buckets plus an overflow bucket. */
class LinearHistogram
{
  public:
    LinearHistogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void sample(std::uint64_t value, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketLow(std::size_t i) const { return i * width_; }

    /** Smallest value v such that >= fraction of samples are <= v. */
    std::uint64_t percentile(double fraction) const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Histogram with power-of-two buckets: bucket i holds values in
 * [2^i, 2^(i+1)), with bucket 0 holding {0, 1}.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(std::size_t num_buckets = 32);

    void sample(std::uint64_t value, std::uint64_t weight = 1);
    void reset();

    /**
     * Rebuild a histogram from serialized state (the result store
     * persists bucket counts + count + weighted sum so a resumed run
     * reproduces Fig. 6 CDFs bit-identically). @p buckets shorter
     * than numBuckets() leaves the tail zero; longer is fatal.
     */
    void restore(const std::vector<std::uint64_t> &buckets,
                 std::uint64_t count, double weighted_sum);

    std::uint64_t count() const { return count_; }
    double weightedSum() const { return sum_; }
    double mean() const;
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::uint64_t bucketLow(std::size_t i) const;

    /**
     * Cumulative fraction of samples with value <= the top of bucket i.
     * This is exactly the CDF the paper plots in Fig. 6 (left).
     */
    double cumulativeFraction(std::size_t i) const;

    std::string toString(const std::string &label) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace stms

#endif // STMS_STATS_HISTOGRAM_HH
