/**
 * @file
 * Plain-text table formatter used by the bench harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * as rows of text; this helper keeps the output aligned and can also
 * emit CSV for downstream plotting.
 */

#ifndef STMS_STATS_TABLE_HH
#define STMS_STATS_TABLE_HH

#include <string>
#include <vector>

namespace stms
{

/** Column-aligned text table with an optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p decimals places. */
    static std::string num(double value, int decimals = 2);

    /** Convenience: format a percentage ("42.0%"). */
    static std::string pct(double fraction, int decimals = 1);

    /** Render with aligned columns. */
    std::string toString() const;

    /** Render as CSV. */
    std::string toCsv() const;

    std::size_t numRows() const { return rows_.size(); }

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace stms

#endif // STMS_STATS_TABLE_HH
