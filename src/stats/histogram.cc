#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace stms
{

LinearHistogram::LinearHistogram(std::uint64_t bucket_width,
                                 std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets + 1, 0)
{
    stms_assert(bucket_width > 0, "LinearHistogram width must be nonzero");
    stms_assert(num_buckets > 0, "LinearHistogram needs buckets");
}

void
LinearHistogram::sample(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = static_cast<std::size_t>(value / width_);
    idx = std::min(idx, buckets_.size() - 1);
    buckets_[idx] += weight;
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

void
LinearHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

double
LinearHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t
LinearHistogram::percentile(double fraction) const
{
    if (count_ == 0)
        return 0;
    const double target = fraction * static_cast<double>(count_);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (static_cast<double>(running) >= target)
            return (i + 1) * width_ - 1;
    }
    return buckets_.size() * width_;
}

Log2Histogram::Log2Histogram(std::size_t num_buckets)
    : buckets_(num_buckets, 0)
{
    stms_assert(num_buckets >= 2, "Log2Histogram needs >= 2 buckets");
}

void
Log2Histogram::sample(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = value <= 1 ? 0 : floorLog2(value);
    idx = std::min(idx, buckets_.size() - 1);
    buckets_[idx] += weight;
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

void
Log2Histogram::restore(const std::vector<std::uint64_t> &buckets,
                       std::uint64_t count, double weighted_sum)
{
    stms_assert(buckets.size() <= buckets_.size(),
                "Log2Histogram restore exceeds bucket count");
    reset();
    std::copy(buckets.begin(), buckets.end(), buckets_.begin());
    count_ = count;
    sum_ = weighted_sum;
}

void
Log2Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

double
Log2Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t
Log2Histogram::bucketLow(std::size_t i) const
{
    return i == 0 ? 0 : (1ULL << i);
}

double
Log2Histogram::cumulativeFraction(std::size_t i) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t running = 0;
    for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b)
        running += buckets_[b];
    return static_cast<double>(running) / static_cast<double>(count_);
}

std::string
Log2Histogram::toString(const std::string &label) const
{
    std::string out = label + ":\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        char line[128];
        std::snprintf(line, sizeof(line), "  [%10llu, %10llu): %llu\n",
                      static_cast<unsigned long long>(bucketLow(i)),
                      static_cast<unsigned long long>(1ULL << (i + 1)),
                      static_cast<unsigned long long>(buckets_[i]));
        out += line;
    }
    return out;
}

} // namespace stms
