#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace stms
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    stms_assert(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    stms_assert(cells.size() == headers_.size(),
                "Table row arity %zu != header arity %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::string cell = row[c];
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < row.size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size())
            rule += "  ";
    }
    out += rule + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
Table::toCsv() const
{
    auto renderRow = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ",";
        }
        return line + "\n";
    };
    std::string out = renderRow(headers_);
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace stms
