/**
 * @file
 * Synthetic workload generator.
 *
 * Substitutes for the paper's proprietary commercial and scientific
 * traces (Table 1) by reproducing their published memory-access
 * statistics: the temporal-stream length distribution and recurrence
 * skew, the reuse-distance spectrum (Fig. 5), the fraction of
 * on-chip-hitting work (which bounds speedup, Sec. 5.2), the scan
 * component stride prefetchers absorb, and the dependence structure
 * that sets each workload's MLP (Table 2).
 *
 * Each record is drawn from a four-way access mix:
 *  - stream:  the next element of the core's current temporal stream,
 *             chosen Zipf-style from a per-core library (or played
 *             once and discarded in DSS visit-once mode);
 *  - noise:   a random cold block (non-repetitive working set);
 *  - hot:     a block from a small hot set that hits on chip;
 *  - scan:    the next sequential block (stride-prefetchable).
 */

#ifndef STMS_WORKLOAD_GENERATORS_HH
#define STMS_WORKLOAD_GENERATORS_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/stream_library.hh"
#include "workload/trace.hh"

namespace stms
{

/** Full parameterization of one synthetic workload. */
struct WorkloadSpec
{
    std::string name = "synthetic";
    std::uint32_t numCores = 4;
    std::uint64_t recordsPerCore = 512 * 1024;
    std::uint64_t seed = 1;

    // Temporal-stream structure (per-core, lazily created).
    std::uint32_t minStreamLen = 2;
    std::uint32_t maxStreamLen = 512;
    double lengthLogMean = 2.2;
    double lengthLogSigma = 1.1;
    /**
     * Mean playbacks per stream (geometric). Steady-state coverage is
     * bounded by (meanVisits-1)/meanVisits: first visits are cold.
     */
    double meanVisits = 6.0;
    /**
     * Reuse distances (in records) between a stream's recurrences are
     * log-uniform in [minReuseRecords, maxReuseRecords]. This spectrum
     * is what produces the smooth coverage-vs-history-size growth of
     * the paper's commercial workloads (Fig. 5 left); distances below
     * the L2 reach get filtered on chip, exactly as in real systems.
     * maxReuseRecords is clamped to half the trace length.
     */
    std::uint64_t minReuseRecords = 48 * 1024;
    std::uint64_t maxReuseRecords = 1280 * 1024;
    /**
     * Fraction of new streams that never recur (data visited once,
     * the DSS pattern of Sec. 5.2). 1 = nothing ever recurs.
     */
    double onceFraction = 0.0;
    /**
     * Scientific mode: one fixed-length stream (the computational
     * iteration) replayed back-to-back for the whole trace; length is
     * minStreamLen (== maxStreamLen). Sec. 5.4 gives the paper's
     * per-iteration lengths.
     */
    bool loopSingleStream = false;

    // Access mix (fractions of records; remainder goes to streams).
    double noiseFraction = 0.25;
    double hotFraction = 0.30;
    double scanFraction = 0.00;
    /** Distinct blocks in the cold noise region. */
    std::uint64_t noiseBlocks = 1ULL << 22;
    /** Distinct blocks in the hot (on-chip) region per core. */
    std::uint64_t hotBlocks = 2048;
    double writeFraction = 0.05;

    // Timing and MLP shaping.
    /** Probability a record depends on its predecessor's data. */
    double dependentProb = 0.6;
    std::uint32_t thinkMin = 20;
    std::uint32_t thinkMax = 120;
    /**
     * Miss burstiness: a stream access may be followed by up to this
     * many further stream accesses emitted back-to-back (tiny think,
     * independent), letting misses overlap in the core's window. This
     * is the main MLP lever (Table 2) beyond dependence flags.
     */
    std::uint32_t missBurstMax = 0;
};

/**
 * Resumable single-lane generator.
 *
 * Emits exactly the record sequence WorkloadGenerator::generate()
 * produces for one core, but in caller-sized slices, so the pipeline
 * can stream bounded chunks instead of materializing whole lanes.
 * The RNG-driven state machine (stream library, recurrence heap,
 * burst position) is suspended between fill() calls; slicing at any
 * boundary — including mid-burst — yields the same bytes as one
 * whole-lane fill. generateCore() delegates here, so the two paths
 * cannot drift.
 */
class LaneGenerator
{
  public:
    LaneGenerator(const WorkloadSpec &spec, CoreId core);
    ~LaneGenerator();
    LaneGenerator(LaneGenerator &&) noexcept;
    LaneGenerator &operator=(LaneGenerator &&) noexcept;

    /**
     * Append up to @p max_records further lane records to @p out.
     * @return the number appended; 0 once the lane is exhausted.
     */
    std::size_t fill(std::vector<TraceRecord> &out,
                     std::size_t max_records);

    /**
     * fill() into caller-owned storage of at least @p max_records
     * records — the allocator-agnostic form the chunk pipeline uses to
     * fill arena-backed chunk buffers. Same record sequence as the
     * vector overload.
     */
    std::size_t fill(TraceRecord *out, std::size_t max_records);

    /** All recordsPerCore records have been emitted. */
    bool done() const;

    /** Records emitted so far. */
    std::uint64_t emitted() const;

  private:
    struct State;
    std::unique_ptr<State> state_;
};

/** Deterministic trace synthesis from a WorkloadSpec. */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadSpec &spec);

    /** Generate the full multi-core trace (same spec => same trace). */
    Trace generate() const;

    const WorkloadSpec &spec() const { return spec_; }

  private:
    void generateCore(CoreId core,
                      std::vector<TraceRecord> &records) const;

    WorkloadSpec spec_;
};

} // namespace stms

#endif // STMS_WORKLOAD_GENERATORS_HH
