#include "workload/trace.hh"

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "common/log.hh"

namespace stms
{

std::uint64_t
Trace::totalRecords() const
{
    std::uint64_t total = 0;
    for (const auto &records : perCore)
        total += records.size();
    return total;
}

std::uint64_t
Trace::footprintBlocks() const
{
    std::unordered_set<Addr> blocks;
    for (const auto &records : perCore)
        for (const auto &record : records)
            blocks.insert(blockNumber(record.addr));
    return blocks.size();
}

namespace trace_io
{

namespace
{

constexpr std::uint32_t kMagic = 0x53544d54;  // "STMT"
constexpr std::uint32_t kVersion = 1;

struct FileHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t numCores;
    std::uint32_t nameLen;
};

} // namespace

bool
save(const Trace &trace, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;

    FileHeader header{kMagic, kVersion, trace.numCores(),
                      static_cast<std::uint32_t>(trace.name.size())};
    bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
    if (ok && header.nameLen > 0) {
        ok = std::fwrite(trace.name.data(), 1, header.nameLen, file) ==
             header.nameLen;
    }
    for (const auto &records : trace.perCore) {
        if (!ok)
            break;
        const std::uint64_t count = records.size();
        ok = std::fwrite(&count, sizeof(count), 1, file) == 1;
        if (ok && count > 0) {
            ok = std::fwrite(records.data(), sizeof(TraceRecord),
                             records.size(), file) == records.size();
        }
    }
    std::fclose(file);
    return ok;
}

bool
load(Trace &trace, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;

    FileHeader header{};
    bool ok = std::fread(&header, sizeof(header), 1, file) == 1 &&
              header.magic == kMagic && header.version == kVersion &&
              header.numCores <= 1024 && header.nameLen <= 4096;
    if (ok) {
        trace.name.resize(header.nameLen);
        if (header.nameLen > 0) {
            ok = std::fread(trace.name.data(), 1, header.nameLen, file) ==
                 header.nameLen;
        }
    }
    if (ok) {
        trace.perCore.assign(header.numCores, {});
        for (auto &records : trace.perCore) {
            std::uint64_t count = 0;
            ok = std::fread(&count, sizeof(count), 1, file) == 1 &&
                 count <= (1ULL << 32);
            if (!ok)
                break;
            records.resize(count);
            if (count > 0) {
                ok = std::fread(records.data(), sizeof(TraceRecord),
                                records.size(), file) == records.size();
                if (!ok)
                    break;
            }
        }
    }
    std::fclose(file);
    if (!ok)
        trace = Trace{};
    return ok;
}

} // namespace trace_io

} // namespace stms
