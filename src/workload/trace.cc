#include "workload/trace.hh"

#include <unordered_set>

namespace stms
{

std::uint64_t
Trace::totalRecords() const
{
    std::uint64_t total = 0;
    for (const auto &records : perCore)
        total += records.size();
    return total;
}

std::uint64_t
Trace::footprintBlocks() const
{
    std::unordered_set<Addr> blocks;
    for (const auto &records : perCore)
        for (const auto &record : records)
            blocks.insert(blockNumber(record.addr));
    return blocks.size();
}

} // namespace stms
