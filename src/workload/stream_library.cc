#include "workload/stream_library.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace stms
{

namespace
{

/** One standard-normal draw via Box-Muller (uses two uniforms). */
double
normalDraw(Rng &rng)
{
    double u1 = rng.uniform();
    if (u1 <= 0.0)
        u1 = 1e-12;
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

std::uint32_t
StreamLibrary::sampleLength(const LibraryConfig &config, Rng &rng)
{
    const double draw = std::exp(config.lengthLogMean +
                                 config.lengthLogSigma * normalDraw(rng));
    const auto length = static_cast<std::uint32_t>(std::lround(draw));
    return std::clamp(length, config.minLength, config.maxLength);
}

StreamLibrary::StreamLibrary(const LibraryConfig &config, Rng &rng)
{
    stms_assert(config.numStreams > 0, "library needs streams");
    stms_assert(config.minLength >= 2 &&
                config.minLength <= config.maxLength,
                "bad stream length bounds [%u, %u]",
                config.minLength, config.maxLength);

    streams_.reserve(config.numStreams);
    Addr next_block = blockNumber(config.baseAddr);
    for (std::uint64_t s = 0; s < config.numStreams; ++s) {
        const std::uint32_t length = sampleLength(config, rng);
        std::vector<Addr> body(length);
        for (std::uint32_t i = 0; i < length; ++i)
            body[i] = blockAddress(next_block + i);
        // Fisher-Yates shuffle: kill any arithmetic stride within the
        // stream so only address correlation can predict it.
        for (std::uint32_t i = length - 1; i > 0; --i) {
            const auto j =
                static_cast<std::uint32_t>(rng.below(i + 1));
            std::swap(body[i], body[j]);
        }
        next_block += length;
        totalBlocks_ += length;
        streams_.push_back(std::move(body));
    }
}

} // namespace stms
