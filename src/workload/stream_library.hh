/**
 * @file
 * Temporal-stream library.
 *
 * A library is a fixed set of temporal streams — sequences of block
 * addresses that recur over a workload's execution (Sec. 2, citing
 * Chilimbi & Hirzel). Stream lengths are drawn from a clipped
 * lognormal, matching the paper's observation that lengths vary
 * drastically, from two to hundreds of misses, with half of all
 * streamed blocks coming from streams longer than ten (Fig. 6 left).
 *
 * Stream bodies are shuffled permutations of disjoint address ranges:
 * within a stream, consecutive addresses have no arithmetic
 * relationship, so stride prefetchers cannot learn them while
 * address-correlating prefetchers can — precisely the pointer-chasing
 * structure of commercial workloads the paper targets.
 */

#ifndef STMS_WORKLOAD_STREAM_LIBRARY_HH
#define STMS_WORKLOAD_STREAM_LIBRARY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace stms
{

/** Stream-library shape parameters. */
struct LibraryConfig
{
    std::uint64_t numStreams = 4096;
    std::uint32_t minLength = 2;
    std::uint32_t maxLength = 512;
    /** ln of the median stream length. */
    double lengthLogMean = 2.2;
    /** Lognormal shape (spread across orders of magnitude). */
    double lengthLogSigma = 1.1;
    /** Base byte address of the library's block range. */
    Addr baseAddr = 0;
};

/** An immutable set of temporal streams over disjoint addresses. */
class StreamLibrary
{
  public:
    StreamLibrary(const LibraryConfig &config, Rng &rng);

    std::size_t numStreams() const { return streams_.size(); }

    std::span<const Addr> stream(std::size_t i) const
    {
        return streams_[i];
    }

    std::uint32_t length(std::size_t i) const
    {
        return static_cast<std::uint32_t>(streams_[i].size());
    }

    /** Total distinct blocks across all streams. */
    std::uint64_t totalBlocks() const { return totalBlocks_; }

    /** Sample a stream length from the configured distribution. */
    static std::uint32_t sampleLength(const LibraryConfig &config,
                                      Rng &rng);

  private:
    std::vector<std::vector<Addr>> streams_;
    std::uint64_t totalBlocks_ = 0;
};

} // namespace stms

#endif // STMS_WORKLOAD_STREAM_LIBRARY_HH
