#include "workload/generators.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.hh"

namespace stms
{

namespace
{

/** Per-core address-region tags (bits 36..39 select the region). */
constexpr Addr
regionBase(CoreId core, std::uint64_t region)
{
    return (static_cast<Addr>(core + 1) << 40) | (region << 36);
}

constexpr std::uint64_t kStreamRegion = 1;
constexpr std::uint64_t kNoiseRegion = 2;
constexpr std::uint64_t kHotRegion = 3;
constexpr std::uint64_t kScanRegion = 4;

/** Log-uniform draw in [lo, hi]. */
std::uint64_t
logUniform(Rng &rng, std::uint64_t lo, std::uint64_t hi)
{
    if (lo >= hi)
        return lo;
    const double log_lo = std::log(static_cast<double>(lo));
    const double log_hi = std::log(static_cast<double>(hi));
    const double draw = std::exp(log_lo + rng.uniform() *
                                 (log_hi - log_lo));
    return static_cast<std::uint64_t>(draw);
}

} // namespace

/**
 * The suspended per-lane state machine.
 *
 * This is the old generateCore() loop unrolled into an object: every
 * lambda capture became a field, the implicit "inside the burst
 * for-loop" position became burstLeft_, and the records.size() the
 * loop consulted became emitted_. The RNG call order per emitted
 * record is identical to the original loop — that order *is* the
 * trace bytes, and every committed baseline depends on it.
 */
struct LaneGenerator::State
{
    State(const WorkloadSpec &spec_in, CoreId core_in)
        : spec(spec_in), core(core_in),
          rng(spec.seed * 0x9e3779b9ULL + core * 0x85ebca6bULL + 1),
          maxReuse(std::min(
              spec.maxReuseRecords,
              std::max<std::uint64_t>(spec.recordsPerCore / 2, 2))),
          minReuse(std::min(spec.minReuseRecords, maxReuse)),
          lengthConfig{1, spec.minStreamLen, spec.maxStreamLen,
                       spec.lengthLogMean, spec.lengthLogSigma, 0},
          streamNext(blockNumber(regionBase(core, kStreamRegion))),
          scanNext(blockNumber(regionBase(core, kScanRegion))),
          pNoise(spec.noiseFraction),
          pHot(pNoise + spec.hotFraction),
          pScan(pHot + spec.scanFraction)
    {
    }

    struct LiveStream
    {
        std::vector<Addr> body;
        std::uint32_t visitsLeft;
    };

    std::uint32_t
    makeStream()
    {
        const std::uint32_t length =
            spec.loopSingleStream
                ? spec.minStreamLen
                : StreamLibrary::sampleLength(lengthConfig, rng);
        LiveStream stream;
        stream.body.resize(length);
        for (std::uint32_t i = 0; i < length; ++i)
            stream.body[i] = blockAddress(streamNext + i);
        for (std::uint32_t i = length - 1; i > 0; --i) {
            const auto j =
                static_cast<std::uint32_t>(rng.below(i + 1));
            std::swap(stream.body[i], stream.body[j]);
        }
        streamNext += length;
        if (rng.chance(spec.onceFraction)) {
            stream.visitsLeft = 0;  // Visited once, never again.
        } else {
            // Geometric total-visit count with the configured mean.
            stream.visitsLeft = static_cast<std::uint32_t>(
                rng.geometric(1.0 / spec.meanVisits));
        }
        streams.push_back(std::move(stream));
        return static_cast<std::uint32_t>(streams.size() - 1);
    }

    Addr
    nextStreamAddr(std::uint64_t idx)
    {
        if (spec.loopSingleStream) {
            if (current < 0)
                current = makeStream();
            auto &body =
                streams[static_cast<std::size_t>(current)].body;
            if (position >= body.size())
                position = 0;  // Next iteration of the computation.
            return body[position++];
        }

        if (current >= 0 &&
            position <
                streams[static_cast<std::size_t>(current)]
                    .body.size()) {
            return streams[static_cast<std::size_t>(current)]
                .body[position++];
        }

        // Current playback exhausted: prefer a due recurrence, else
        // mint fresh data.
        if (!pending.empty() && pending.top().first <= idx) {
            current = pending.top().second;
            pending.pop();
        } else {
            current = makeStream();
        }
        auto &stream = streams[static_cast<std::size_t>(current)];
        if (stream.visitsLeft > 0) {
            --stream.visitsLeft;
            pending.emplace(idx + logUniform(rng, minReuse, maxReuse),
                            static_cast<std::uint32_t>(current));
        }
        position = 0;
        return stream.body[position++];
    }

    TraceRecord
    finishRecord(Addr addr, std::uint16_t think, bool dependent)
    {
        TraceRecord record;
        record.addr = addr;
        record.think = think;
        std::uint8_t flags = 0;
        if (rng.chance(spec.writeFraction))
            flags |= TraceRecord::kWrite;
        if (dependent)
            flags |= TraceRecord::kDependent;
        record.flags = flags;
        return record;
    }

    bool
    next(TraceRecord &out)
    {
        if (emitted >= spec.recordsPerCore)
            return false;

        if (burstLeft > 0) {
            // Burst continuation: further stream accesses issue
            // back-to-back and independently. The original loop
            // passed both draws as arguments of one call; the
            // compiler evaluated the think draw before the stream
            // address, and that order is load-bearing.
            --burstLeft;
            const auto think =
                static_cast<std::uint16_t>(rng.range(2, 10));
            const Addr addr = nextStreamAddr(emitted);
            out = finishRecord(addr, think, false);
            ++emitted;
            return true;
        }

        const double roll = rng.uniform();
        const auto think = static_cast<std::uint16_t>(
            rng.range(spec.thinkMin, spec.thinkMax));
        const bool dependent = rng.chance(spec.dependentProb);

        if (roll < pNoise) {
            out = finishRecord(
                regionBase(core, kNoiseRegion) +
                    blockAddress(rng.below(spec.noiseBlocks)),
                think, dependent);
        } else if (roll < pHot) {
            out = finishRecord(
                regionBase(core, kHotRegion) +
                    blockAddress(rng.below(spec.hotBlocks)),
                think, dependent);
        } else if (roll < pScan) {
            out = finishRecord(blockAddress(scanNext++), think,
                               dependent);
        } else {
            out = finishRecord(nextStreamAddr(emitted), think,
                               dependent);
            if (spec.missBurstMax > 0) {
                burstLeft = rng.below(spec.missBurstMax + 1);
            }
        }
        ++emitted;
        return true;
    }

    WorkloadSpec spec;
    CoreId core;
    Rng rng;

    // Temporal-stream machinery: streams are created lazily; each
    // gets a geometric number of total visits and recurrences
    // scheduled at log-uniform reuse distances. A min-heap of
    // (due record index, stream id) decides whether the next stream
    // playback is a recurrence or fresh data.
    std::vector<LiveStream> streams;
    using Due = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Due, std::vector<Due>, std::greater<>> pending;

    std::uint64_t maxReuse;
    std::uint64_t minReuse;
    LibraryConfig lengthConfig;
    Addr streamNext;
    Addr scanNext;
    double pNoise;
    double pHot;
    double pScan;

    std::int64_t current = -1;  ///< Stream being played back.
    std::size_t position = 0;
    std::uint64_t emitted = 0;
    std::uint64_t burstLeft = 0;  ///< Burst records still owed.
};

LaneGenerator::LaneGenerator(const WorkloadSpec &spec, CoreId core)
    : state_(std::make_unique<State>(spec, core))
{
}

LaneGenerator::~LaneGenerator() = default;
LaneGenerator::LaneGenerator(LaneGenerator &&) noexcept = default;
LaneGenerator &
LaneGenerator::operator=(LaneGenerator &&) noexcept = default;

std::size_t
LaneGenerator::fill(std::vector<TraceRecord> &out,
                    std::size_t max_records)
{
    std::size_t appended = 0;
    TraceRecord record;
    while (appended < max_records && state_->next(record)) {
        out.push_back(record);
        ++appended;
    }
    return appended;
}

std::size_t
LaneGenerator::fill(TraceRecord *out, std::size_t max_records)
{
    std::size_t appended = 0;
    TraceRecord record;
    while (appended < max_records && state_->next(record)) {
        out[appended] = record;
        ++appended;
    }
    return appended;
}

bool
LaneGenerator::done() const
{
    return state_->emitted >= state_->spec.recordsPerCore;
}

std::uint64_t
LaneGenerator::emitted() const
{
    return state_->emitted;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec)
    : spec_(spec)
{
    stms_assert(spec.numCores > 0, "workload needs cores");
    stms_assert(spec.noiseFraction + spec.hotFraction +
                    spec.scanFraction <= 1.0 + 1e-9,
                "access-mix fractions exceed 1.0 in workload %s",
                spec.name.c_str());
    stms_assert(spec.meanVisits >= 1.0, "meanVisits must be >= 1");
}

Trace
WorkloadGenerator::generate() const
{
    Trace trace;
    trace.name = spec_.name;
    trace.perCore.resize(spec_.numCores);
    for (CoreId core = 0; core < spec_.numCores; ++core)
        generateCore(core, trace.perCore[core]);
    return trace;
}

void
WorkloadGenerator::generateCore(CoreId core,
                                std::vector<TraceRecord> &records) const
{
    records.reserve(spec_.recordsPerCore);
    LaneGenerator lane(spec_, core);
    lane.fill(records, spec_.recordsPerCore);
}

} // namespace stms
