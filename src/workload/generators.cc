#include "workload/generators.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.hh"

namespace stms
{

namespace
{

/** Per-core address-region tags (bits 36..39 select the region). */
constexpr Addr
regionBase(CoreId core, std::uint64_t region)
{
    return (static_cast<Addr>(core + 1) << 40) | (region << 36);
}

constexpr std::uint64_t kStreamRegion = 1;
constexpr std::uint64_t kNoiseRegion = 2;
constexpr std::uint64_t kHotRegion = 3;
constexpr std::uint64_t kScanRegion = 4;

/** Log-uniform draw in [lo, hi]. */
std::uint64_t
logUniform(Rng &rng, std::uint64_t lo, std::uint64_t hi)
{
    if (lo >= hi)
        return lo;
    const double log_lo = std::log(static_cast<double>(lo));
    const double log_hi = std::log(static_cast<double>(hi));
    const double draw = std::exp(log_lo + rng.uniform() *
                                 (log_hi - log_lo));
    return static_cast<std::uint64_t>(draw);
}

} // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec)
    : spec_(spec)
{
    stms_assert(spec.numCores > 0, "workload needs cores");
    stms_assert(spec.noiseFraction + spec.hotFraction +
                    spec.scanFraction <= 1.0 + 1e-9,
                "access-mix fractions exceed 1.0 in workload %s",
                spec.name.c_str());
    stms_assert(spec.meanVisits >= 1.0, "meanVisits must be >= 1");
}

Trace
WorkloadGenerator::generate() const
{
    Trace trace;
    trace.name = spec_.name;
    trace.perCore.resize(spec_.numCores);
    for (CoreId core = 0; core < spec_.numCores; ++core)
        generateCore(core, trace.perCore[core]);
    return trace;
}

void
WorkloadGenerator::generateCore(CoreId core,
                                std::vector<TraceRecord> &records) const
{
    Rng rng(spec_.seed * 0x9e3779b9ULL + core * 0x85ebca6bULL + 1);
    records.reserve(spec_.recordsPerCore);

    // --- Temporal-stream machinery -------------------------------
    // Streams are created lazily; each gets a geometric number of
    // total visits and recurrences scheduled at log-uniform reuse
    // distances. A min-heap of (due record index, stream id) decides
    // whether the next stream playback is a recurrence or fresh data.
    struct LiveStream
    {
        std::vector<Addr> body;
        std::uint32_t visitsLeft;
    };
    std::vector<LiveStream> streams;
    using Due = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Due, std::vector<Due>, std::greater<>> pending;

    const std::uint64_t max_reuse =
        std::min(spec_.maxReuseRecords,
                 std::max<std::uint64_t>(spec_.recordsPerCore / 2, 2));
    const std::uint64_t min_reuse =
        std::min(spec_.minReuseRecords, max_reuse);

    LibraryConfig length_config{
        1, spec_.minStreamLen, spec_.maxStreamLen,
        spec_.lengthLogMean, spec_.lengthLogSigma, 0};

    Addr stream_next = blockNumber(regionBase(core, kStreamRegion));
    Addr scan_next = blockNumber(regionBase(core, kScanRegion));

    auto make_stream = [&]() -> std::uint32_t {
        const std::uint32_t length =
            spec_.loopSingleStream
                ? spec_.minStreamLen
                : StreamLibrary::sampleLength(length_config, rng);
        LiveStream stream;
        stream.body.resize(length);
        for (std::uint32_t i = 0; i < length; ++i)
            stream.body[i] = blockAddress(stream_next + i);
        for (std::uint32_t i = length - 1; i > 0; --i) {
            const auto j =
                static_cast<std::uint32_t>(rng.below(i + 1));
            std::swap(stream.body[i], stream.body[j]);
        }
        stream_next += length;
        if (rng.chance(spec_.onceFraction)) {
            stream.visitsLeft = 0;  // Visited once, never again.
        } else {
            // Geometric total-visit count with the configured mean.
            stream.visitsLeft = static_cast<std::uint32_t>(
                rng.geometric(1.0 / spec_.meanVisits));
        }
        streams.push_back(std::move(stream));
        return static_cast<std::uint32_t>(streams.size() - 1);
    };

    std::int64_t current = -1;  // Stream being played back.
    std::size_t position = 0;

    auto next_stream_addr = [&](std::uint64_t idx) -> Addr {
        if (spec_.loopSingleStream) {
            if (current < 0)
                current = make_stream();
            auto &body = streams[static_cast<std::size_t>(current)].body;
            if (position >= body.size())
                position = 0;  // Next iteration of the computation.
            return body[position++];
        }

        if (current >= 0 &&
            position <
                streams[static_cast<std::size_t>(current)].body.size()) {
            return streams[static_cast<std::size_t>(current)]
                .body[position++];
        }

        // Current playback exhausted: prefer a due recurrence, else
        // mint fresh data.
        if (!pending.empty() && pending.top().first <= idx) {
            current = pending.top().second;
            pending.pop();
        } else {
            current = make_stream();
        }
        auto &stream = streams[static_cast<std::size_t>(current)];
        if (stream.visitsLeft > 0) {
            --stream.visitsLeft;
            pending.emplace(idx + logUniform(rng, min_reuse, max_reuse),
                            static_cast<std::uint32_t>(current));
        }
        position = 0;
        return stream.body[position++];
    };

    const double p_noise = spec_.noiseFraction;
    const double p_hot = p_noise + spec_.hotFraction;
    const double p_scan = p_hot + spec_.scanFraction;

    auto emit = [&](Addr addr, std::uint16_t think, bool dependent) {
        TraceRecord record;
        record.addr = addr;
        record.think = think;
        std::uint8_t flags = 0;
        if (rng.chance(spec_.writeFraction))
            flags |= TraceRecord::kWrite;
        if (dependent)
            flags |= TraceRecord::kDependent;
        record.flags = flags;
        records.push_back(record);
    };

    while (records.size() < spec_.recordsPerCore) {
        const double roll = rng.uniform();
        const auto think = static_cast<std::uint16_t>(
            rng.range(spec_.thinkMin, spec_.thinkMax));
        const bool dependent = rng.chance(spec_.dependentProb);

        if (roll < p_noise) {
            emit(regionBase(core, kNoiseRegion) +
                     blockAddress(rng.below(spec_.noiseBlocks)),
                 think, dependent);
        } else if (roll < p_hot) {
            emit(regionBase(core, kHotRegion) +
                     blockAddress(rng.below(spec_.hotBlocks)),
                 think, dependent);
        } else if (roll < p_scan) {
            emit(blockAddress(scan_next++), think, dependent);
        } else {
            emit(next_stream_addr(records.size()), think, dependent);
            // Burst: further stream accesses issue back-to-back and
            // independently, overlapping in the core's miss window.
            if (spec_.missBurstMax > 0) {
                const std::uint64_t burst =
                    rng.below(spec_.missBurstMax + 1);
                for (std::uint64_t i = 0;
                     i < burst &&
                     records.size() < spec_.recordsPerCore; ++i) {
                    emit(next_stream_addr(records.size()),
                         static_cast<std::uint16_t>(rng.range(2, 10)),
                         false);
                }
            }
        }
    }
}

} // namespace stms
