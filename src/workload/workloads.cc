#include "workload/workloads.hh"

#include "common/log.hh"

namespace stms
{

const std::vector<WorkloadInfo> &
standardSuite()
{
    static const std::vector<WorkloadInfo> suite = {
        {"web-apache", "Web", "Apache", 0.55, 0.12, 1.5},
        {"web-zeus", "Web", "Zeus", 0.60, 0.15, 1.5},
        {"oltp-db2", "OLTP", "DB2", 0.52, 0.08, 1.3},
        {"oltp-oracle", "OLTP", "Oracle", 0.40, 0.05, 1.3},
        {"dss-db2", "DSS", "DB2", 0.20, 0.03, 1.6},
        {"sci-em3d", "Sci", "em3d", 0.97, 0.75, 1.7},
        {"sci-moldyn", "Sci", "moldyn", 0.92, 0.40, 1.0},
        {"sci-ocean", "Sci", "ocean", 0.90, 0.50, 1.2},
    };
    return suite;
}

const std::vector<WorkloadInfo> &
extendedSuite()
{
    static const std::vector<WorkloadInfo> suite = {
        {"kv-store", "KV", "kv-store", 0.45, 0.10, 1.1},
    };
    return suite;
}

bool
isKnownWorkload(const std::string &name)
{
    for (const auto &info : standardSuite())
        if (info.name == name)
            return true;
    for (const auto &info : extendedSuite())
        if (info.name == name)
            return true;
    return false;
}

WorkloadSpec
makeWorkload(const std::string &name, std::uint64_t records_per_core)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.numCores = 4;
    spec.recordsPerCore = 768 * 1024;
    spec.seed = 0x5742;

    if (name == "web-apache") {
        // SPECweb99 on Apache: many mid-length streams, moderate
        // noise, a third of accesses hitting on chip.
        spec.lengthLogMean = 2.3;
        spec.lengthLogSigma = 1.7;
        spec.maxStreamLen = 2048;
        spec.meanVisits = 8.0;
        spec.minReuseRecords = 48 * 1024;
        spec.maxReuseRecords = 1024 * 1024;
        spec.noiseFraction = 0.16;
        spec.hotFraction = 0.36;
        spec.scanFraction = 0.02;
        spec.dependentProb = 0.30;
        spec.thinkMin = 36;
        spec.thinkMax = 150;
        spec.missBurstMax = 1;
        spec.writeFraction = 0.08;
    } else if (name == "web-zeus") {
        // Zeus: slightly streamier than Apache (higher coverage).
        spec.lengthLogMean = 2.5;
        spec.lengthLogSigma = 1.7;
        spec.maxStreamLen = 2048;
        spec.meanVisits = 9.0;
        spec.minReuseRecords = 48 * 1024;
        spec.maxReuseRecords = 1024 * 1024;
        spec.noiseFraction = 0.12;
        spec.hotFraction = 0.34;
        spec.scanFraction = 0.02;
        spec.dependentProb = 0.30;
        spec.thinkMin = 36;
        spec.thinkMax = 140;
        spec.missBurstMax = 1;
        spec.writeFraction = 0.08;
    } else if (name == "oltp-db2") {
        // TPC-C on DB2: shorter streams, pointer-chasing (MLP 1.3),
        // lots of on-chip B-tree work.
        spec.lengthLogMean = 2.3;
        spec.lengthLogSigma = 1.7;
        spec.maxStreamLen = 2048;
        spec.meanVisits = 9.0;
        spec.minReuseRecords = 40 * 1024;
        spec.maxReuseRecords = 896 * 1024;
        spec.noiseFraction = 0.12;
        spec.hotFraction = 0.42;
        spec.scanFraction = 0.01;
        spec.dependentProb = 0.42;
        spec.thinkMin = 70;
        spec.thinkMax = 260;
        spec.missBurstMax = 1;
        spec.writeFraction = 0.12;
    } else if (name == "oltp-oracle") {
        // TPC-C on Oracle: dominant bottlenecks are on chip (L1/L2
        // and coherence), so the hot fraction is highest and speedup
        // lowest despite real coverage (Sec. 5.2).
        spec.lengthLogMean = 2.1;
        spec.lengthLogSigma = 1.6;
        spec.maxStreamLen = 2048;
        spec.meanVisits = 6.0;
        spec.minReuseRecords = 40 * 1024;
        spec.maxReuseRecords = 896 * 1024;
        spec.noiseFraction = 0.18;
        spec.hotFraction = 0.46;
        spec.scanFraction = 0.01;
        spec.dependentProb = 0.45;
        spec.thinkMin = 80;
        spec.thinkMax = 300;
        spec.missBurstMax = 1;
        spec.writeFraction = 0.12;
    } else if (name == "dss-db2") {
        // TPC-H: scan-dominated, data visited once (Sec. 5.2), with a
        // small recurring dimension-probe component.
        spec.lengthLogMean = 2.2;
        spec.lengthLogSigma = 1.4;
        spec.maxStreamLen = 1024;
        spec.meanVisits = 8.0;
        spec.onceFraction = 0.60;
        spec.minReuseRecords = 40 * 1024;
        spec.maxReuseRecords = 768 * 1024;
        spec.noiseFraction = 0.22;
        spec.hotFraction = 0.16;
        spec.scanFraction = 0.30;
        spec.dependentProb = 0.30;
        spec.thinkMin = 20;
        spec.thinkMax = 100;
        spec.writeFraction = 0.04;
    } else if (name == "sci-em3d") {
        // em3d: one long irregular iteration stream that repeats
        // exactly (paper: ~400K misses/iteration; scaled to 96K).
        spec.loopSingleStream = true;
        spec.minStreamLen = 96000;
        spec.maxStreamLen = 96000;
        spec.noiseFraction = 0.02;
        spec.hotFraction = 0.26;
        spec.scanFraction = 0.0;
        spec.dependentProb = 0.52;
        spec.thinkMin = 34;
        spec.thinkMax = 120;
        spec.missBurstMax = 1;
        spec.writeFraction = 0.03;
    } else if (name == "sci-moldyn") {
        // moldyn: serial pointer chasing (MLP 1.0), one iteration
        // stream (paper: 81K misses; scaled to 48K).
        spec.loopSingleStream = true;
        spec.minStreamLen = 48000;
        spec.maxStreamLen = 48000;
        spec.noiseFraction = 0.03;
        spec.hotFraction = 0.34;
        spec.scanFraction = 0.0;
        spec.dependentProb = 1.0;
        spec.thinkMin = 110;
        spec.thinkMax = 330;
        spec.writeFraction = 0.05;
    } else if (name == "sci-ocean") {
        // ocean: grid relaxation; the paper's iteration is 21K misses, but
        // a single-loop model that small would be L2-resident in our
        // 8MB L2, so the iteration is sized above the per-core L2 reach
        // (44K blocks) to keep recurrences off-chip as they are in the
        // paper's full-system runs.
        spec.loopSingleStream = true;
        spec.minStreamLen = 44000;
        spec.maxStreamLen = 44000;
        spec.noiseFraction = 0.03;
        spec.hotFraction = 0.26;
        spec.scanFraction = 0.02;
        spec.dependentProb = 0.62;
        spec.thinkMin = 60;
        spec.thinkMax = 190;
        spec.writeFraction = 0.06;
    } else if (name == "kv-store") {
        // In-memory key-value store (memcached-style GETs): each
        // request hashes into a bucket then chases a short chain of
        // item headers plus the value blocks, so temporal streams
        // are short and almost fully serial (pointer-chase MLP ~1.1)
        // while hot keys recur heavily under a Zipf-like skew. No
        // sequential scan component — stride prefetchers get
        // nothing, which is what makes the pattern interesting for
        // STMS-style temporal streaming.
        spec.lengthLogMean = 1.6;   // Median ~5 blocks per request.
        spec.lengthLogSigma = 1.0;
        spec.maxStreamLen = 64;
        spec.meanVisits = 12.0;     // Hot keys dominate requests.
        spec.minReuseRecords = 32 * 1024;
        spec.maxReuseRecords = 768 * 1024;
        spec.noiseFraction = 0.20;  // Cold-key misses.
        spec.hotFraction = 0.30;    // Front-cache / connection state.
        spec.scanFraction = 0.0;
        spec.dependentProb = 0.95;  // Chain walks serialize.
        spec.thinkMin = 40;
        spec.thinkMax = 160;
        spec.missBurstMax = 0;
        spec.writeFraction = 0.10;  // SET traffic.
    } else {
        stms_fatal("unknown workload '%s'", name.c_str());
    }

    if (records_per_core > 0)
        spec.recordsPerCore = records_per_core;
    return spec;
}

} // namespace stms
