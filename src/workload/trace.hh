/**
 * @file
 * Memory-access trace representation and file I/O.
 *
 * A trace is the per-core sequence of correct-path memory accesses a
 * workload performs. Each record carries the block-aligned physical
 * address, the non-memory work (in cycles) preceding the access, and
 * flags: whether it is a store, and whether it depends on the previous
 * record's data (pointer chasing). The dependence flags are how the
 * generators control each workload's inherent MLP (Table 2).
 */

#ifndef STMS_WORKLOAD_TRACE_HH
#define STMS_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stms
{

/** One memory access of one core. */
struct TraceRecord
{
    Addr addr = 0;              ///< Byte address (block aligned by use).
    std::uint16_t think = 0;    ///< Non-memory cycles before the access.
    std::uint8_t flags = 0;     ///< See flag constants below.

    static constexpr std::uint8_t kWrite = 1u << 0;
    static constexpr std::uint8_t kDependent = 1u << 1;

    bool isWrite() const { return flags & kWrite; }
    bool isDependent() const { return flags & kDependent; }
};

/** A full multi-core trace: one record vector per core. */
struct Trace
{
    std::string name;
    std::vector<std::vector<TraceRecord>> perCore;

    std::uint32_t
    numCores() const
    {
        return static_cast<std::uint32_t>(perCore.size());
    }

    std::uint64_t totalRecords() const;

    /** Count of distinct blocks touched across all cores. */
    std::uint64_t footprintBlocks() const;
};

// Trace file I/O lives in the trace_io subsystem: trace_io/native.hh
// (versioned binary save/load + streaming reader), trace_io/champsim.hh
// (ChampSim-compatible records), trace_io/trace_source.hh (the
// streaming TraceSource/RecordCursor interfaces the simulator
// consumes). See docs/TRACE_FORMATS.md for the on-disk layouts.

} // namespace stms

#endif // STMS_WORKLOAD_TRACE_HH
