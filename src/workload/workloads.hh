/**
 * @file
 * The standard workload suite (Table 1 of the paper).
 *
 * Eight synthetic workloads substitute for the paper's suite, each
 * parameterized from the paper's published per-workload measurements:
 * temporal-stream length structure (Fig. 6 left), recurrence and
 * reuse-distance behaviour (Fig. 5), visit-once scans for DSS
 * (Sec. 5.2), single-iteration streams for the scientific codes
 * (Sec. 5.4 gives per-iteration stream lengths), on-chip-bottleneck
 * fractions (which bound speedup), and dependence structure targeting
 * each workload's MLP (Table 2).
 *
 * Scientific iteration lengths are scaled ~5x below the paper's
 * (em3d 400K -> 80K misses/iteration) to keep bench runtimes sane;
 * DESIGN.md and EXPERIMENTS.md record the scaling.
 */

#ifndef STMS_WORKLOAD_WORKLOADS_HH
#define STMS_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "workload/generators.hh"

namespace stms
{

/** One entry of the standard suite. */
struct WorkloadInfo
{
    std::string name;   ///< e.g. "web-apache".
    std::string group;  ///< "Web", "OLTP", "DSS", "Sci".
    std::string label;  ///< Short label, e.g. "Apache".
    double paperIdealCoverage;  ///< Fig. 4 left (fraction).
    double paperIdealSpeedup;   ///< Fig. 4 right (fraction).
    double paperMlp;            ///< Table 2.
};

/** The suite in the paper's presentation order. */
const std::vector<WorkloadInfo> &standardSuite();

/**
 * Workloads beyond the paper's Table 1 (CounterPoint-style sweeps
 * over additional miss patterns). These are selectable by name
 * everywhere (`workload=kv-store`) but are not part of
 * standardSuite(), so the paper's figure experiments keep the
 * paper's eight-workload presentation. Reference coverage/speedup
 * numbers are our own expectations, not the paper's.
 */
const std::vector<WorkloadInfo> &extendedSuite();

/**
 * Build the spec for a named workload.
 * @param name one of the standardSuite() names.
 * @param records_per_core trace length; 0 keeps the preset default.
 */
WorkloadSpec makeWorkload(const std::string &name,
                          std::uint64_t records_per_core = 0);

/** True if @p name names a workload in the standard suite. */
bool isKnownWorkload(const std::string &name);

} // namespace stms

#endif // STMS_WORKLOAD_WORKLOADS_HH
