#include "core/bucket_buffer.hh"

#include "common/log.hh"

namespace stms
{

BucketBuffer::BucketBuffer(std::uint32_t capacity)
    : capacity_(capacity)
{
    stms_assert(capacity > 0, "bucket buffer needs capacity");
}

bool
BucketBuffer::probe(std::uint64_t bucket)
{
    auto it = index_.find(bucket);
    if (it == index_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
BucketBuffer::insert(std::uint64_t bucket, bool &writeback_victim,
                     std::uint64_t &victim_bucket)
{
    writeback_victim = false;
    auto it = index_.find(bucket);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacity_) {
        const Node victim = lru_.back();
        lru_.pop_back();
        index_.erase(victim.bucket);
        if (victim.dirty) {
            writeback_victim = true;
            victim_bucket = victim.bucket;
            ++stats_.writebacks;
        }
    }
    lru_.push_front(Node{bucket, false});
    index_[bucket] = lru_.begin();
}

void
BucketBuffer::markDirty(std::uint64_t bucket)
{
    auto it = index_.find(bucket);
    if (it != index_.end())
        it->second->dirty = true;
}

std::uint32_t
BucketBuffer::flush()
{
    std::uint32_t drained = 0;
    for (Node &node : lru_) {
        if (node.dirty) {
            node.dirty = false;
            ++drained;
            ++stats_.writebacks;
        }
    }
    return drained;
}

} // namespace stms
