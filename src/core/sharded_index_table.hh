/**
 * @file
 * Lock-striped sharded index table (Sec. 4.3 structure, parallelized).
 *
 * The index table is the one structure every core's lookups and
 * updates funnel through; a single map under one lock serializes
 * concurrent runs on real multi-core hosts. ShardedIndexTable
 * partitions the buckets across N shards, each guarded by its own
 * mutex, while keeping the *model* bit-identical to IndexTable for
 * every shard count:
 *
 *  - a block still hashes to the same global bucket
 *    (hashToBucket(blockNumber(block), numBuckets())),
 *  - global bucket b lives in shard b % N at local index b / N, so
 *    bucket contents and LRU order never depend on N,
 *  - per-shard IndexTableStats merge field-wise into the aggregate,
 *    and the per-shard counts sum exactly to it.
 *
 * Sharding therefore changes only who contends on which lock when
 * threads share one table — never what any lookup returns. This is
 * asserted against IndexTable in tests and gated in CI.
 */

#ifndef STMS_CORE_SHARDED_INDEX_TABLE_HH
#define STMS_CORE_SHARDED_INDEX_TABLE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"
#include "common/zeroed_buffer.hh"
#include "core/index_bucket.hh"
#include "core/index_table.hh"

namespace stms
{

/** Bucketized LRU hash table partitioned into lock-striped shards. */
class ShardedIndexTable
{
  public:
    /**
     * @param total_bytes main-memory footprint; 0 = unbounded (ideal).
     * @param entries_per_bucket pairs packed into one 64B block (12).
     * @param shards lock stripes; 1 = the unsharded legacy structure.
     */
    explicit ShardedIndexTable(std::uint64_t total_bytes,
                               std::uint32_t entries_per_bucket = 12,
                               std::uint32_t shards = 1);

    /** Find the pointer for @p block; refreshes bucket LRU on hit.
     *  Thread-safe: locks only the owning shard. */
    std::optional<HistoryPointer> lookup(Addr block);

    /** Insert or refresh the mapping for @p block; evicts the
     *  bucket's LRU pair when full. Thread-safe per shard. */
    void update(Addr block, HistoryPointer pointer);

    /**
     * Probe a batch of blocks: bit-identical to calling lookup() on
     * each element in order — same results, per-shard stats, and LRU
     * motion for every shard count — with each probe's bucket lines
     * software-prefetched kIndexProbeAhead probes early. Prefetches
     * read only the constructor-pinned array bases, so they are safe
     * without taking the shard locks. @p out must hold at least
     * blocks.size() elements.
     */
    void lookupBatch(std::span<const Addr> blocks,
                     std::span<std::optional<HistoryPointer>> out);

    /** Batched update(): bit-identical to the element-wise loop, with
     *  the same one-batch-ahead bucket prefetch as lookupBatch. */
    void updateBatch(std::span<const Addr> blocks,
                     std::span<const HistoryPointer> pointers);

    /** Software-prefetch the buckets @p blocks hash to (host cache
     *  warm-up hint; no architectural effect, no stats, no locks). */
    void prefetchBatch(std::span<const Addr> blocks) const;

    /** Global bucket number (identical to IndexTable::bucketOf). */
    std::uint64_t bucketOf(Addr block) const;

    /** Shard owning @p block's bucket. */
    std::uint32_t shardOf(Addr block) const;

    std::uint64_t numBuckets() const { return buckets_; }
    std::uint32_t
    numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    bool unbounded() const { return buckets_ == 0; }
    std::uint64_t footprintBytes() const;

    /** Total pairs currently stored; O(shards). */
    std::uint64_t occupancy() const;

    /** The full recount of occupancy(); debug cross-check. */
    std::uint64_t occupancyScan() const;

    /** Aggregate statistics, merged field-wise across shards. */
    IndexTableStats stats() const;

    /** One shard's statistics; the shards sum exactly to stats(). */
    IndexTableStats shardStats(std::uint32_t shard) const;

    /** Operations (lookups + updates) routed to @p shard so far —
     *  the imbalance input of the contention bench. */
    std::uint64_t shardOps(std::uint32_t shard) const;

    void resetStats();

  private:
    /**
     * One lock stripe. Shards are heap-allocated (the mutex pins
     * them) and each starts on its own cache line via make_unique's
     * allocation granularity; the hot mutex and store pointer sit
     * together at the front.
     */
    struct Shard
    {
        mutable std::mutex mutex;
        /** Bounded storage: owned global buckets, local-dense (SoA
         *  buckets; see core/index_bucket.hh). */
        detail::BucketStore store;
        /** Unbounded (idealized) storage, keyed by block number. */
        std::unordered_map<Addr, std::uint64_t> map;
        IndexTableStats stats;
        /** Live pair count of the bounded store. */
        std::uint64_t pairs = 0;
    };

    Shard &shardFor(Addr block) { return *shards_[shardOf(block)]; }

    /** Lock-free bucket prefetch for one block (bounded mode only). */
    void prefetchOne(Addr block) const;

    /**
     * prefetchOne() with the loop-invariant state — bucket count,
     * shard count, shard pointer array — resolved once per batch
     * instead of per probe (PR 6 left that recomputation in the batch
     * loops; BM_BatchedIndexProbe measures the difference). Hints
     * only, so batches stay bit-identical to element-wise calls.
     */
    struct HoistedPrefetch
    {
        const std::unique_ptr<Shard> *shards;
        std::uint64_t buckets;
        std::uint32_t count;

        void
        prefetch(Addr block) const
        {
            const std::uint64_t bucket =
                hashToBucket(blockNumber(block), buckets);
            const Shard &shard =
                *shards[count == 1 ? 0 : bucket % count];
            shard.store.prefetchBucket(bucket / count);
        }
    };

    HoistedPrefetch
    hoistPrefetch() const
    {
        return HoistedPrefetch{shards_.data(), buckets_, numShards()};
    }

    std::uint32_t entriesPerBucket_;
    std::uint64_t buckets_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace stms

#endif // STMS_CORE_SHARDED_INDEX_TABLE_HH
