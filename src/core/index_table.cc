#include "core/index_table.hh"

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

IndexTable::IndexTable(std::uint64_t total_bytes,
                       std::uint32_t entries_per_bucket)
    : entriesPerBucket_(entries_per_bucket)
{
    stms_assert(entries_per_bucket > 0, "bucket needs entries");
    if (total_bytes == 0) {
        buckets_ = 0;
        return;
    }
    buckets_ = total_bytes / kBlockBytes;
    stms_assert(buckets_ > 0, "index table smaller than one bucket");
    store_.assign(buckets_ * entriesPerBucket_, detail::IndexPair{});
}

std::uint64_t
IndexTable::bucketOf(Addr block) const
{
    return unbounded() ? 0 : hashToBucket(blockNumber(block), buckets_);
}

std::optional<HistoryPointer>
IndexTable::lookup(Addr block)
{
    ++stats_.lookups;
    // Key by block number so bounded and unbounded mode alias
    // sub-block addresses identically (the bounded hash always used
    // the block number; the tag must match it).
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        ++stats_.lookupHits;
        return HistoryPointer::unpack(it->second);
    }

    detail::IndexPair *base =
        &store_[bucketOf(block) * entriesPerBucket_];
    const auto pointer =
        detail::bucketLookup(base, entriesPerBucket_, key);
    if (!pointer)
        return std::nullopt;
    ++stats_.lookupHits;
    return HistoryPointer::unpack(*pointer);
}

void
IndexTable::update(Addr block, HistoryPointer pointer)
{
    ++stats_.updates;
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto [it, inserted] =
            map_.insert_or_assign(key, pointer.packed());
        (void)it;
        if (inserted)
            ++stats_.inserts;
        return;
    }

    detail::IndexPair *base =
        &store_[bucketOf(block) * entriesPerBucket_];
    switch (detail::bucketUpdate(base, entriesPerBucket_, key,
                                 pointer.packed())) {
    case detail::BucketUpdate::Refreshed:
        break;
    case detail::BucketUpdate::Inserted:
        ++stats_.inserts;
        ++pairs_;
        break;
    case detail::BucketUpdate::Replaced:
        ++stats_.replacements;
        break;
    }
}

std::uint64_t
IndexTable::footprintBytes() const
{
    if (unbounded()) {
        // 5.33 bytes/pair at the paper's packing density.
        return divCeil(map_.size(), entriesPerBucket_) * kBlockBytes;
    }
    return buckets_ * kBlockBytes;
}

std::uint64_t
IndexTable::occupancyScan() const
{
    if (unbounded())
        return map_.size();
    std::uint64_t count = 0;
    for (const detail::IndexPair &pair : store_)
        count += pair.valid ? 1 : 0;
    return count;
}

} // namespace stms
