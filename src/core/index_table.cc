#include "core/index_table.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

IndexTable::IndexTable(std::uint64_t total_bytes,
                       std::uint32_t entries_per_bucket)
    : entriesPerBucket_(entries_per_bucket)
{
    stms_assert(entries_per_bucket > 0, "bucket needs entries");
    if (total_bytes == 0) {
        buckets_ = 0;
        return;
    }
    buckets_ = total_bytes / kBlockBytes;
    stms_assert(buckets_ > 0, "index table smaller than one bucket");
    store_.reset(buckets_, entriesPerBucket_);
}

std::uint64_t
IndexTable::bucketOf(Addr block) const
{
    return unbounded() ? 0 : hashToBucket(blockNumber(block), buckets_);
}

std::optional<HistoryPointer>
IndexTable::lookup(Addr block)
{
    ++stats_.lookups;
    // Key by block number so bounded and unbounded mode alias
    // sub-block addresses identically (the bounded hash always used
    // the block number; the tag must match it).
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        ++stats_.lookupHits;
        return HistoryPointer::unpack(it->second);
    }

    const auto pointer = store_.lookup(bucketOf(block), key);
    if (!pointer)
        return std::nullopt;
    ++stats_.lookupHits;
    return HistoryPointer::unpack(*pointer);
}

void
IndexTable::update(Addr block, HistoryPointer pointer)
{
    ++stats_.updates;
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto [it, inserted] =
            map_.insert_or_assign(key, pointer.packed());
        (void)it;
        if (inserted)
            ++stats_.inserts;
        return;
    }

    switch (store_.update(bucketOf(block), key, pointer.packed())) {
    case detail::BucketUpdate::Refreshed:
        break;
    case detail::BucketUpdate::Inserted:
        ++stats_.inserts;
        ++pairs_;
        break;
    case detail::BucketUpdate::Replaced:
        ++stats_.replacements;
        break;
    }
}

void
IndexTable::lookupBatch(std::span<const Addr> blocks,
                        std::span<std::optional<HistoryPointer>> out)
{
    stms_assert(out.size() >= blocks.size(),
                "lookupBatch output smaller than input");
    // The probes below are literal lookup() calls in element order,
    // so the batch is bit-identical to the scalar loop by
    // construction; only the interleaved prefetches differ, and they
    // have no architectural effect.
    const bool bounded = !unbounded();
    const std::size_t ahead =
        std::min(kIndexProbeAhead, blocks.size());
    if (bounded) {
        for (std::size_t i = 0; i < ahead; ++i)
            store_.prefetchBucket(bucketOf(blocks[i]));
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (bounded && i + kIndexProbeAhead < blocks.size())
            store_.prefetchBucket(
                bucketOf(blocks[i + kIndexProbeAhead]));
        out[i] = lookup(blocks[i]);
    }
}

void
IndexTable::updateBatch(std::span<const Addr> blocks,
                        std::span<const HistoryPointer> pointers)
{
    stms_assert(pointers.size() >= blocks.size(),
                "updateBatch pointer span smaller than input");
    const bool bounded = !unbounded();
    const std::size_t ahead =
        std::min(kIndexProbeAhead, blocks.size());
    if (bounded) {
        for (std::size_t i = 0; i < ahead; ++i)
            store_.prefetchBucket(bucketOf(blocks[i]));
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (bounded && i + kIndexProbeAhead < blocks.size())
            store_.prefetchBucket(
                bucketOf(blocks[i + kIndexProbeAhead]));
        update(blocks[i], pointers[i]);
    }
}

void
IndexTable::prefetchBatch(std::span<const Addr> blocks) const
{
    if (unbounded())
        return;  // Nothing to warm: the map's layout is opaque.
    for (const Addr block : blocks)
        store_.prefetchBucket(bucketOf(block));
}

std::uint64_t
IndexTable::footprintBytes() const
{
    if (unbounded()) {
        // 5.33 bytes/pair at the paper's packing density.
        return divCeil(map_.size(), entriesPerBucket_) * kBlockBytes;
    }
    return buckets_ * kBlockBytes;
}

std::uint64_t
IndexTable::occupancyScan() const
{
    if (unbounded())
        return map_.size();
    return store_.occupancyScan();
}

} // namespace stms
