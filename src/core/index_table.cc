#include "core/index_table.hh"

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

IndexTable::IndexTable(std::uint64_t total_bytes,
                       std::uint32_t entries_per_bucket)
    : entriesPerBucket_(entries_per_bucket)
{
    stms_assert(entries_per_bucket > 0, "bucket needs entries");
    if (total_bytes == 0) {
        buckets_ = 0;
        return;
    }
    buckets_ = total_bytes / kBlockBytes;
    stms_assert(buckets_ > 0, "index table smaller than one bucket");
    store_.reset(buckets_, entriesPerBucket_);
}

std::uint64_t
IndexTable::bucketOf(Addr block) const
{
    return unbounded() ? 0 : hashToBucket(blockNumber(block), buckets_);
}

std::optional<HistoryPointer>
IndexTable::lookup(Addr block)
{
    ++stats_.lookups;
    // Key by block number so bounded and unbounded mode alias
    // sub-block addresses identically (the bounded hash always used
    // the block number; the tag must match it).
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        ++stats_.lookupHits;
        return HistoryPointer::unpack(it->second);
    }

    const auto pointer = store_.lookup(bucketOf(block), key);
    if (!pointer)
        return std::nullopt;
    ++stats_.lookupHits;
    return HistoryPointer::unpack(*pointer);
}

void
IndexTable::update(Addr block, HistoryPointer pointer)
{
    ++stats_.updates;
    const Addr key = blockNumber(block);
    if (unbounded()) {
        auto [it, inserted] =
            map_.insert_or_assign(key, pointer.packed());
        (void)it;
        if (inserted)
            ++stats_.inserts;
        return;
    }

    switch (store_.update(bucketOf(block), key, pointer.packed())) {
    case detail::BucketUpdate::Refreshed:
        break;
    case detail::BucketUpdate::Inserted:
        ++stats_.inserts;
        ++pairs_;
        break;
    case detail::BucketUpdate::Replaced:
        ++stats_.replacements;
        break;
    }
}

std::uint64_t
IndexTable::footprintBytes() const
{
    if (unbounded()) {
        // 5.33 bytes/pair at the paper's packing density.
        return divCeil(map_.size(), entriesPerBucket_) * kBlockBytes;
    }
    return buckets_ * kBlockBytes;
}

std::uint64_t
IndexTable::occupancyScan() const
{
    if (unbounded())
        return map_.size();
    return store_.occupancyScan();
}

} // namespace stms
