#include "core/index_table.hh"

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

IndexTable::IndexTable(std::uint64_t total_bytes,
                       std::uint32_t entries_per_bucket)
    : entriesPerBucket_(entries_per_bucket)
{
    stms_assert(entries_per_bucket > 0, "bucket needs entries");
    if (total_bytes == 0) {
        buckets_ = 0;
        return;
    }
    buckets_ = total_bytes / kBlockBytes;
    stms_assert(buckets_ > 0, "index table smaller than one bucket");
    store_.assign(buckets_ * entriesPerBucket_, Pair{});
}

std::uint64_t
IndexTable::bucketOf(Addr block) const
{
    return unbounded() ? 0 : hashToBucket(blockNumber(block), buckets_);
}

std::optional<HistoryPointer>
IndexTable::lookup(Addr block)
{
    ++stats_.lookups;
    if (unbounded()) {
        auto it = map_.find(block);
        if (it == map_.end())
            return std::nullopt;
        ++stats_.lookupHits;
        return HistoryPointer::unpack(it->second);
    }

    Pair *base = &store_[bucketOf(block) * entriesPerBucket_];
    for (std::uint32_t i = 0; i < entriesPerBucket_; ++i) {
        if (base[i].valid && base[i].block == block) {
            ++stats_.lookupHits;
            const Pair hit = base[i];
            // Reshuffle to maintain LRU order (MRU at slot 0).
            for (std::uint32_t j = i; j > 0; --j)
                base[j] = base[j - 1];
            base[0] = hit;
            return HistoryPointer::unpack(hit.pointer);
        }
    }
    return std::nullopt;
}

void
IndexTable::update(Addr block, HistoryPointer pointer)
{
    ++stats_.updates;
    if (unbounded()) {
        auto [it, inserted] = map_.insert_or_assign(block, pointer.packed());
        (void)it;
        if (inserted)
            ++stats_.inserts;
        return;
    }

    Pair *base = &store_[bucketOf(block) * entriesPerBucket_];
    // If the trigger address is present, refresh its pointer and move
    // it to the MRU position.
    for (std::uint32_t i = 0; i < entriesPerBucket_; ++i) {
        if (base[i].valid && base[i].block == block) {
            for (std::uint32_t j = i; j > 0; --j)
                base[j] = base[j - 1];
            base[0] = Pair{block, pointer.packed(), true};
            return;
        }
    }
    // Otherwise insert at MRU, displacing the LRU pair if full.
    if (base[entriesPerBucket_ - 1].valid)
        ++stats_.replacements;
    else
        ++stats_.inserts;
    for (std::uint32_t j = entriesPerBucket_ - 1; j > 0; --j)
        base[j] = base[j - 1];
    base[0] = Pair{block, pointer.packed(), true};
}

std::uint64_t
IndexTable::footprintBytes() const
{
    if (unbounded()) {
        // 5.33 bytes/pair at the paper's packing density.
        return divCeil(map_.size(), entriesPerBucket_) * kBlockBytes;
    }
    return buckets_ * kBlockBytes;
}

std::uint64_t
IndexTable::occupancy() const
{
    if (unbounded())
        return map_.size();
    std::uint64_t count = 0;
    for (const Pair &pair : store_)
        count += pair.valid ? 1 : 0;
    return count;
}

} // namespace stms
