/**
 * @file
 * Hash-based index table (Sec. 4.3).
 *
 * The shared index table maps a physical block address to a pointer
 * into some core's history buffer. It is a bucketized probabilistic
 * hash table in main memory: each bucket is exactly one 64-byte memory
 * block holding up to twelve {address, pointer} pairs maintained in
 * LRU order, so a lookup or update touches exactly one memory block.
 * The LRU policy inside each bucket naturally ages out useless entries
 * (Sec. 5.3).
 *
 * An unbounded mode (hash map) models the idealized prefetcher's
 * magic on-chip meta-data, and a bounded-entry mode supports the
 * coverage-vs-entries sweep of Fig. 1 (left).
 *
 * Both modes key entries by *block number* (the address without its
 * in-block offset bits): two byte addresses inside the same cache
 * block are the same miss stream and must alias identically whether
 * the table is bounded or not.
 */

#ifndef STMS_CORE_INDEX_TABLE_HH
#define STMS_CORE_INDEX_TABLE_HH

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "common/zeroed_buffer.hh"
#include "core/index_bucket.hh"

namespace stms
{

/** A history-buffer pointer tagged with its owning core. */
struct HistoryPointer
{
    /** Bits of the packed word carrying the sequence number; the
     *  owning core occupies the bits above. */
    static constexpr std::uint32_t kSeqBits = 48;
    static constexpr std::uint64_t kSeqMask = (1ULL << kSeqBits) - 1;

    CoreId core = 0;
    SeqNum seq = 0;

    std::uint64_t
    packed() const
    {
        // An unmasked seq >= 2^48 would silently corrupt the core
        // field; the mask keeps the fields disjoint and the asserts
        // catch the overflow where it happens.
        stms_assert(seq <= kSeqMask,
                    "history seq 0x%llx overflows the %u-bit packed "
                    "field",
                    static_cast<unsigned long long>(seq), kSeqBits);
        stms_assert(core <= (std::uint64_t{1} << (64 - kSeqBits)) - 1,
                    "core %u overflows the packed pointer tag", core);
        return (static_cast<std::uint64_t>(core) << kSeqBits) |
               (seq & kSeqMask);
    }

    static HistoryPointer
    unpack(std::uint64_t value)
    {
        return HistoryPointer{static_cast<CoreId>(value >> kSeqBits),
                              value & kSeqMask};
    }
};

/** Index-table occupancy and churn statistics. */
struct IndexTableStats
{
    std::uint64_t lookups = 0;
    std::uint64_t lookupHits = 0;
    std::uint64_t updates = 0;
    std::uint64_t inserts = 0;
    std::uint64_t replacements = 0;
};

/** Field-wise accumulate (per-shard stats merge into the aggregate). */
inline IndexTableStats &
operator+=(IndexTableStats &lhs, const IndexTableStats &rhs)
{
    lhs.lookups += rhs.lookups;
    lhs.lookupHits += rhs.lookupHits;
    lhs.updates += rhs.updates;
    lhs.inserts += rhs.inserts;
    lhs.replacements += rhs.replacements;
    return lhs;
}

inline bool
operator==(const IndexTableStats &lhs, const IndexTableStats &rhs)
{
    return lhs.lookups == rhs.lookups &&
           lhs.lookupHits == rhs.lookupHits &&
           lhs.updates == rhs.updates && lhs.inserts == rhs.inserts &&
           lhs.replacements == rhs.replacements;
}

/** Probe distance of the batched index APIs: while element i is
 *  probed, element i + kProbeAhead's bucket is software-prefetched.
 *  Far enough to cover a memory round trip at ~10ns/probe, near
 *  enough that prefetched lines survive until their probe. */
inline constexpr std::size_t kIndexProbeAhead = 8;

/** Bucketized LRU hash table from block address to history pointer. */
class IndexTable
{
  public:
    /**
     * @param total_bytes main-memory footprint; 0 = unbounded (ideal).
     * @param entries_per_bucket pairs packed into one 64B block (12).
     */
    explicit IndexTable(std::uint64_t total_bytes,
                        std::uint32_t entries_per_bucket = 12);

    /** Find the pointer for @p block; refreshes bucket LRU on hit. */
    std::optional<HistoryPointer> lookup(Addr block);

    /**
     * Insert or refresh the mapping for @p block. Evicts the bucket's
     * LRU pair when the bucket is full.
     */
    void update(Addr block, HistoryPointer pointer);

    /**
     * Probe a batch of blocks: bit-identical to calling lookup() on
     * each element in order (same results, stats, and LRU motion),
     * but each probe's bucket lines are software-prefetched
     * kIndexProbeAhead probes early, hiding the host cache misses a
     * multi-megabyte table takes on every random probe.
     * @p out must hold at least blocks.size() elements.
     */
    void lookupBatch(std::span<const Addr> blocks,
                     std::span<std::optional<HistoryPointer>> out);

    /** Batched update(): bit-identical to the element-wise loop, with
     *  the same one-batch-ahead bucket prefetch as lookupBatch. */
    void updateBatch(std::span<const Addr> blocks,
                     std::span<const HistoryPointer> pointers);

    /** Software-prefetch the buckets @p blocks hash to (host cache
     *  warm-up hint; no architectural effect, no stats). */
    void prefetchBatch(std::span<const Addr> blocks) const;

    /** Bucket number @p block hashes to (for bucket-buffer modeling). */
    std::uint64_t bucketOf(Addr block) const;

    std::uint64_t numBuckets() const { return buckets_; }
    bool unbounded() const { return buckets_ == 0; }
    std::uint64_t footprintBytes() const;

    /** Total pairs currently stored. O(1): maintained live on
     *  insert/replace (benches poll this per interval). */
    std::uint64_t occupancy() const
    {
        return unbounded() ? map_.size() : pairs_;
    }

    /** The O(buckets x entries) recount of occupancy(); kept as a
     *  debug cross-check of the live counter. */
    std::uint64_t occupancyScan() const;

    const IndexTableStats &stats() const { return stats_; }
    void resetStats() { stats_ = IndexTableStats{}; }

  private:
    std::uint32_t entriesPerBucket_;
    std::uint64_t buckets_;
    /** Bounded storage (SoA buckets; see core/index_bucket.hh). */
    detail::BucketStore store_;
    /** Unbounded (idealized) storage, keyed by block number. */
    std::unordered_map<Addr, std::uint64_t> map_;
    /** Live pair count of the bounded store (the O(1) occupancy). */
    std::uint64_t pairs_ = 0;
    IndexTableStats stats_;
};

} // namespace stms

#endif // STMS_CORE_INDEX_TABLE_HH
