/**
 * @file
 * Hash-based index table (Sec. 4.3).
 *
 * The shared index table maps a physical block address to a pointer
 * into some core's history buffer. It is a bucketized probabilistic
 * hash table in main memory: each bucket is exactly one 64-byte memory
 * block holding up to twelve {address, pointer} pairs maintained in
 * LRU order, so a lookup or update touches exactly one memory block.
 * The LRU policy inside each bucket naturally ages out useless entries
 * (Sec. 5.3).
 *
 * An unbounded mode (hash map) models the idealized prefetcher's
 * magic on-chip meta-data, and a bounded-entry mode supports the
 * coverage-vs-entries sweep of Fig. 1 (left).
 */

#ifndef STMS_CORE_INDEX_TABLE_HH
#define STMS_CORE_INDEX_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stms
{

/** A history-buffer pointer tagged with its owning core. */
struct HistoryPointer
{
    CoreId core = 0;
    SeqNum seq = 0;

    std::uint64_t
    packed() const
    {
        return (static_cast<std::uint64_t>(core) << 48) | seq;
    }

    static HistoryPointer
    unpack(std::uint64_t value)
    {
        return HistoryPointer{static_cast<CoreId>(value >> 48),
                              value & ((1ULL << 48) - 1)};
    }
};

/** Index-table occupancy and churn statistics. */
struct IndexTableStats
{
    std::uint64_t lookups = 0;
    std::uint64_t lookupHits = 0;
    std::uint64_t updates = 0;
    std::uint64_t inserts = 0;
    std::uint64_t replacements = 0;
};

/** Bucketized LRU hash table from block address to history pointer. */
class IndexTable
{
  public:
    /**
     * @param total_bytes main-memory footprint; 0 = unbounded (ideal).
     * @param entries_per_bucket pairs packed into one 64B block (12).
     */
    explicit IndexTable(std::uint64_t total_bytes,
                        std::uint32_t entries_per_bucket = 12);

    /** Find the pointer for @p block; refreshes bucket LRU on hit. */
    std::optional<HistoryPointer> lookup(Addr block);

    /**
     * Insert or refresh the mapping for @p block. Evicts the bucket's
     * LRU pair when the bucket is full.
     */
    void update(Addr block, HistoryPointer pointer);

    /** Bucket number @p block hashes to (for bucket-buffer modeling). */
    std::uint64_t bucketOf(Addr block) const;

    std::uint64_t numBuckets() const { return buckets_; }
    bool unbounded() const { return buckets_ == 0; }
    std::uint64_t footprintBytes() const;

    /** Total pairs currently stored (O(size); for tests/benches). */
    std::uint64_t occupancy() const;

    const IndexTableStats &stats() const { return stats_; }
    void resetStats() { stats_ = IndexTableStats{}; }

  private:
    struct Pair
    {
        Addr block = kInvalidAddr;
        std::uint64_t pointer = 0;
        bool valid = false;
    };

    std::uint32_t entriesPerBucket_;
    std::uint64_t buckets_;
    /** Bounded storage: buckets_ x entriesPerBucket_, MRU first. */
    std::vector<Pair> store_;
    /** Unbounded (idealized) storage. */
    std::unordered_map<Addr, std::uint64_t> map_;
    IndexTableStats stats_;
};

} // namespace stms

#endif // STMS_CORE_INDEX_TABLE_HH
