/**
 * @file
 * On-chip bucket buffer (Sec. 4.3).
 *
 * An 8 KB fully-associative cache of index-table buckets that holds
 * bucket blocks between lookup, update, and write-back, letting STMS
 * delay bucket write-backs until memory bandwidth is available. A hit
 * saves the off-chip read of an update's read-modify-write; dirty
 * buckets are written back on eviction.
 */

#ifndef STMS_CORE_BUCKET_BUFFER_HH
#define STMS_CORE_BUCKET_BUFFER_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.hh"

namespace stms
{

/** Bucket-buffer access statistics. */
struct BucketBufferStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
};

/** Fully-associative LRU cache of index-table bucket numbers. */
class BucketBuffer
{
  public:
    /** @param capacity buckets held (8KB / 64B = 128). */
    explicit BucketBuffer(std::uint32_t capacity = 128);

    /** Probe and refresh LRU. @return true on hit. */
    bool probe(std::uint64_t bucket);

    /**
     * Install a bucket after fetching it from memory.
     * @param[out] writeback_victim set to true when a dirty bucket was
     *             displaced and must be written back.
     * @param[out] victim_bucket the displaced bucket's number, valid
     *             only when @p writeback_victim is set (the write-back
     *             targets the victim's address, not the new bucket's).
     */
    void insert(std::uint64_t bucket, bool &writeback_victim,
                std::uint64_t &victim_bucket);

    void
    insert(std::uint64_t bucket, bool &writeback_victim)
    {
        std::uint64_t victim_bucket = 0;
        insert(bucket, writeback_victim, victim_bucket);
    }

    /** Mark a resident bucket dirty (update applied on chip). */
    void markDirty(std::uint64_t bucket);

    /** Drain all dirty buckets; @return number of write-backs. */
    std::uint32_t flush();

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(lru_.size());
    }

    const BucketBufferStats &stats() const { return stats_; }
    void resetStats() { stats_ = BucketBufferStats{}; }

  private:
    struct Node
    {
        std::uint64_t bucket;
        bool dirty;
    };

    std::uint32_t capacity_;
    std::list<Node> lru_;  ///< MRU at front.
    std::unordered_map<std::uint64_t, std::list<Node>::iterator> index_;
    BucketBufferStats stats_;
};

} // namespace stms

#endif // STMS_CORE_BUCKET_BUFFER_HH
