/**
 * @file
 * Sampled Temporal Memory Streaming — the paper's contribution.
 *
 * STMS combines:
 *  - per-core history buffers logging the off-chip miss sequence
 *    (Sec. 4.2),
 *  - a shared, hash-based index table in main memory whose buckets are
 *    single 64-byte blocks (Sec. 4.3),
 *  - probabilistic sampling of index-table updates (Sec. 4.4),
 *  - per-core stream engines with FIFO address queues feeding a small
 *    prefetch buffer, following variable-length streams with
 *    end-of-stream annotations (Secs. 4.2, 4.5).
 *
 * Each core's engine maintains a small number of stream slots (as in
 * TSE [27], whose stream-following mechanisms STMS reuses): a lookup
 * hit latches a new stream into an idle or worst slot, so one noise
 * hit cannot evict a healthy stream, while re-latching after a stream
 * break stays cheap.
 *
 * Configured with ideal=true, the same machine models the idealized
 * prefetcher of Sec. 5.2: magic on-chip meta-data with zero lookup
 * latency, no meta-data traffic, unbounded tables, always-applied
 * updates. Every experiment in the evaluation compares points in this
 * configuration space.
 */

#ifndef STMS_CORE_STMS_HH
#define STMS_CORE_STMS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/simd.hh"
#include "core/bucket_buffer.hh"
#include "core/history_buffer.hh"
#include "core/index_table.hh"
#include "core/sampler.hh"
#include "core/sharded_index_table.hh"
#include "prefetch/prefetcher.hh"
#include "stats/histogram.hh"

namespace stms
{

/** Full STMS configuration. */
struct StmsConfig
{
    /**
     * Idealized on-chip meta-data (Sec. 5.2): zero-latency lookup, no
     * meta-data traffic. Data prefetches still move real blocks.
     */
    bool ideal = false;

    /** Index-update sampling probability (paper picks 1/8). */
    double samplingProbability = 0.125;

    /** History-buffer retention per core in entries; 0 = unbounded. */
    std::uint64_t historyEntriesPerCore = 1ULL << 20;

    /** Index-table main-memory footprint in bytes; 0 = unbounded. */
    std::uint64_t indexBytes = 16ULL << 20;

    /**
     * Lock-striped index-table shards; 1 = the unsharded legacy
     * structure. Sharding never changes model results — buckets keep
     * their global hash assignment regardless of the shard count —
     * it only spreads lock contention when concurrent runs share a
     * table (see core/sharded_index_table.hh).
     */
    std::uint32_t indexShards = 1;

    /** {address, pointer} pairs per 64-byte bucket (Sec. 5.4). */
    std::uint32_t entriesPerBucket = 12;

    /** History entries packed per 64-byte block (Sec. 5.5). */
    std::uint32_t entriesPerHistoryBlock = 12;

    /** On-chip bucket buffer capacity in buckets (8KB / 64B). */
    std::uint32_t bucketBufferBuckets = 128;

    /** Stream slots per core engine (TSE-style parallel streams). */
    std::uint32_t streamsPerCore = 4;

    /** FIFO address-queue depth per stream (Sec. 4.2). */
    std::uint32_t addressQueueDepth = 32;

    /** Refill a stream's queue when it drains to this many entries. */
    std::uint32_t refillThreshold = 8;

    /** Consecutive unused prefetches that terminate a stream. */
    std::uint32_t killThreshold = 4;

    /**
     * Confidence ramp: a fresh stream may have only rampBase
     * outstanding-unconsumed prefetches; each confirmed consumption
     * widens the window by rampStep, up to addressQueueDepth. Limits
     * the damage of following a mispredicted (noise) stream.
     */
    std::uint32_t rampBase = 4;
    std::uint32_t rampStep = 2;

    /**
     * Maximum entries followed per lookup; 0 = unbounded. Nonzero
     * models single-table fixed prefetch depth (Fig. 6 right).
     */
    std::uint64_t maxStreamDepth = 0;

    /** Write/honor end-of-stream annotations (Sec. 4.5). */
    bool useEndMarks = true;

    /**
     * Index lookups a core may have in flight concurrently. Bucket
     * reads are independent memory accesses, so the engine pipelines
     * them; one-at-a-time lookup loses the misses that arrive during
     * the two round trips (Sec. 5.4 quantifies that loss via MLP).
     */
    std::uint32_t maxLookupsInFlight = 4;

    /**
     * A stream with no consumption or issue progress within this many
     * of the core's misses is considered dead and replaceable.
     */
    std::uint32_t staleWindow = 48;

    /** Ablation: all cores share one history buffer (Sec. 4.2 warns
     *  interleaving obscures repetition). */
    bool sharedHistory = false;

    std::uint64_t seed = 1905;
};

/** STMS-internal statistics. */
struct StmsStats
{
    std::uint64_t logged = 0;             ///< History appends.
    std::uint64_t historyBlockWrites = 0; ///< Packed record writes.
    std::uint64_t lookups = 0;
    std::uint64_t lookupHits = 0;         ///< Pointer found.
    std::uint64_t stalePointers = 0;      ///< Pointer aged out of HB.
    std::uint64_t lookupsSuppressed = 0;  ///< Lookup pipe full.
    std::uint64_t lookupsIgnored = 0;     ///< All slots healthy.
    std::uint64_t streamsStarted = 0;
    std::uint64_t streamsEnded = 0;
    std::uint64_t streamsReplaced = 0;
    std::uint64_t endMarksWritten = 0;
    std::uint64_t pauses = 0;
    std::uint64_t resumes = 0;
    std::uint64_t skipAheads = 0;
    std::uint64_t followed = 0;           ///< Entries streamed.
    std::uint64_t consumed = 0;           ///< Prefetches consumed.
    /** Pump-stall accounting (why the engine stopped issuing). */
    std::uint64_t pumpBreakRoom = 0;      ///< Port in-flight cap.
    std::uint64_t pumpBreakWindow = 0;    ///< Confidence window.
    std::uint64_t pumpBreakOutstanding = 0; ///< Core-wide cap.
    std::uint64_t pumpBreakPause = 0;     ///< End-mark pause.
    std::uint64_t queueDry = 0;           ///< Queue empty at pump end.
    /** Stream length distribution weighted by consumed blocks
     *  (Fig. 6 left). */
    Log2Histogram streamLengths{24};
};

/** The STMS prefetcher. */
class StmsPrefetcher : public Prefetcher
{
  public:
    explicit StmsPrefetcher(const StmsConfig &config = {});

    const std::string &name() const override { return name_; }
    void attach(PrefetchPort &port, std::uint32_t num_cores,
                std::uint32_t id) override;

    void onOffchipRead(CoreId core, Addr block) override;
    void onPrefetchUsed(CoreId core, Addr block, bool partial) override;
    void onPrefetchUnused(CoreId core, Addr block) override;
    void onForeignCovered(CoreId core, Addr block) override;

    /** Chunk-dispatch hint: warm the index buckets the upcoming
     *  accesses would probe (ShardedIndexTable::prefetchBatch).
     *  Host-side only; never touches model state or stats. */
    void onAccessHint(CoreId core,
                      std::span<const Addr> addrs) override;

    void resetStats() override;

    const StmsStats &stats() const { return stats_; }
    const StmsConfig &config() const { return config_; }
    const ShardedIndexTable &indexTable() const { return index_; }
    ShardedIndexTable &indexTable() { return index_; }
    const HistoryBuffer &historyBuffer(CoreId core) const;
    /** Mutable history access (tests/tools, e.g. planting end marks). */
    HistoryBuffer &historyBufferMutable(CoreId core)
    {
        return *history_[config_.sharedHistory ? 0 : core];
    }
    const UpdateSampler &sampler() const { return sampler_; }
    const BucketBuffer &bucketBuffer() const { return bucketBuffer_; }

    /** Meta-data main-memory footprint (history + index). */
    std::uint64_t metaFootprintBytes() const;

  private:
    /** One fetched-but-not-yet-prefetched queue slot. */
    struct QueuedEntry
    {
        SeqNum seq;
        Addr block;
        bool endMark;
    };

    /**
     * Flat {block -> seq} set of a stream's issued-unconsumed
     * prefetches. Bounded by the confidence window (at most
     * addressQueueDepth entries), probed on every prefetch-buffer hit
     * and eviction — a SIMD sweep over one or two cache lines where
     * the hash map chased a heap node per probe. Keys are unique and
     * nothing observes iteration order, so swap-removal (including
     * the bulk retire sweep) cannot perturb model results.
     */
    class IssuedSet
    {
      public:
        std::uint64_t size() const { return count_; }
        bool empty() const { return count_ == 0; }

        /** Seq slot of @p block, or nullptr. */
        SeqNum *
        find(Addr block)
        {
            const std::size_t slot =
                simd::findFirstEqual(blocks_.data(), count_, block);
            return slot == simd::kNpos ? nullptr : &seqs_[slot];
        }

        /** Map-style upsert of {block, seq}. */
        void
        insert(Addr block, SeqNum seq)
        {
            if (SeqNum *existing = find(block)) {
                *existing = seq;
                return;
            }
            if (count_ == slots_)
                grow();
            blocks_[count_] = block;
            seqs_[count_] = seq;
            ++count_;
        }

        /** Remove the entry whose seq slot find() returned. */
        void
        erase(SeqNum *seq)
        {
            const std::size_t slot =
                static_cast<std::size_t>(seq - seqs_.data());
            --count_;
            blocks_[slot] = blocks_[count_];
            seqs_[slot] = seqs_[count_];
        }

        /** Drop every entry with seq < limit (retire sweep). */
        void
        retireBelow(SeqNum limit)
        {
            for (std::size_t slot = 0; slot < count_;) {
                if (seqs_[slot] < limit) {
                    --count_;
                    blocks_[slot] = blocks_[count_];
                    seqs_[slot] = seqs_[count_];
                } else {
                    ++slot;
                }
            }
        }

      private:
        void
        grow()
        {
            const std::size_t grown = slots_ == 0 ? 8 : slots_ * 2;
            ArenaBuffer<Addr> blocks(grown + simd::kScanPadU64);
            ArenaBuffer<SeqNum> seqs(grown);
            for (std::size_t slot = 0; slot < count_; ++slot) {
                blocks[slot] = blocks_[slot];
                seqs[slot] = seqs_[slot];
            }
            blocks_ = std::move(blocks);
            seqs_ = std::move(seqs);
            slots_ = grown;
        }

        ArenaBuffer<Addr> blocks_;  ///< simd.hh scan padding.
        ArenaBuffer<SeqNum> seqs_;
        std::size_t slots_ = 0;
        std::size_t count_ = 0;
    };

    /** One stream slot of a core engine (Fig. 2 "stream engine"). */
    struct Stream
    {
        bool active = false;
        CoreId hbOwner = 0;
        SeqNum nextFetchSeq = 0;
        std::deque<QueuedEntry> queue;
        IssuedSet issued;
        SeqNum lastConsumed = kInvalidSeq;
        Addr pausedAt = kInvalidAddr;
        std::uint32_t unusedStreak = 0;
        bool fetchInFlight = false;
        std::uint64_t followed = 0;
        std::uint64_t consumed = 0;
        /** missClock_ value at the last consumption or issue. */
        std::uint64_t lastActivity = 0;
        /** Generation guard for in-flight fetch callbacks. */
        std::uint64_t generation = 0;
    };

    HistoryBuffer &historyOf(CoreId owner);
    CoreId historyOwner(CoreId core) const;
    Stream &slot(CoreId core, std::uint32_t index);

    void logMiss(CoreId core, Addr block);
    void applyIndexUpdate(Addr block, HistoryPointer pointer);
    void startLookup(CoreId core, Addr block);
    void startStream(CoreId core, HistoryPointer pointer);
    void fetchMore(CoreId core, std::uint32_t slot_index);
    void fillQueue(CoreId core, std::uint32_t slot_index);
    void pump(CoreId core, std::uint32_t slot_index);
    void endStream(CoreId core, std::uint32_t slot_index,
                   bool write_end_mark);

    /** True if the stream has made progress recently. */
    bool isHealthy(const Stream &stream) const;

    /** Drop issued entries the demand stream has moved past. */
    static void retirePassed(IssuedSet &issued, SeqNum upto);

    /** Total issued-unconsumed blocks across a core's slots. */
    std::uint64_t issuedOutstanding(CoreId core) const;

    StmsConfig config_;
    std::string name_ = "stms";
    ShardedIndexTable index_;
    BucketBuffer bucketBuffer_;
    UpdateSampler sampler_;
    std::vector<std::unique_ptr<HistoryBuffer>> history_;
    /** streams_[core][slot]. */
    std::vector<std::vector<Stream>> streams_;
    std::vector<std::uint32_t> lookupsInFlight_;
    /** Queue-fill scratch for HistoryBuffer::readWindow (one packed
     *  history block per fetch; fillQueue is never reentered). */
    ArenaBuffer<Addr> fetchBlocks_;
    ArenaBuffer<std::uint8_t> fetchMarks_;
    /** Lifetime miss count (never reset; staleness clock). */
    std::uint64_t missClock_ = 0;
    StmsStats stats_;
};

/** Convenience: the idealized-TMS configuration of Sec. 5.2. */
StmsConfig makeIdealTmsConfig();

} // namespace stms

#endif // STMS_CORE_STMS_HH
