#include "core/stms.hh"

#include <algorithm>

#include "common/log.hh"
#include "prefetch/meta_addr.hh"

namespace stms
{

StmsConfig
makeIdealTmsConfig()
{
    StmsConfig config;
    config.ideal = true;
    config.samplingProbability = 1.0;
    config.historyEntriesPerCore = 0;  // Unbounded.
    config.indexBytes = 0;             // Unbounded.
    return config;
}

StmsPrefetcher::StmsPrefetcher(const StmsConfig &config)
    : config_(config),
      index_(config.indexBytes, config.entriesPerBucket,
             config.indexShards),
      bucketBuffer_(config.bucketBufferBuckets),
      sampler_(config.samplingProbability, config.seed)
{
    stms_assert(config.addressQueueDepth > 0, "address queue needs depth");
    stms_assert(config.killThreshold > 0, "kill threshold must be >= 1");
    stms_assert(config.streamsPerCore > 0, "need at least one stream slot");
    stms_assert(config.maxLookupsInFlight > 0, "need lookup capacity");
}

void
StmsPrefetcher::attach(PrefetchPort &port, std::uint32_t num_cores,
                       std::uint32_t id)
{
    Prefetcher::attach(port, num_cores, id);
    const std::uint32_t buffers = config_.sharedHistory ? 1 : num_cores;
    history_.clear();
    for (std::uint32_t i = 0; i < buffers; ++i) {
        history_.push_back(std::make_unique<HistoryBuffer>(
            config_.historyEntriesPerCore,
            config_.entriesPerHistoryBlock));
    }
    // Streams hold move-only arena-backed sets, so the slot matrix is
    // sized in place instead of assigned from a copied prototype.
    streams_.clear();
    streams_.resize(num_cores);
    for (auto &slots : streams_)
        slots.resize(config_.streamsPerCore);
    lookupsInFlight_.assign(num_cores, 0);
    fetchBlocks_.reset(config_.entriesPerHistoryBlock);
    fetchMarks_.reset(config_.entriesPerHistoryBlock);
}

CoreId
StmsPrefetcher::historyOwner(CoreId core) const
{
    return config_.sharedHistory ? 0 : core;
}

HistoryBuffer &
StmsPrefetcher::historyOf(CoreId owner)
{
    return *history_[owner];
}

const HistoryBuffer &
StmsPrefetcher::historyBuffer(CoreId core) const
{
    return *history_[config_.sharedHistory ? 0 : core];
}

StmsPrefetcher::Stream &
StmsPrefetcher::slot(CoreId core, std::uint32_t index)
{
    return streams_[core][index];
}

std::uint64_t
StmsPrefetcher::metaFootprintBytes() const
{
    std::uint64_t total = index_.footprintBytes();
    for (const auto &hb : history_)
        total += hb->footprintBytes();
    return total;
}

/**
 * Drop issued-set entries the demand stream has moved past: once the
 * core consumed (or skipped to) @p upto, older issued blocks are dead
 * weight in the confidence window. Their buffer entries still age out
 * via LRU and get counted erroneous there; a small slack tolerates
 * local reordering.
 */
void
StmsPrefetcher::retirePassed(IssuedSet &issued, SeqNum upto)
{
    constexpr SeqNum slack = 8;
    if (upto == kInvalidSeq || upto < slack)
        return;
    issued.retireBelow(upto - slack);
}

bool
StmsPrefetcher::isHealthy(const Stream &stream) const
{
    if (!stream.active || stream.pausedAt != kInvalidAddr ||
        stream.unusedStreak > 0)
        return false;
    if (stream.queue.empty() && stream.issued.empty())
        return false;
    return missClock_ - stream.lastActivity <= config_.staleWindow;
}

std::uint64_t
StmsPrefetcher::issuedOutstanding(CoreId core) const
{
    std::uint64_t total = 0;
    for (const Stream &stream : streams_[core])
        total += stream.issued.size();
    return total;
}

void
StmsPrefetcher::logMiss(CoreId core, Addr block)
{
    ++missClock_;
    ++stats_.logged;
    const CoreId owner = historyOwner(core);
    HistoryBuffer &hb = historyOf(owner);
    const SeqNum seq = hb.append(block);

    // One packed block write per entriesPerHistoryBlock appends.
    if (hb.lastAppendCompletedBlock()) {
        ++stats_.historyBlockWrites;
        if (!config_.ideal) {
            port_->metaRequest(
                TrafficClass::MetaRecord,
                metaHistoryAddr(owner,
                                seq / config_.entriesPerHistoryBlock),
                1, nullptr);
        }
    }

    // Probabilistic index update (Sec. 4.4).
    if (sampler_.shouldUpdate())
        applyIndexUpdate(block, HistoryPointer{owner, seq});
}

void
StmsPrefetcher::applyIndexUpdate(Addr block, HistoryPointer pointer)
{
    index_.update(block, pointer);
    if (config_.ideal)
        return;

    // Traffic model: a bucket-buffer hit applies the update on chip
    // (dirty, written back on eviction); a miss costs the read half of
    // the read-modify-write now and the write half on eviction.
    const std::uint64_t bucket = index_.bucketOf(block);
    if (bucketBuffer_.probe(bucket)) {
        bucketBuffer_.markDirty(bucket);
        return;
    }
    port_->metaRequest(TrafficClass::MetaUpdate, metaIndexAddr(bucket),
                       1, nullptr);
    bool writeback = false;
    std::uint64_t victim = 0;
    bucketBuffer_.insert(bucket, writeback, victim);
    bucketBuffer_.markDirty(bucket);
    if (writeback) {
        port_->metaRequest(TrafficClass::MetaUpdate,
                           metaIndexAddr(victim), 1, nullptr);
    }
}

void
StmsPrefetcher::onOffchipRead(CoreId core, Addr block)
{
    auto &slots = streams_[core];

    // Resume a stream paused at an end-of-stream annotation if the
    // core explicitly requested the annotated address (Sec. 4.5).
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        Stream &stream = slots[i];
        if (stream.active && stream.pausedAt == block) {
            ++stats_.resumes;
            stream.pausedAt = kInvalidAddr;
            if (!stream.queue.empty() &&
                stream.queue.front().block == block) {
                stream.lastConsumed = stream.queue.front().seq;
                stream.queue.pop_front();
            }
            stream.lastActivity = missClock_ + 1;
            logMiss(core, block);
            pump(core, i);
            return;
        }
    }

    // Skip-ahead: the miss matches an address still waiting in some
    // stream's queue — that stream is correct but running behind.
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        Stream &stream = slots[i];
        if (!stream.active)
            continue;
        const std::size_t scan =
            std::min<std::size_t>(stream.queue.size(), 8);
        for (std::size_t k = 0; k < scan; ++k) {
            if (stream.queue[k].block == block) {
                ++stats_.skipAheads;
                stream.lastConsumed = stream.queue[k].seq;
                stream.unusedStreak = 0;
                stream.lastActivity = missClock_ + 1;
                // A skip confirms the stream is on the right path —
                // it counts toward the confidence window even though
                // the prefetch itself was late.
                ++stream.consumed;
                stream.queue.erase(stream.queue.begin() +
                                   static_cast<std::ptrdiff_t>(k));
                retirePassed(stream.issued, stream.lastConsumed);
                logMiss(core, block);
                pump(core, i);
                return;
            }
        }
    }

    // Look up a previously-recorded stream before logging this
    // occurrence, so the pointer found refers to the prior recurrence.
    if (lookupsInFlight_[core] >= config_.maxLookupsInFlight)
        ++stats_.lookupsSuppressed;
    else
        startLookup(core, block);

    logMiss(core, block);
}

void
StmsPrefetcher::startLookup(CoreId core, Addr block)
{
    ++stats_.lookups;
    auto pointer = index_.lookup(block);
    bool fresh = false;
    if (pointer) {
        ++stats_.lookupHits;
        fresh = historyOf(pointer->core).valid(pointer->seq);
        if (!fresh)
            ++stats_.stalePointers;
    }

    if (config_.ideal) {
        if (fresh)
            startStream(core, *pointer);
        return;
    }

    // Timing + traffic: one memory block read unless the bucket is
    // resident in the on-chip bucket buffer.
    const std::uint64_t bucket = index_.bucketOf(block);
    if (bucketBuffer_.probe(bucket)) {
        if (fresh)
            startStream(core, *pointer);
        return;
    }

    ++lookupsInFlight_[core];
    const HistoryPointer target =
        fresh ? *pointer : HistoryPointer{0, kInvalidSeq};
    port_->metaRequest(
        TrafficClass::MetaLookup, metaIndexAddr(bucket), 1,
        [this, core, bucket, target](Cycle) {
            --lookupsInFlight_[core];
            bool writeback = false;
            std::uint64_t victim = 0;
            bucketBuffer_.insert(bucket, writeback, victim);
            if (writeback) {
                port_->metaRequest(TrafficClass::MetaUpdate,
                                   metaIndexAddr(victim), 1, nullptr);
            }
            if (target.seq != kInvalidSeq)
                startStream(core, target);
        });
}

void
StmsPrefetcher::startStream(CoreId core, HistoryPointer pointer)
{
    auto &slots = streams_[core];

    // Duplicate suppression: a mid-stream miss (e.g., a skip gap) can
    // find a pointer into history ground an active stream is already
    // covering; latching there would only duplicate the leader.
    const SeqNum target = pointer.seq + 1;
    const SeqNum backward = 8ULL * config_.addressQueueDepth;
    const SeqNum forward = 2ULL * config_.addressQueueDepth;
    for (const Stream &stream : slots) {
        if (!stream.active || stream.hbOwner != pointer.core)
            continue;
        const SeqNum lo = stream.nextFetchSeq > backward
                              ? stream.nextFetchSeq - backward
                              : 0;
        if (target >= lo && target <= stream.nextFetchSeq + forward) {
            ++stats_.lookupsIgnored;
            return;
        }
    }

    // Slot choice: an idle slot first; otherwise the least healthy /
    // least recently active one. All-healthy slots mean the engine is
    // saturated with good streams — drop the new candidate.
    std::uint32_t victim = slots.size();
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].active) {
            victim = i;
            break;
        }
    }
    if (victim == slots.size()) {
        std::uint32_t worst = slots.size();
        for (std::uint32_t i = 0; i < slots.size(); ++i) {
            if (isHealthy(slots[i]))
                continue;
            if (worst == slots.size() ||
                slots[i].lastActivity < slots[worst].lastActivity)
                worst = i;
        }
        if (worst == slots.size()) {
            ++stats_.lookupsIgnored;
            return;
        }
        victim = worst;
        ++stats_.streamsReplaced;
        endStream(core, victim, /*write_end_mark=*/true);
    }

    ++stats_.streamsStarted;
    Stream &stream = slots[victim];
    const std::uint64_t generation = stream.generation + 1;
    stream = Stream{};
    stream.generation = generation;
    stream.active = true;
    stream.hbOwner = pointer.core;
    // The pointer names the trigger's own entry; the stream is its
    // successors.
    stream.nextFetchSeq = pointer.seq + 1;
    stream.lastConsumed = pointer.seq;
    stream.lastActivity = missClock_;
    fetchMore(core, victim);
}

void
StmsPrefetcher::fetchMore(CoreId core, std::uint32_t slot_index)
{
    Stream &stream = slot(core, slot_index);
    if (!stream.active || stream.fetchInFlight)
        return;
    if (config_.maxStreamDepth != 0 &&
        stream.followed >= config_.maxStreamDepth)
        return;

    HistoryBuffer &hb = historyOf(stream.hbOwner);
    if (stream.nextFetchSeq >= hb.head())
        return;  // Caught up with the log head.
    if (!hb.valid(stream.nextFetchSeq)) {
        // The stream body aged out of the circular buffer.
        endStream(core, slot_index, /*write_end_mark=*/false);
        return;
    }

    if (config_.ideal) {
        fillQueue(core, slot_index);
        pump(core, slot_index);
        return;
    }

    stream.fetchInFlight = true;
    const std::uint64_t generation = stream.generation;
    port_->metaRequest(
        TrafficClass::MetaLookup,
        metaHistoryAddr(stream.hbOwner,
                        stream.nextFetchSeq /
                            config_.entriesPerHistoryBlock),
        1, [this, core, slot_index, generation](Cycle) {
            // The stream this fetch belonged to may have been replaced
            // while the read was in flight; its data is then useless.
            Stream &s = slot(core, slot_index);
            if (s.generation != generation)
                return;
            s.fetchInFlight = false;
            if (!s.active)
                return;
            fillQueue(core, slot_index);
            pump(core, slot_index);
        });
}

void
StmsPrefetcher::fillQueue(CoreId core, std::uint32_t slot_index)
{
    Stream &stream = slot(core, slot_index);
    HistoryBuffer &hb = historyOf(stream.hbOwner);

    // Batched form of the old entry-at-a-time walk: the fetch budget
    // is resolved up front (identical to evaluating the loop
    // conditions per entry — validity is monotone toward the head and
    // nothing appends mid-fill), then one readWindow() copies the
    // whole run out of the packed log.
    std::uint64_t budget = config_.entriesPerHistoryBlock;
    budget = std::min<std::uint64_t>(
        budget, stream.queue.size() < config_.addressQueueDepth
                    ? config_.addressQueueDepth - stream.queue.size()
                    : 0);
    budget = std::min<std::uint64_t>(
        budget, stream.nextFetchSeq < hb.head()
                    ? hb.head() - stream.nextFetchSeq
                    : 0);
    if (config_.maxStreamDepth != 0) {
        budget = std::min<std::uint64_t>(
            budget, stream.followed < config_.maxStreamDepth
                        ? config_.maxStreamDepth - stream.followed
                        : 0);
    }
    if (budget == 0)
        return;
    if (!hb.valid(stream.nextFetchSeq)) {
        // The stream body aged out of the circular buffer.
        endStream(core, slot_index, /*write_end_mark=*/false);
        return;
    }

    const auto fetched = static_cast<std::uint32_t>(budget);
    hb.readWindow(stream.nextFetchSeq, fetched, fetchBlocks_.data(),
                  fetchMarks_.data());
    for (std::uint32_t i = 0; i < fetched; ++i) {
        stream.queue.push_back(QueuedEntry{stream.nextFetchSeq + i,
                                           fetchBlocks_[i],
                                           fetchMarks_[i] != 0});
    }
    stream.nextFetchSeq += fetched;
    stream.followed += fetched;
    stats_.followed += fetched;
}

void
StmsPrefetcher::pump(CoreId core, std::uint32_t slot_index)
{
    Stream &stream = slot(core, slot_index);
    if (!stream.active)
        return;

    while (!stream.queue.empty() && stream.pausedAt == kInvalidAddr) {
        QueuedEntry entry = stream.queue.front();
        if (entry.endMark && config_.useEndMarks) {
            // Pause at the annotation; resume only if the core
            // explicitly requests this address (Sec. 4.5).
            stream.pausedAt = entry.block;
            ++stats_.pauses;
            ++stats_.pumpBreakPause;
            break;
        }
        if (port_->prefetchRoom(*this, core) == 0) {
            ++stats_.pumpBreakRoom;
            break;
        }
        // Confidence window: ramp up with confirmed consumption; the
        // core's slots together may not overrun the prefetch buffer.
        const std::uint64_t window = std::min<std::uint64_t>(
            config_.addressQueueDepth,
            config_.rampBase + config_.rampStep * stream.consumed);
        if (stream.issued.size() >= window) {
            ++stats_.pumpBreakWindow;
            break;
        }
        if (issuedOutstanding(core) >= config_.addressQueueDepth) {
            ++stats_.pumpBreakOutstanding;
            break;
        }
        stream.queue.pop_front();
        const IssueResult result =
            port_->issuePrefetch(*this, core, entry.block);
        if (result == IssueResult::Issued) {
            stream.issued.insert(entry.block, entry.seq);
            stream.lastActivity = missClock_;
        } else if (result == IssueResult::NoResources) {
            stream.queue.push_front(entry);
            break;
        }
        // AlreadyPresent: the block is on chip; the stream advances.
    }

    if (stream.queue.empty())
        ++stats_.queueDry;
    if (stream.active && stream.pausedAt == kInvalidAddr &&
        stream.queue.size() <= config_.refillThreshold) {
        fetchMore(core, slot_index);
    }
}

void
StmsPrefetcher::onPrefetchUsed(CoreId core, Addr block, bool partial)
{
    (void)partial;
    logMiss(core, block);  // Prefetched hits are logged too (Sec. 4.2).

    auto &slots = streams_[core];
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        Stream &stream = slots[i];
        SeqNum *issued_seq = stream.issued.find(block);
        if (issued_seq == nullptr)
            continue;
        if (stream.lastConsumed == kInvalidSeq ||
            *issued_seq > stream.lastConsumed) {
            stream.lastConsumed = *issued_seq;
        }
        stream.issued.erase(issued_seq);
        stream.unusedStreak = 0;
        ++stream.consumed;
        ++stats_.consumed;
        stream.lastActivity = missClock_;
        retirePassed(stream.issued, stream.lastConsumed);
        pump(core, i);
        return;
    }
}

void
StmsPrefetcher::onPrefetchUnused(CoreId core, Addr block)
{
    auto &slots = streams_[core];
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        Stream &stream = slots[i];
        SeqNum *issued_seq = stream.issued.find(block);
        if (issued_seq == nullptr)
            continue;
        stream.issued.erase(issued_seq);
        ++stream.unusedStreak;
        if (stream.unusedStreak >= config_.killThreshold)
            endStream(core, i, /*write_end_mark=*/true);
        return;
    }
}

void
StmsPrefetcher::onForeignCovered(CoreId core, Addr block)
{
    // A different prefetcher (the base stride engine) covered this
    // miss; it is still part of the correct-path miss sequence.
    logMiss(core, block);
}

void
StmsPrefetcher::onAccessHint(CoreId core, std::span<const Addr> addrs)
{
    (void)core;
    // Warm the bucket lines the upcoming accesses would probe if they
    // miss off-chip. prefetchBatch is __builtin_prefetch only — no
    // stats, no locks, no simulated traffic — so this hook cannot
    // perturb model output no matter how chunks are cut.
    index_.prefetchBatch(addrs);
}

void
StmsPrefetcher::endStream(CoreId core, std::uint32_t slot_index,
                          bool write_end_mark)
{
    Stream &stream = slot(core, slot_index);
    if (!stream.active)
        return;
    ++stats_.streamsEnded;
    if (stream.consumed > 0)
        stats_.streamLengths.sample(stream.consumed, stream.consumed);

    // Annotate the entry following the last contiguous
    // successfully-prefetched address (Sec. 4.5).
    if (write_end_mark && config_.useEndMarks &&
        stream.lastConsumed != kInvalidSeq && stream.consumed > 0) {
        HistoryBuffer &hb = historyOf(stream.hbOwner);
        if (hb.setEndMark(stream.lastConsumed + 1)) {
            ++stats_.endMarksWritten;
            if (!config_.ideal) {
                port_->metaRequest(
                    TrafficClass::MetaRecord,
                    metaHistoryAddr(stream.hbOwner,
                                    (stream.lastConsumed + 1) /
                                        config_.entriesPerHistoryBlock),
                    1, nullptr);
            }
        }
    }

    const std::uint64_t generation = stream.generation + 1;
    stream = Stream{};
    stream.generation = generation;
}

void
StmsPrefetcher::resetStats()
{
    stats_ = StmsStats{};
    index_.resetStats();
    bucketBuffer_.resetStats();
    sampler_.resetStats();
}

} // namespace stms
