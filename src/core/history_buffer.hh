/**
 * @file
 * Per-core history buffer (Sec. 4.2).
 *
 * A circular log of the core's correct-path off-chip miss addresses
 * and prefetched hits, allocated in a private region of main memory.
 * Entries are packed twelve to a 64-byte block, so one block write is
 * charged per twelve appends (Sec. 5.5: "a single densely-packed
 * history buffer write is performed for every twelve off-chip read
 * misses").
 *
 * The buffer also carries the end-of-stream annotations STMS writes
 * when a followed stream stops being consumed (Sec. 4.5): a marked
 * entry pauses streaming until the core explicitly requests it.
 *
 * Sequence numbers grow monotonically; an entry is readable while it
 * is within the retention window (capacity entries behind the head),
 * which is exactly the staleness rule index-table pointers are checked
 * against.
 *
 * Storage is structure-of-arrays — block addresses in one padded
 * array, end marks in another — so the window operations are flat
 * kernels: readWindow() hands a stream engine a whole packed block of
 * successors with two copies instead of an entry-at-a-time walk, and
 * scanWindow() runs the simd.hh first-match scan over the retained
 * window. Both are bit-identical to the per-entry loops they replace
 * (tests/core/history_buffer_test.cc pins this against the scalar
 * reference).
 */

#ifndef STMS_CORE_HISTORY_BUFFER_HH
#define STMS_CORE_HISTORY_BUFFER_HH

#include <cstdint>

#include "common/arena.hh"
#include "common/types.hh"

namespace stms
{

/** One logged miss address plus its end-of-stream annotation bit. */
struct HistoryEntry
{
    Addr block = kInvalidAddr;
    bool endMark = false;
};

/** Circular miss-address log with block-packed write accounting. */
class HistoryBuffer
{
  public:
    /**
     * @param capacity_entries retention window; 0 = unbounded
     *        (idealized on-chip meta-data).
     * @param entries_per_block packing density for write accounting.
     */
    explicit HistoryBuffer(std::uint64_t capacity_entries,
                           std::uint32_t entries_per_block = 12);

    /**
     * Append a miss address.
     * @return the sequence number of the new entry.
     */
    SeqNum append(Addr block);

    /** Next sequence number to be written. */
    SeqNum head() const { return head_; }

    /** Entries appended over the buffer's lifetime. */
    std::uint64_t totalAppends() const { return head_; }

    /** True if @p seq is still within the retention window. */
    bool valid(SeqNum seq) const;

    /** Read an entry; @p seq must satisfy valid(). */
    HistoryEntry at(SeqNum seq) const;

    /**
     * Copy the @p max_entries entries starting at @p first into
     * @p blocks / @p marks (wrap handled internally). @p first must
     * satisfy valid() and the window [first, first + max_entries)
     * must not pass head(). The stream engines' queue-fill path.
     */
    void readWindow(SeqNum first, std::uint32_t max_entries,
                    Addr *blocks, std::uint8_t *marks) const;

    /**
     * First sequence number in [first, head()) whose logged address
     * equals @p block, or kInvalidSeq. @p first must satisfy valid()
     * or equal head(). SIMD first-match over the retained window,
     * bit-identical to the scalar walk.
     */
    SeqNum scanWindow(SeqNum first, Addr block) const;

    /**
     * Set the end-of-stream mark on @p seq if it is still retained.
     * @return true if the mark was applied.
     */
    bool setEndMark(SeqNum seq);

    /**
     * True when the most recent append completed a packed block — the
     * caller charges one block of MetaRecord write traffic.
     */
    bool lastAppendCompletedBlock() const;

    std::uint64_t capacity() const { return capacity_; }
    bool unbounded() const { return capacity_ == 0; }
    std::uint32_t entriesPerBlock() const { return entriesPerBlock_; }

    /** Main-memory footprint in bytes (entries packed 12/block). */
    std::uint64_t footprintBytes() const;

  private:
    /** Storage slot of @p seq (caller checked valid()). */
    std::uint64_t
    slotOf(SeqNum seq) const
    {
        return unbounded() ? seq : seq % capacity_;
    }

    /** Grow the unbounded arrays to hold at least one more entry. */
    void growUnbounded();

    std::uint64_t capacity_;
    std::uint32_t entriesPerBlock_;
    /**
     * SoA entry storage: blocks_ carries simd.hh scan padding;
     * marks_ is the end-mark byte per slot. Bounded mode sizes both
     * at capacity_ once; unbounded mode doubles them on demand.
     * Slots are written by append() before any read can see them
     * (valid() bounds every access by head_), so the storage is
     * allocated uninitialized — no zero-fill, pages fault in as the
     * log grows — and comes from the run arena when one is installed.
     */
    ArenaBuffer<Addr> blocks_;
    ArenaBuffer<std::uint8_t> marks_;
    /** Allocated entry slots (excludes scan padding). */
    std::uint64_t slots_ = 0;
    SeqNum head_ = 0;
};

} // namespace stms

#endif // STMS_CORE_HISTORY_BUFFER_HH
