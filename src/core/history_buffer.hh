/**
 * @file
 * Per-core history buffer (Sec. 4.2).
 *
 * A circular log of the core's correct-path off-chip miss addresses
 * and prefetched hits, allocated in a private region of main memory.
 * Entries are packed twelve to a 64-byte block, so one block write is
 * charged per twelve appends (Sec. 5.5: "a single densely-packed
 * history buffer write is performed for every twelve off-chip read
 * misses").
 *
 * The buffer also carries the end-of-stream annotations STMS writes
 * when a followed stream stops being consumed (Sec. 4.5): a marked
 * entry pauses streaming until the core explicitly requests it.
 *
 * Sequence numbers grow monotonically; an entry is readable while it
 * is within the retention window (capacity entries behind the head),
 * which is exactly the staleness rule index-table pointers are checked
 * against.
 */

#ifndef STMS_CORE_HISTORY_BUFFER_HH
#define STMS_CORE_HISTORY_BUFFER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace stms
{

/** One logged miss address plus its end-of-stream annotation bit. */
struct HistoryEntry
{
    Addr block = kInvalidAddr;
    bool endMark = false;
};

/** Circular miss-address log with block-packed write accounting. */
class HistoryBuffer
{
  public:
    /**
     * @param capacity_entries retention window; 0 = unbounded
     *        (idealized on-chip meta-data).
     * @param entries_per_block packing density for write accounting.
     */
    explicit HistoryBuffer(std::uint64_t capacity_entries,
                           std::uint32_t entries_per_block = 12);

    /**
     * Append a miss address.
     * @return the sequence number of the new entry.
     */
    SeqNum append(Addr block);

    /** Next sequence number to be written. */
    SeqNum head() const { return head_; }

    /** Entries appended over the buffer's lifetime. */
    std::uint64_t totalAppends() const { return head_; }

    /** True if @p seq is still within the retention window. */
    bool valid(SeqNum seq) const;

    /** Read an entry; @p seq must satisfy valid(). */
    const HistoryEntry &at(SeqNum seq) const;

    /**
     * Set the end-of-stream mark on @p seq if it is still retained.
     * @return true if the mark was applied.
     */
    bool setEndMark(SeqNum seq);

    /**
     * True when the most recent append completed a packed block — the
     * caller charges one block of MetaRecord write traffic.
     */
    bool lastAppendCompletedBlock() const;

    std::uint64_t capacity() const { return capacity_; }
    bool unbounded() const { return capacity_ == 0; }
    std::uint32_t entriesPerBlock() const { return entriesPerBlock_; }

    /** Main-memory footprint in bytes (entries packed 12/block). */
    std::uint64_t footprintBytes() const;

  private:
    std::uint64_t capacity_;
    std::uint32_t entriesPerBlock_;
    /** Bounded (circular) storage. Allocated uninitialized: an entry
     *  is written by append() before any read can see it (valid()
     *  bounds every access by head_), so the multi-megabyte window
     *  costs no zero-fill and faults in only as the log grows. */
    std::unique_ptr<HistoryEntry[]> store_;
    /** Unbounded (idealized) storage, grown on append. */
    std::vector<HistoryEntry> grow_;
    SeqNum head_ = 0;
};

} // namespace stms

#endif // STMS_CORE_HISTORY_BUFFER_HH
