#include "core/history_buffer.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "common/simd.hh"

namespace stms
{

HistoryBuffer::HistoryBuffer(std::uint64_t capacity_entries,
                             std::uint32_t entries_per_block)
    : capacity_(capacity_entries), entriesPerBlock_(entries_per_block)
{
    stms_assert(entries_per_block > 0, "entriesPerBlock must be nonzero");
    if (capacity_ > 0) {
        blocks_.reset(capacity_ + simd::kScanPadU64);
        marks_.reset(capacity_);
        slots_ = capacity_;
    }
}

void
HistoryBuffer::growUnbounded()
{
    const std::uint64_t grown = slots_ == 0 ? 4096 : slots_ * 2;
    ArenaBuffer<Addr> blocks(grown + simd::kScanPadU64);
    ArenaBuffer<std::uint8_t> marks(grown);
    if (head_ > 0) {
        std::memcpy(blocks.data(), blocks_.data(),
                    head_ * sizeof(Addr));
        std::memcpy(marks.data(), marks_.data(), head_);
    }
    blocks_ = std::move(blocks);
    marks_ = std::move(marks);
    slots_ = grown;
}

SeqNum
HistoryBuffer::append(Addr block)
{
    // Grow before claiming the slot: growUnbounded() copies exactly
    // head_ written entries, so head_ must not count this append yet.
    if (unbounded() && head_ >= slots_)
        growUnbounded();
    const SeqNum seq = head_++;
    const std::uint64_t slot = slotOf(seq);
    blocks_[slot] = block;
    marks_[slot] = 0;
    return seq;
}

bool
HistoryBuffer::valid(SeqNum seq) const
{
    if (seq >= head_)
        return false;
    if (unbounded())
        return true;
    return head_ - seq <= capacity_;
}

HistoryEntry
HistoryBuffer::at(SeqNum seq) const
{
    stms_assert(valid(seq), "history read of invalid seq %llu (head %llu)",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(head_));
    const std::uint64_t slot = slotOf(seq);
    return HistoryEntry{blocks_[slot], marks_[slot] != 0};
}

void
HistoryBuffer::readWindow(SeqNum first, std::uint32_t max_entries,
                          Addr *blocks, std::uint8_t *marks) const
{
    if (max_entries == 0)
        return;
    stms_assert(valid(first) && first + max_entries <= head_,
                "history window [%llu, +%u) outside retained log "
                "(head %llu)",
                static_cast<unsigned long long>(first), max_entries,
                static_cast<unsigned long long>(head_));
    std::uint64_t slot = slotOf(first);
    std::uint32_t copied = 0;
    while (copied < max_entries) {
        // One contiguous segment per pass; a wrap costs a second pass.
        const std::uint64_t run = unbounded()
                                      ? max_entries - copied
                                      : std::min<std::uint64_t>(
                                            max_entries - copied,
                                            capacity_ - slot);
        std::memcpy(blocks + copied, blocks_.data() + slot,
                    run * sizeof(Addr));
        std::memcpy(marks + copied, marks_.data() + slot, run);
        copied += static_cast<std::uint32_t>(run);
        slot = 0;
    }
}

SeqNum
HistoryBuffer::scanWindow(SeqNum first, Addr block) const
{
    stms_assert(first == head_ || valid(first),
                "history scan from invalid seq %llu (head %llu)",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(head_));
    SeqNum seq = first;
    while (seq < head_) {
        const std::uint64_t slot = slotOf(seq);
        const std::uint64_t run =
            unbounded() ? head_ - seq
                        : std::min<std::uint64_t>(head_ - seq,
                                                  capacity_ - slot);
        const std::size_t hit =
            simd::findFirstEqual(blocks_.data() + slot, run, block);
        if (hit != simd::kNpos)
            return seq + hit;
        seq += run;
    }
    return kInvalidSeq;
}

bool
HistoryBuffer::setEndMark(SeqNum seq)
{
    if (!valid(seq))
        return false;
    marks_[slotOf(seq)] = 1;
    return true;
}

bool
HistoryBuffer::lastAppendCompletedBlock() const
{
    return head_ > 0 && head_ % entriesPerBlock_ == 0;
}

std::uint64_t
HistoryBuffer::footprintBytes() const
{
    const std::uint64_t entries = unbounded() ? head_ : capacity_;
    return divCeil(entries, entriesPerBlock_) * kBlockBytes;
}

} // namespace stms
