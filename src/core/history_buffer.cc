#include "core/history_buffer.hh"

#include "common/log.hh"

namespace stms
{

HistoryBuffer::HistoryBuffer(std::uint64_t capacity_entries,
                             std::uint32_t entries_per_block)
    : capacity_(capacity_entries), entriesPerBlock_(entries_per_block)
{
    stms_assert(entries_per_block > 0, "entriesPerBlock must be nonzero");
    if (capacity_ > 0)
        store_ = std::make_unique_for_overwrite<HistoryEntry[]>(capacity_);
}

SeqNum
HistoryBuffer::append(Addr block)
{
    const SeqNum seq = head_++;
    if (unbounded()) {
        grow_.push_back(HistoryEntry{block, false});
    } else {
        store_[seq % capacity_] = HistoryEntry{block, false};
    }
    return seq;
}

bool
HistoryBuffer::valid(SeqNum seq) const
{
    if (seq >= head_)
        return false;
    if (unbounded())
        return true;
    return head_ - seq <= capacity_;
}

const HistoryEntry &
HistoryBuffer::at(SeqNum seq) const
{
    stms_assert(valid(seq), "history read of invalid seq %llu (head %llu)",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(head_));
    return unbounded() ? grow_[seq] : store_[seq % capacity_];
}

bool
HistoryBuffer::setEndMark(SeqNum seq)
{
    if (!valid(seq))
        return false;
    (unbounded() ? grow_[seq] : store_[seq % capacity_]).endMark = true;
    return true;
}

bool
HistoryBuffer::lastAppendCompletedBlock() const
{
    return head_ > 0 && head_ % entriesPerBlock_ == 0;
}

std::uint64_t
HistoryBuffer::footprintBytes() const
{
    const std::uint64_t entries = unbounded() ? head_ : capacity_;
    return divCeil(entries, entriesPerBlock_) * kBlockBytes;
}

} // namespace stms
