/**
 * @file
 * In-bucket storage and LRU mechanics of the index table (Sec. 4.3).
 *
 * One bucket models a single 64-byte memory block holding up to
 * twelve {key, pointer} pairs kept in LRU order, MRU at slot 0. The
 * mechanics are shared by IndexTable and ShardedIndexTable so the two
 * structures cannot drift: the sharded table must stay bit-identical
 * to the unsharded one for any shard count, and that guarantee is
 * structural (same code), not just tested.
 *
 * Storage is structure-of-arrays, tuned for the probe fast path:
 *
 *  - a dense byte of live-pair count per bucket (valid pairs always
 *    form a prefix, because every insert and refresh promotes to MRU),
 *  - the keys of one bucket contiguous (96 bytes at the paper's
 *    packing), so a miss scan touches 1-2 cache lines instead of the
 *    5 lines the old array-of-structs layout spread a bucket over,
 *  - pointers in a parallel array, touched only on a hit.
 *
 * Only the count array needs zero-initialization (count 0 == empty
 * bucket); keys and pointers are allocated uninitialized and never
 * read beyond the count, which makes constructing a multi-megabyte
 * table nearly free — the profile showed eager zero-fill of the old
 * layout costing ~40% of a short sweep.
 */

#ifndef STMS_CORE_INDEX_BUCKET_HH
#define STMS_CORE_INDEX_BUCKET_HH

#include <cstdint>
#include <optional>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "common/zeroed_buffer.hh"

namespace stms::detail
{

/** Host cache-line size assumed by the software-prefetch hints (the
 *  ubiquitous 64 bytes; a wrong guess only mistunes a hint). */
inline constexpr std::size_t kCacheLineBytes = 64;

/** What an in-bucket update did (drives stat and occupancy counters). */
enum class BucketUpdate : std::uint8_t
{
    Refreshed,  ///< Key present: pointer rewritten, moved to MRU.
    Inserted,   ///< Key absent: a free slot was used.
    Replaced,   ///< Key absent: the LRU pair was displaced.
};

/** SoA bucket array with exact in-bucket LRU (MRU at slot 0). */
class BucketStore
{
  public:
    BucketStore() = default;

    /** Allocate @p buckets empty buckets of @p entries pairs each.
     *  The key array carries simd.hh's scan padding, and both arrays
     *  come from the run arena when one is installed (torn down for
     *  free, recycled warm across pipeline runs). */
    void
    reset(std::uint64_t buckets, std::uint32_t entries)
    {
        stms_assert(entries > 0 && entries <= 255,
                    "entries per bucket %u outside [1, 255]", entries);
        entries_ = entries;
        buckets_ = buckets;
        counts_.reset(buckets);
        keys_.reset(buckets * entries + simd::kScanPadU64);
        pointers_.reset(buckets * entries);
    }

    /** Find @p key in @p bucket; a hit refreshes the LRU order. The
     *  scan is the SIMD first-match kernel, bit-identical to the
     *  scalar loop by construction (simd.hh). */
    std::optional<std::uint64_t>
    lookup(std::uint64_t bucket, std::uint64_t key)
    {
        const std::uint32_t count = counts_[bucket];
        std::uint64_t *keys = &keys_[bucket * entries_];
        const std::size_t i = simd::findFirstEqual(keys, count, key);
        if (i != simd::kNpos) {
            std::uint64_t *pointers = &pointers_[bucket * entries_];
            const std::uint64_t hit = pointers[i];
            promote(keys, pointers, static_cast<std::uint32_t>(i), key,
                    hit);
            return hit;
        }
        return std::nullopt;
    }

    /** Insert or refresh {key, pointer}: MRU insertion, LRU
     *  displacement when the bucket is full. */
    BucketUpdate
    update(std::uint64_t bucket, std::uint64_t key,
           std::uint64_t pointer)
    {
        const std::uint32_t count = counts_[bucket];
        std::uint64_t *keys = &keys_[bucket * entries_];
        std::uint64_t *pointers = &pointers_[bucket * entries_];
        const std::size_t i = simd::findFirstEqual(keys, count, key);
        if (i != simd::kNpos) {
            promote(keys, pointers, static_cast<std::uint32_t>(i), key,
                    pointer);
            return BucketUpdate::Refreshed;
        }
        if (count < entries_) {
            promote(keys, pointers, count, key, pointer);
            counts_[bucket] = static_cast<std::uint8_t>(count + 1);
            return BucketUpdate::Inserted;
        }
        promote(keys, pointers, entries_ - 1, key, pointer);
        return BucketUpdate::Replaced;
    }

    /**
     * Software-prefetch @p bucket's probe working set into the host
     * cache: the count byte and the key array (the lines every probe
     * scans; 12 keys span two lines). Purely a host-side hint —
     * __builtin_prefetch has no architectural effect, so batched
     * probes that prefetch ahead stay bit-identical to scalar ones.
     * Pointers are NOT prefetched: they are touched only on a hit,
     * and pulling a third line per probe evicts more than it saves.
     */
    void
    prefetchBucket(std::uint64_t bucket) const
    {
        __builtin_prefetch(&counts_[bucket], /*rw=*/0, /*locality=*/1);
        const std::uint64_t *keys = &keys_[bucket * entries_];
        __builtin_prefetch(keys, 0, 1);
        if (entries_ * sizeof(std::uint64_t) > kCacheLineBytes)
            __builtin_prefetch(
                reinterpret_cast<const char *>(keys) + kCacheLineBytes,
                0, 1);
    }

    /** Total live pairs (O(buckets) recount; debug cross-check). */
    std::uint64_t
    occupancyScan() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t b = 0; b < buckets_; ++b)
            total += counts_[b];
        return total;
    }

    std::uint64_t numBuckets() const { return buckets_; }

  private:
    /** Shift slots [0, index) down one; write the pair at MRU. */
    static void
    promote(std::uint64_t *keys, std::uint64_t *pointers,
            std::uint32_t index, std::uint64_t key,
            std::uint64_t pointer)
    {
        for (std::uint32_t j = index; j > 0; --j) {
            keys[j] = keys[j - 1];
            pointers[j] = pointers[j - 1];
        }
        keys[0] = key;
        pointers[0] = pointer;
    }

    std::uint32_t entries_ = 0;
    std::uint64_t buckets_ = 0;
    /** Live-pair count per bucket; zero = empty, the only state that
     *  needs initialization. */
    ZeroedBuffer<std::uint8_t> counts_;
    /** keys_[bucket * entries_ + slot], MRU-first; uninitialized
     *  beyond each bucket's count, padded per simd.hh's scan
     *  contract. */
    ArenaBuffer<std::uint64_t> keys_;
    ArenaBuffer<std::uint64_t> pointers_;
};

} // namespace stms::detail

#endif // STMS_CORE_INDEX_BUCKET_HH
