/**
 * @file
 * In-bucket storage and LRU mechanics of the index table (Sec. 4.3).
 *
 * One bucket is a single 64-byte memory block holding up to twelve
 * {key, pointer} pairs kept in LRU order, MRU at slot 0. These
 * helpers are shared by IndexTable and ShardedIndexTable so the two
 * structures cannot drift: the sharded table must stay bit-identical
 * to the unsharded one for any shard count, and that guarantee is
 * structural (same code), not just tested.
 */

#ifndef STMS_CORE_INDEX_BUCKET_HH
#define STMS_CORE_INDEX_BUCKET_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"

namespace stms::detail
{

/** One {key, packed-pointer} pair of a 64-byte index bucket. */
struct IndexPair
{
    Addr key = kInvalidAddr;
    std::uint64_t pointer = 0;
    bool valid = false;
};

/** What an in-bucket update did (drives stat and occupancy counters). */
enum class BucketUpdate : std::uint8_t
{
    Refreshed,  ///< Key present: pointer rewritten, moved to MRU.
    Inserted,   ///< Key absent: a free slot was used.
    Replaced,   ///< Key absent: the LRU pair was displaced.
};

/** Shift slots [0, index) down one and write @p pair at MRU. */
inline void
bucketPromote(IndexPair *bucket, std::uint32_t index,
              const IndexPair &pair)
{
    for (std::uint32_t j = index; j > 0; --j)
        bucket[j] = bucket[j - 1];
    bucket[0] = pair;
}

/** Find @p key in the bucket; a hit refreshes the LRU order. */
inline std::optional<std::uint64_t>
bucketLookup(IndexPair *bucket, std::uint32_t entries, Addr key)
{
    for (std::uint32_t i = 0; i < entries; ++i) {
        if (bucket[i].valid && bucket[i].key == key) {
            const IndexPair hit = bucket[i];
            bucketPromote(bucket, i, hit);
            return hit.pointer;
        }
    }
    return std::nullopt;
}

/** Insert or refresh {key, pointer}: MRU insertion, LRU displacement
 *  when the bucket is full. */
inline BucketUpdate
bucketUpdate(IndexPair *bucket, std::uint32_t entries, Addr key,
             std::uint64_t pointer)
{
    for (std::uint32_t i = 0; i < entries; ++i) {
        if (bucket[i].valid && bucket[i].key == key) {
            bucketPromote(bucket, i, IndexPair{key, pointer, true});
            return BucketUpdate::Refreshed;
        }
    }
    const BucketUpdate kind = bucket[entries - 1].valid
                                  ? BucketUpdate::Replaced
                                  : BucketUpdate::Inserted;
    bucketPromote(bucket, entries - 1, IndexPair{key, pointer, true});
    return kind;
}

} // namespace stms::detail

#endif // STMS_CORE_INDEX_BUCKET_HH
