#include "core/sharded_index_table.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

ShardedIndexTable::ShardedIndexTable(std::uint64_t total_bytes,
                                     std::uint32_t entries_per_bucket,
                                     std::uint32_t shards)
    : entriesPerBucket_(entries_per_bucket)
{
    stms_assert(entries_per_bucket > 0, "bucket needs entries");
    stms_assert(shards > 0, "index table needs at least one shard");
    if (total_bytes != 0) {
        buckets_ = total_bytes / kBlockBytes;
        stms_assert(buckets_ > 0,
                    "index table smaller than one bucket");
    }
    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        auto shard = std::make_unique<Shard>();
        if (buckets_ != 0) {
            // Shard s owns every global bucket b with b % shards == s,
            // stored densely at local index b / shards.
            const std::uint64_t owned =
                buckets_ / shards + (s < buckets_ % shards ? 1 : 0);
            shard->store.reset(owned, entriesPerBucket_);
        }
        shards_.push_back(std::move(shard));
    }
}

std::uint64_t
ShardedIndexTable::bucketOf(Addr block) const
{
    return unbounded() ? 0 : hashToBucket(blockNumber(block), buckets_);
}

std::uint32_t
ShardedIndexTable::shardOf(Addr block) const
{
    const std::uint32_t count = numShards();
    if (count == 1)
        return 0;
    if (unbounded()) {
        return static_cast<std::uint32_t>(
            hashToBucket(blockNumber(block), count));
    }
    return static_cast<std::uint32_t>(bucketOf(block) % count);
}

std::optional<HistoryPointer>
ShardedIndexTable::lookup(Addr block)
{
    const Addr key = blockNumber(block);
    if (unbounded()) {
        Shard &shard = shardFor(block);
        std::lock_guard<std::mutex> guard(shard.mutex);
        ++shard.stats.lookups;
        auto it = shard.map.find(key);
        if (it == shard.map.end())
            return std::nullopt;
        ++shard.stats.lookupHits;
        return HistoryPointer::unpack(it->second);
    }
    // Hash once: the global bucket determines both the owning shard
    // and the shard-local index (this is the probe fast path — one
    // mixHash64 + mod, then exactly one bucket block touched).
    const std::uint64_t bucket = hashToBucket(key, buckets_);
    const std::uint32_t count = numShards();
    Shard &shard = *shards_[count == 1 ? 0 : bucket % count];
    std::lock_guard<std::mutex> guard(shard.mutex);
    ++shard.stats.lookups;
    const auto pointer = shard.store.lookup(bucket / count, key);
    if (!pointer)
        return std::nullopt;
    ++shard.stats.lookupHits;
    return HistoryPointer::unpack(*pointer);
}

void
ShardedIndexTable::update(Addr block, HistoryPointer pointer)
{
    const Addr key = blockNumber(block);
    if (unbounded()) {
        Shard &shard = shardFor(block);
        std::lock_guard<std::mutex> guard(shard.mutex);
        ++shard.stats.updates;
        auto [it, inserted] =
            shard.map.insert_or_assign(key, pointer.packed());
        (void)it;
        if (inserted)
            ++shard.stats.inserts;
        return;
    }
    const std::uint64_t bucket = hashToBucket(key, buckets_);
    const std::uint32_t count = numShards();
    Shard &shard = *shards_[count == 1 ? 0 : bucket % count];
    std::lock_guard<std::mutex> guard(shard.mutex);
    ++shard.stats.updates;
    switch (shard.store.update(bucket / count, key,
                               pointer.packed())) {
    case detail::BucketUpdate::Refreshed:
        break;
    case detail::BucketUpdate::Inserted:
        ++shard.stats.inserts;
        ++shard.pairs;
        break;
    case detail::BucketUpdate::Replaced:
        ++shard.stats.replacements;
        break;
    }
}

void
ShardedIndexTable::prefetchOne(Addr block) const
{
    // Hash exactly like lookup(): global bucket -> owning shard ->
    // shard-local index. The store's array bases are set once at
    // construction and never reallocated, so reading them without the
    // shard lock is safe; the prefetch itself touches no data
    // architecturally.
    const std::uint64_t bucket =
        hashToBucket(blockNumber(block), buckets_);
    const std::uint32_t count = numShards();
    const Shard &shard = *shards_[count == 1 ? 0 : bucket % count];
    shard.store.prefetchBucket(bucket / count);
}

void
ShardedIndexTable::lookupBatch(
    std::span<const Addr> blocks,
    std::span<std::optional<HistoryPointer>> out)
{
    stms_assert(out.size() >= blocks.size(),
                "lookupBatch output smaller than input");
    // Literal lookup() calls in element order: results, per-shard
    // stats, and LRU motion are bit-identical to the scalar loop for
    // every shard count by construction. The prefetch hint's shard
    // bases are hoisted out of the loop (hoistPrefetch) — the
    // per-probe recomputation showed up in BM_BatchedIndexProbe.
    const bool bounded = !unbounded();
    const HoistedPrefetch hint = hoistPrefetch();
    const std::size_t ahead =
        std::min(kIndexProbeAhead, blocks.size());
    if (bounded) {
        for (std::size_t i = 0; i < ahead; ++i)
            hint.prefetch(blocks[i]);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (bounded && i + kIndexProbeAhead < blocks.size())
            hint.prefetch(blocks[i + kIndexProbeAhead]);
        out[i] = lookup(blocks[i]);
    }
}

void
ShardedIndexTable::updateBatch(std::span<const Addr> blocks,
                               std::span<const HistoryPointer> pointers)
{
    stms_assert(pointers.size() >= blocks.size(),
                "updateBatch pointer span smaller than input");
    const bool bounded = !unbounded();
    const HoistedPrefetch hint = hoistPrefetch();
    const std::size_t ahead =
        std::min(kIndexProbeAhead, blocks.size());
    if (bounded) {
        for (std::size_t i = 0; i < ahead; ++i)
            hint.prefetch(blocks[i]);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (bounded && i + kIndexProbeAhead < blocks.size())
            hint.prefetch(blocks[i + kIndexProbeAhead]);
        update(blocks[i], pointers[i]);
    }
}

void
ShardedIndexTable::prefetchBatch(std::span<const Addr> blocks) const
{
    if (unbounded())
        return;  // Nothing to warm: the maps' layout is opaque.
    const HoistedPrefetch hint = hoistPrefetch();
    for (const Addr block : blocks)
        hint.prefetch(block);
}

std::uint64_t
ShardedIndexTable::footprintBytes() const
{
    if (!unbounded())
        return buckets_ * kBlockBytes;
    std::uint64_t pairs = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        pairs += shard->map.size();
    }
    // 5.33 bytes/pair at the paper's packing density.
    return divCeil(pairs, entriesPerBucket_) * kBlockBytes;
}

std::uint64_t
ShardedIndexTable::occupancy() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        total += unbounded() ? shard->map.size() : shard->pairs;
    }
    return total;
}

std::uint64_t
ShardedIndexTable::occupancyScan() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        if (unbounded()) {
            total += shard->map.size();
            continue;
        }
        total += shard->store.occupancyScan();
    }
    return total;
}

IndexTableStats
ShardedIndexTable::stats() const
{
    IndexTableStats merged;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        merged += shard->stats;
    }
    return merged;
}

IndexTableStats
ShardedIndexTable::shardStats(std::uint32_t shard) const
{
    stms_assert(shard < numShards(), "shard index out of range");
    std::lock_guard<std::mutex> guard(shards_[shard]->mutex);
    return shards_[shard]->stats;
}

std::uint64_t
ShardedIndexTable::shardOps(std::uint32_t shard) const
{
    const IndexTableStats stats = shardStats(shard);
    return stats.lookups + stats.updates;
}

void
ShardedIndexTable::resetStats()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        shard->stats = IndexTableStats{};
    }
}

} // namespace stms
