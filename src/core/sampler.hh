/**
 * @file
 * Probabilistic-update sampler (Sec. 4.4).
 *
 * For every potential index-table update, a coin flip biased to the
 * configured sampling probability decides whether the update is
 * performed. Index-table maintenance bandwidth is directly
 * proportional to the sampling probability; the paper picks 12.5%.
 */

#ifndef STMS_CORE_SAMPLER_HH
#define STMS_CORE_SAMPLER_HH

#include <cstdint>

#include "common/log.hh"
#include "common/rng.hh"

namespace stms
{

/** Biased coin deciding which index-table updates are applied. */
class UpdateSampler
{
  public:
    explicit UpdateSampler(double probability, std::uint64_t seed = 97)
        : probability_(probability), rng_(seed)
    {
        stms_assert(probability >= 0.0 && probability <= 1.0,
                    "sampling probability %f out of [0,1]", probability);
    }

    /** Flip the biased coin for one potential update. */
    bool
    shouldUpdate()
    {
        ++offered_;
        const bool take = rng_.chance(probability_);
        if (take)
            ++taken_;
        return take;
    }

    double probability() const { return probability_; }
    std::uint64_t offered() const { return offered_; }
    std::uint64_t taken() const { return taken_; }

    /** Observed sampling rate (should converge to probability()). */
    double
    observedRate() const
    {
        return offered_ == 0 ? 0.0
                             : static_cast<double>(taken_) /
                               static_cast<double>(offered_);
    }

    void resetStats() { offered_ = taken_ = 0; }

  private:
    double probability_;
    Rng rng_;
    std::uint64_t offered_ = 0;
    std::uint64_t taken_ = 0;
};

} // namespace stms

#endif // STMS_CORE_SAMPLER_HH
