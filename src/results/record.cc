#include "results/record.hh"

#include "results/json.hh"

namespace stms::results
{

double
ResultRecord::scalar(const std::string &name, double fallback) const
{
    for (const auto &[key, value] : scalars)
        if (key == name)
            return value;
    return fallback;
}

bool
ResultRecord::hasScalar(const std::string &name) const
{
    for (const auto &[key, value] : scalars)
        if (key == name)
            return true;
    return false;
}

std::string
ResultRecord::toJsonLine() const
{
    std::string out = "{\"schema\": ";
    out += std::to_string(schema);
    out += ", \"kind\": \"" + jsonEscape(kind) + "\"";
    out += ", \"fingerprint\": \"" + fingerprint.hex() + "\"";
    out += ", \"experiment\": \"" + jsonEscape(experiment) + "\"";
    if (!run.empty())
        out += ", \"run\": \"" + jsonEscape(run) + "\"";

    out += ", \"params\": {";
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + jsonEscape(params[i].first) + "\": \"" +
               jsonEscape(params[i].second) + "\"";
    }
    out += "}";

    out += ", \"git_describe\": \"" + jsonEscape(gitDescribe) + "\"";
    out += ", \"timestamp\": \"" + jsonEscape(timestamp) + "\"";

    out += ", \"scalars\": {";
    for (std::size_t i = 0; i < scalars.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + jsonEscape(scalars[i].first) +
               "\": " + jsonNumber(scalars[i].second);
    }
    out += "}";

    out += ", \"series\": [";
    for (std::size_t s = 0; s < series.size(); ++s) {
        const Series &entry = series[s];
        if (s)
            out += ", ";
        out += "{\"title\": \"" + jsonEscape(entry.title) +
               "\", \"columns\": [";
        for (std::size_t c = 0; c < entry.columns.size(); ++c) {
            if (c)
                out += ", ";
            out += "\"" + jsonEscape(entry.columns[c]) + "\"";
        }
        out += "], \"rows\": [";
        for (std::size_t r = 0; r < entry.rows.size(); ++r) {
            if (r)
                out += ", ";
            out += "[";
            for (std::size_t c = 0; c < entry.rows[r].size(); ++c) {
                if (c)
                    out += ", ";
                out += "\"" + jsonEscape(entry.rows[r][c]) + "\"";
            }
            out += "]";
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

bool
ResultRecord::parseJsonLine(const std::string &line, ResultRecord &out,
                            std::string &error)
{
    out = ResultRecord{};
    JsonValue root;
    if (!parseJson(line, root, error))
        return false;
    if (!root.isObject()) {
        error = "record is not a JSON object";
        return false;
    }

    out.schema = static_cast<int>(root.getNumber("schema", 0));
    if (out.schema < 1 || out.schema > kRecordSchema) {
        error = "unsupported record schema " +
                std::to_string(out.schema);
        return false;
    }
    out.kind = root.getString("kind");
    if (out.kind != kKindExperiment && out.kind != kKindRun) {
        error = "unknown record kind '" + out.kind + "'";
        return false;
    }
    if (!Fingerprint::parseHex(root.getString("fingerprint"),
                               out.fingerprint)) {
        error = "bad fingerprint";
        return false;
    }
    out.experiment = root.getString("experiment");
    if (out.experiment.empty()) {
        error = "record names no experiment";
        return false;
    }
    out.run = root.getString("run");
    out.gitDescribe = root.getString("git_describe");
    out.timestamp = root.getString("timestamp");

    if (const JsonValue *params = root.find("params");
        params && params->isObject()) {
        for (const auto &[key, value] : params->object)
            if (value.isString())
                out.params.emplace_back(key, value.text);
    }

    const JsonValue *scalars = root.find("scalars");
    if (!scalars || !scalars->isObject()) {
        error = "record has no scalars object";
        return false;
    }
    for (const auto &[key, value] : scalars->object) {
        if (!value.isNumber()) {
            error = "non-numeric scalar '" + key + "'";
            return false;
        }
        out.scalars.emplace_back(key, value.number);
    }

    if (const JsonValue *series = root.find("series");
        series && series->isArray()) {
        for (const JsonValue &entry : series->array) {
            if (!entry.isObject())
                continue;
            Series parsed;
            parsed.title = entry.getString("title");
            if (const JsonValue *columns = entry.find("columns");
                columns && columns->isArray())
                for (const JsonValue &cell : columns->array)
                    if (cell.isString())
                        parsed.columns.push_back(cell.text);
            if (const JsonValue *rows = entry.find("rows");
                rows && rows->isArray()) {
                for (const JsonValue &row : rows->array) {
                    if (!row.isArray())
                        continue;
                    std::vector<std::string> cells;
                    for (const JsonValue &cell : row.array)
                        if (cell.isString())
                            cells.push_back(cell.text);
                    parsed.rows.push_back(std::move(cells));
                }
            }
            out.series.push_back(std::move(parsed));
        }
    }
    return true;
}

} // namespace stms::results
