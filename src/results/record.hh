/**
 * @file
 * The result store's unit of persistence.
 *
 * One ResultRecord is one JSON Lines entry in a store's records file:
 * either a completed *experiment* (kind "experiment" — the report's
 * scalar metrics plus its rendered tables as series) or one completed
 * *run* (kind "run" — a plan point's RunOutput flattened to scalars,
 * what sweep resume replays instead of re-simulating). Records are
 * self-describing: schema version, fingerprint, the full normalized
 * parameter set, and provenance (git describe + UTC timestamp).
 *
 * The JSON shape is documented in docs/RESULTS.md; parsing tolerates
 * unknown members so older readers survive additive changes.
 */

#ifndef STMS_RESULTS_RECORD_HH
#define STMS_RESULTS_RECORD_HH

#include <string>
#include <utility>
#include <vector>

#include "results/fingerprint.hh"

namespace stms::results
{

/** On-disk record schema; bump on incompatible shape changes. */
inline constexpr int kRecordSchema = 1;

/** Record kinds (the JSON "kind" member). */
inline constexpr const char *kKindExperiment = "experiment";
inline constexpr const char *kKindRun = "run";

/** One titled table captured from a report (cells pre-rendered). */
struct Series
{
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;

    bool operator==(const Series &other) const = default;
};

/** One stored result (experiment- or run-granularity). */
struct ResultRecord
{
    int schema = kRecordSchema;
    std::string kind = kKindExperiment;
    Fingerprint fingerprint;
    std::string experiment;
    /** RunSpec id; empty for experiment-kind records. */
    std::string run;
    /** Key-sorted, normalized parameter set the fingerprint covers. */
    ParamList params;
    std::string gitDescribe;
    std::string timestamp;  ///< UTC, e.g. "2026-07-28T12:00:00Z".
    /** Named scalar metrics, insertion-ordered. */
    std::vector<std::pair<std::string, double>> scalars;
    /** Rendered tables (experiment-kind records only). */
    std::vector<Series> series;

    /** Scalar by name, or @p fallback. */
    double scalar(const std::string &name, double fallback = 0.0) const;

    /** True when a scalar named @p name exists. */
    bool hasScalar(const std::string &name) const;

    /** One-line JSON rendering (no trailing newline). */
    std::string toJsonLine() const;

    /** Parse a record line; false + @p error on malformed input. */
    static bool parseJsonLine(const std::string &line,
                              ResultRecord &out, std::string &error);
};

} // namespace stms::results

#endif // STMS_RESULTS_RECORD_HH
