/**
 * @file
 * Snapshot diffing — the regression gate over stored results.
 *
 * A diff compares two snapshots (store directories or committed
 * baseline .jsonl files) at experiment-record granularity, keyed by
 * fingerprint: records only in the "after" side are *added*, records
 * only in the "before" side are *removed*, and records present in
 * both are compared scalar-by-scalar under per-metric absolute +
 * relative tolerances. A metric pair (a, b) matches when
 *
 *     |a - b| <= absTol + relTol * max(|a|, |b|)
 *
 * (the numpy isclose shape). The diff is *dirty* — CI fails — when
 * anything was removed or changed; additions alone are clean, since
 * a growing store legitimately accumulates new configurations.
 */

#ifndef STMS_RESULTS_DIFF_HH
#define STMS_RESULTS_DIFF_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "results/record.hh"

namespace stms::results
{

/** Tolerances for scalar comparison. */
struct DiffTolerances
{
    double absTol = 1e-12;
    double relTol = 1e-9;
    /** Per-metric relative-tolerance overrides (exact metric name). */
    std::map<std::string, double> perMetricRel;

    /** True when @p a and @p b are equal under the tolerances. */
    bool close(const std::string &metric, double a, double b) const;
};

/** Build tolerances from key=value options: abs_tol=, rel_tol=, and
 *  per-metric "tol.<metric>=<rel>" overrides. */
DiffTolerances tolerancesFromOptions(const Options &options);

/** One out-of-tolerance (or one-sided) metric. */
struct MetricChange
{
    std::string metric;
    double before = 0.0;
    double after = 0.0;
    /** "changed", "only-before", or "only-after". */
    std::string what = "changed";
};

/** All drift within one fingerprint-matched record pair. */
struct RecordDiff
{
    Fingerprint fingerprint;
    std::string experiment;
    std::vector<MetricChange> metrics;
};

/** The full comparison of two snapshots. */
struct DiffResult
{
    std::vector<ResultRecord> added;    ///< Only in "after".
    std::vector<ResultRecord> removed;  ///< Only in "before".
    std::vector<RecordDiff> changed;    ///< Matched but drifted.
    std::size_t matched = 0;            ///< Fingerprints in both.
    std::size_t scalarsCompared = 0;

    /** Clean = nothing removed, nothing changed (added is fine). */
    bool clean() const { return removed.empty() && changed.empty(); }
};

/**
 * Diff experiment-kind records of @p before vs @p after (run-kind
 * records are ignored; they archive resume state, not figures).
 * When a fingerprint appears multiple times in a snapshot the
 * latest occurrence wins, matching ResultStore::loadLatest().
 */
DiffResult diffSnapshots(const std::vector<ResultRecord> &before,
                         const std::vector<ResultRecord> &after,
                         const DiffTolerances &tolerances);

/** Human rendering of a diff (aligned tables + summary line). */
std::string renderDiff(const DiffResult &diff);

} // namespace stms::results

#endif // STMS_RESULTS_DIFF_HH
