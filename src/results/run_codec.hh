/**
 * @file
 * RunOutput <-> flat scalars.
 *
 * Sweep resume works by replaying stored run records instead of
 * re-simulating, so every field an experiment's report() can read —
 * simulation counters, per-class traffic, per-core MLP, prefetcher
 * stats, the STMS-internal counters and the stream-length histogram —
 * must round-trip through the store's flat {name: number} scalar map.
 * encodeRunOutput() flattens a RunOutput into that map and
 * decodeRunOutput() rebuilds it exactly; the codec_test asserts the
 * round trip is lossless on real simulation output.
 *
 * Scalars use dotted names ("sim.traffic.meta-update.bytes"); vector
 * fields carry an explicit ".count" so decoding never guesses sizes.
 */

#ifndef STMS_RESULTS_RUN_CODEC_HH
#define STMS_RESULTS_RUN_CODEC_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/run.hh"

namespace stms::results
{

/** Flatten @p output into named scalars (insertion-ordered). */
std::vector<std::pair<std::string, double>>
encodeRunOutput(const RunOutput &output);

/**
 * Rebuild a RunOutput from @p scalars. Returns false (with @p error)
 * when the scalars were not produced by encodeRunOutput() — detected
 * via the embedded codec version — so a store written by a future
 * incompatible build is re-simulated instead of misread.
 */
bool decodeRunOutput(
    const std::vector<std::pair<std::string, double>> &scalars,
    RunOutput &output, std::string &error);

} // namespace stms::results

#endif // STMS_RESULTS_RUN_CODEC_HH
