#include "results/store.hh"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <functional>

#include "common/log.hh"

namespace stms::results
{

namespace fs = std::filesystem;

bool
atomicWriteFile(const std::string &path, const std::string &payload)
{
    // Same-directory temp so the rename never crosses filesystems.
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return false;
    const bool wrote =
        std::fwrite(payload.data(), 1, payload.size(), file) ==
        payload.size();
    const bool closed = std::fclose(file) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::string
gitDescribe()
{
    static const std::string cached = [] {
        if (const char *env = std::getenv("STMS_GIT_DESCRIBE"))
            return std::string(env);
        std::string out = "unknown";
#if defined(__unix__) || defined(__APPLE__)
        std::FILE *pipe = popen(
            "git describe --always --dirty 2>/dev/null", "r");
        if (pipe) {
            char buf[128];
            if (std::fgets(buf, sizeof(buf), pipe)) {
                std::string text(buf);
                while (!text.empty() &&
                       (text.back() == '\n' || text.back() == '\r'))
                    text.pop_back();
                if (!text.empty())
                    out = text;
            }
            pclose(pipe);
        }
#endif
        return out;
    }();
    return cached;
}

std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
#if defined(_WIN32)
    gmtime_s(&utc, &now);
#else
    gmtime_r(&now, &utc);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

namespace
{

/**
 * Read a JSONL file line by line. A final line without a trailing
 * newline is an interrupted append and is ignored — the record is
 * incomplete by definition (append() writes the newline with the
 * line in one buffered write, so complete records always end in
 * '\n').
 */
bool
forEachCompleteLine(
    const std::string &path,
    const std::function<void(const std::string &)> &fn,
    std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::size_t begin = 0;
    while (begin < content.size()) {
        const std::size_t nl = content.find('\n', begin);
        if (nl == std::string::npos)
            break;  // Truncated tail: skip.
        if (nl > begin)
            fn(content.substr(begin, nl - begin));
        begin = nl + 1;
    }
    return true;
}

} // namespace

ResultStore::ResultStore(std::string dir, std::string records_path,
                         std::string index_path)
    : dir_(std::move(dir)), recordsPath_(std::move(records_path)),
      indexPath_(std::move(index_path))
{}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir, std::string &error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        error = "cannot create store directory '" + dir +
                "': " + ec.message();
        return nullptr;
    }
    auto store = std::unique_ptr<ResultStore>(new ResultStore(
        dir, (fs::path(dir) / "records.jsonl").string(),
        (fs::path(dir) / "index.tsv").string()));
    if (!store->loadOrRebuildIndex(error))
        return nullptr;
    return store;
}

bool
ResultStore::loadOrRebuildIndex(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    if (!fs::exists(recordsPath_)) {
        // Brand-new store: start the records file so later appends
        // and loads never special-case a missing file.
        std::ofstream touch(recordsPath_, std::ios::app);
        if (!touch) {
            error = "cannot create '" + recordsPath_ + "'";
            return false;
        }
        return rewriteIndexLocked();
    }

    // Heal a crash artifact: a records file not ending in '\n' holds
    // a truncated append. Terminate it so the fragment becomes one
    // malformed (skipped, gc-collectable) line instead of gluing
    // itself onto the next appended record.
    {
        std::ifstream in(recordsPath_, std::ios::binary);
        in.seekg(0, std::ios::end);
        const std::streamoff size = in.tellg();
        if (size > 0) {
            in.seekg(size - 1);
            char last = '\n';
            in.get(last);
            if (last != '\n') {
                std::ofstream out(recordsPath_, std::ios::app |
                                                    std::ios::binary);
                out << '\n';
            }
        }
    }

    // A well-formed index is trusted as-is — that is what makes
    // open() cheap on a large archive. It is rebuilt from the
    // records only when missing or malformed; after hand-editing or
    // concatenating records files, delete index.tsv (or run
    // `--results gc`) to refresh dedupe. Resume never depends on the
    // index — record loads always scan records.jsonl itself.
    bool index_ok = fs::exists(indexPath_);
    if (index_ok) {
        std::ifstream in(indexPath_);
        std::string line;
        while (std::getline(in, line)) {
            const std::string hex = line.substr(0, line.find('\t'));
            Fingerprint fp;
            if (!Fingerprint::parseHex(hex, fp)) {
                index_ok = false;
                index_.clear();
                break;
            }
            index_.insert(fp.value);
        }
    }
    if (index_ok)
        return true;

    std::string unused;
    if (!forEachCompleteLine(
            recordsPath_,
            [&](const std::string &line) {
                ResultRecord record;
                std::string parse_error;
                if (ResultRecord::parseJsonLine(line, record,
                                                parse_error))
                    index_.insert(record.fingerprint.value);
            },
            unused)) {
        error = "cannot read '" + recordsPath_ + "'";
        return false;
    }
    return rewriteIndexLocked();
}

void
ResultStore::ensureLatestCacheLocked() const
{
    if (latestCacheValid_)
        return;
    latestCache_.clear();
    std::string unused;
    forEachCompleteLine(
        recordsPath_,
        [&](const std::string &line) {
            ResultRecord record;
            std::string parse_error;
            if (ResultRecord::parseJsonLine(line, record,
                                            parse_error))
                latestCache_[record.fingerprint.value] =
                    std::move(record);
        },
        unused);
    latestCacheValid_ = true;
}

bool
ResultStore::rewriteIndexLocked()
{
    std::string payload;
    for (const std::uint64_t value : index_)
        payload += Fingerprint{value}.hex() + "\n";
    return atomicWriteFile(indexPath_, payload);
}

bool
ResultStore::contains(const Fingerprint &fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.count(fingerprint.value) != 0;
}

bool
ResultStore::append(const ResultRecord &record, bool force)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!force && index_.count(record.fingerprint.value) != 0)
        return false;

    // One buffered write of line + newline: a crash mid-append leaves
    // at most one newline-less tail, which loads ignore.
    const std::string line = record.toJsonLine() + "\n";
    std::FILE *file = std::fopen(recordsPath_.c_str(), "ab");
    if (!file)
        stms_fatal("cannot append to '%s'", recordsPath_.c_str());
    const bool ok =
        std::fwrite(line.data(), 1, line.size(), file) == line.size();
    if (std::fclose(file) != 0 || !ok)
        stms_fatal("short write to '%s'", recordsPath_.c_str());

    if (index_.insert(record.fingerprint.value).second) {
        std::FILE *index_file = std::fopen(indexPath_.c_str(), "ab");
        if (index_file) {
            const std::string entry = record.fingerprint.hex() + "\t" +
                                      record.kind + "\t" +
                                      record.experiment + "\t" +
                                      record.run + "\n";
            std::fwrite(entry.data(), 1, entry.size(), index_file);
            std::fclose(index_file);
        }
    }
    if (latestCacheValid_)
        latestCache_[record.fingerprint.value] = record;
    return true;
}

std::vector<ResultRecord>
ResultStore::loadAll(std::size_t *dropped) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ResultRecord> records;
    std::size_t bad = 0;
    std::string unused;
    forEachCompleteLine(
        recordsPath_,
        [&](const std::string &line) {
            ResultRecord record;
            std::string parse_error;
            if (ResultRecord::parseJsonLine(line, record, parse_error))
                records.push_back(std::move(record));
            else
                ++bad;
        },
        unused);
    if (dropped)
        *dropped = bad;
    return records;
}

std::unordered_map<std::uint64_t, ResultRecord>
ResultStore::loadLatest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ensureLatestCacheLocked();
    return latestCache_;
}

std::optional<ResultRecord>
ResultStore::findLatest(const Fingerprint &fingerprint) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ensureLatestCacheLocked();
    auto it = latestCache_.find(fingerprint.value);
    if (it == latestCache_.end())
        return std::nullopt;
    return it->second;
}

long
ResultStore::gc(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);

    std::vector<ResultRecord> records;
    std::size_t total_lines = 0;
    if (!forEachCompleteLine(
            recordsPath_,
            [&](const std::string &line) {
                ++total_lines;
                ResultRecord record;
                std::string parse_error;
                if (ResultRecord::parseJsonLine(line, record,
                                                parse_error))
                    records.push_back(std::move(record));
            },
            error))
        return -1;

    // Latest record per fingerprint wins; survivors keep file order
    // of their final occurrence.
    std::unordered_map<std::uint64_t, std::size_t> last;
    for (std::size_t i = 0; i < records.size(); ++i)
        last[records[i].fingerprint.value] = i;

    std::string payload;
    std::size_t kept = 0;
    index_.clear();
    latestCache_.clear();
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (last[records[i].fingerprint.value] != i)
            continue;
        payload += records[i].toJsonLine() + "\n";
        index_.insert(records[i].fingerprint.value);
        latestCache_[records[i].fingerprint.value] =
            std::move(records[i]);
        ++kept;
    }
    latestCacheValid_ = true;
    if (!atomicWriteFile(recordsPath_, payload)) {
        error = "cannot rewrite '" + recordsPath_ + "'";
        return -1;
    }
    if (!rewriteIndexLocked()) {
        error = "cannot rewrite '" + indexPath_ + "'";
        return -1;
    }
    return static_cast<long>(total_lines - kept);
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

bool
loadSnapshot(const std::string &path, std::vector<ResultRecord> &out,
             std::string &error)
{
    out.clear();
    std::string file = path;
    std::error_code ec;
    if (fs::is_directory(path, ec))
        file = (fs::path(path) / "records.jsonl").string();
    if (!fs::exists(file, ec)) {
        error = "no snapshot at '" + file + "'";
        return false;
    }
    return forEachCompleteLine(
        file,
        [&](const std::string &line) {
            ResultRecord record;
            std::string parse_error;
            if (ResultRecord::parseJsonLine(line, record, parse_error))
                out.push_back(std::move(record));
        },
        error);
}

} // namespace stms::results
