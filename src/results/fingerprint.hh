/**
 * @file
 * Canonical configuration fingerprints for the result store.
 *
 * A fingerprint is a stable 64-bit FNV-1a hash over a canonical text
 * serialization of everything that determines an experiment's output:
 * a schema tag, the experiment name and metric-schema version, the
 * run id (for per-run records), and the full key-sorted, normalized
 * parameter set. Two invocations that mean the same experiment point
 * hash equal — key order and numeric spelling ("0.125" vs "0.1250")
 * do not matter — and any single parameter change hashes different.
 *
 * The canonical text (not just the hash) is part of the spec: it is
 * documented in docs/RESULTS.md and pinned by golden tests, because a
 * silent change here orphans every record ever stored. Bump
 * kFingerprintSchema instead of changing the serialization in place.
 */

#ifndef STMS_RESULTS_FINGERPRINT_HH
#define STMS_RESULTS_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stms::results
{

/** Bump when the canonical serialization below changes shape. */
inline constexpr int kFingerprintSchema = 1;

/** Key/value parameter list, as Options::items() produces. */
using ParamList = std::vector<std::pair<std::string, std::string>>;

/** A stable 64-bit configuration hash. */
struct Fingerprint
{
    std::uint64_t value = 0;

    /** 16 lowercase hex digits, the store's on-disk spelling. */
    std::string hex() const;

    /** Parse a full 16-digit hex fingerprint. */
    static bool parseHex(const std::string &text, Fingerprint &out);

    bool operator==(const Fingerprint &other) const = default;
};

/**
 * Normalize one parameter value: ASCII whitespace is trimmed, and a
 * value that parses completely as a finite number is re-rendered in
 * its shortest round-trippable form (so "0.1250", " .125" and
 * "1.25e-1" all normalize to "0.125"). Anything else is kept verbatim
 * after trimming.
 */
std::string normalizeParamValue(const std::string &value);

/** Key-sorted copy of @p params with every value normalized — the
 *  form records persist so stored params match the fingerprint. */
ParamList normalizedParams(const ParamList &params);

/**
 * The canonical serialization of an experiment-level configuration.
 * @p metric_schema is the experiment's schemaVersion() — bumping it
 * deliberately orphans old records when metric semantics change.
 */
std::string canonicalExperimentText(const std::string &experiment,
                                    int metric_schema,
                                    const ParamList &params);

/** The canonical serialization of one run (plan point) within an
 *  experiment; includes everything the experiment text does. */
std::string canonicalRunText(const std::string &experiment,
                             int metric_schema,
                             const std::string &run_id,
                             const ParamList &params);

/** FNV-1a of canonicalExperimentText(). */
Fingerprint fingerprintExperiment(const std::string &experiment,
                                  int metric_schema,
                                  const ParamList &params);

/** FNV-1a of canonicalRunText(). */
Fingerprint fingerprintRun(const std::string &experiment,
                           int metric_schema,
                           const std::string &run_id,
                           const ParamList &params);

} // namespace stms::results

#endif // STMS_RESULTS_FINGERPRINT_HH
