/**
 * @file
 * Minimal JSON reading and writing for the results layer.
 *
 * The result store persists records as JSON Lines and the diff engine
 * reads them (and committed baselines) back, so the repo needs a JSON
 * parser with exactly the subset the store emits: objects, arrays,
 * strings, finite numbers, booleans, and null. Writing goes through
 * jsonEscape()/jsonNumber(), which the driver's Report sinks share —
 * numbers render in their shortest round-trippable form, which is
 * what makes store records byte-diffable across runs.
 */

#ifndef STMS_RESULTS_JSON_HH
#define STMS_RESULTS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stms::results
{

/** Minimal JSON string escaping (control chars, quotes, backslash). */
std::string jsonEscape(const std::string &text);

/** Render a double the way the JSON sinks do (shortest
 *  round-trippable form; integral values print without a point). */
std::string jsonNumber(double value);

/** One parsed JSON value (object keys keep file order). */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Member of an object, or nullptr (first match wins). */
    const JsonValue *find(const std::string &key) const;

    /** Convenience accessors with fallbacks for absent/mistyped
     *  members; keep record parsing tolerant of older schemas. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getNumber(const std::string &key, double fallback = 0.0) const;
};

/**
 * Parse @p text (one complete JSON document; surrounding whitespace
 * allowed, trailing bytes rejected). On failure fills @p error with a
 * byte offset + reason and returns false.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace stms::results

#endif // STMS_RESULTS_JSON_HH
