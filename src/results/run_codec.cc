#include "results/run_codec.hh"

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>

namespace stms::results
{
namespace
{

/** Codec layout version, stored alongside the scalars. */
constexpr double kRunCodecVersion = 1.0;

/** Names for the per-class traffic arrays. */
std::string
trafficKey(std::size_t cls, const char *leaf)
{
    return std::string("sim.traffic.") +
           trafficClassName(static_cast<TrafficClass>(cls)) + "." +
           leaf;
}

/** Names for the per-class row-buffer outcome arrays. */
std::string
rowBufKey(std::size_t cls, const char *leaf)
{
    return std::string("sim.rowbuf.") +
           trafficClassName(static_cast<TrafficClass>(cls)) + "." +
           leaf;
}

struct Encoder
{
    std::vector<std::pair<std::string, double>> out;

    void
    put(const std::string &name, double value)
    {
        out.emplace_back(name, value);
    }

    void
    putPrefetcher(const std::string &prefix,
                  const PrefetcherStats &stats)
    {
        put(prefix + ".issued", static_cast<double>(stats.issued));
        put(prefix + ".useful", static_cast<double>(stats.useful));
        put(prefix + ".partial", static_cast<double>(stats.partial));
        put(prefix + ".erroneous",
            static_cast<double>(stats.erroneous));
        put(prefix + ".redundant",
            static_cast<double>(stats.redundant));
        put(prefix + ".rejected", static_cast<double>(stats.rejected));
    }
};

struct Decoder
{
    std::unordered_map<std::string, double> values;

    double
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0.0 : it->second;
    }

    std::uint64_t
    getU64(const std::string &name) const
    {
        // Guard the double->uint64 cast: negative/NaN/huge values in
        // a hand-damaged record must not hit UB.
        const double value = get(name);
        if (!(value >= 0.0))
            return 0;
        if (value >= 18446744073709549568.0)  // Max double < 2^64.
            return UINT64_MAX;
        return static_cast<std::uint64_t>(value);
    }

    /**
     * A vector length from disk: must be a non-negative integer no
     * larger than @p max, else nullopt — a corrupt record must fail
     * decoding (and trigger re-simulation), not drive an allocation.
     */
    std::optional<std::size_t>
    getCount(const std::string &name, double max) const
    {
        const double value = get(name);
        if (!(value >= 0.0) || value > max ||
            value != std::floor(value))
            return std::nullopt;
        return static_cast<std::size_t>(value);
    }

    void
    getPrefetcher(const std::string &prefix,
                  PrefetcherStats &stats) const
    {
        stats.issued = getU64(prefix + ".issued");
        stats.useful = getU64(prefix + ".useful");
        stats.partial = getU64(prefix + ".partial");
        stats.erroneous = getU64(prefix + ".erroneous");
        stats.redundant = getU64(prefix + ".redundant");
        stats.rejected = getU64(prefix + ".rejected");
    }
};

/** The StmsStats counters, named once for both directions
 *  (@p stats may be const for encoding, mutable for decoding). */
template <typename Stats, typename Fn>
void
forEachStmsCounter(Stats &stats, Fn &&fn)
{
    fn("logged", stats.logged);
    fn("history_block_writes", stats.historyBlockWrites);
    fn("lookups", stats.lookups);
    fn("lookup_hits", stats.lookupHits);
    fn("stale_pointers", stats.stalePointers);
    fn("lookups_suppressed", stats.lookupsSuppressed);
    fn("lookups_ignored", stats.lookupsIgnored);
    fn("streams_started", stats.streamsStarted);
    fn("streams_ended", stats.streamsEnded);
    fn("streams_replaced", stats.streamsReplaced);
    fn("end_marks_written", stats.endMarksWritten);
    fn("pauses", stats.pauses);
    fn("resumes", stats.resumes);
    fn("skip_aheads", stats.skipAheads);
    fn("followed", stats.followed);
    fn("consumed", stats.consumed);
    fn("pump_break_room", stats.pumpBreakRoom);
    fn("pump_break_window", stats.pumpBreakWindow);
    fn("pump_break_outstanding", stats.pumpBreakOutstanding);
    fn("pump_break_pause", stats.pumpBreakPause);
    fn("queue_dry", stats.queueDry);
}

} // namespace

std::vector<std::pair<std::string, double>>
encodeRunOutput(const RunOutput &output)
{
    Encoder enc;
    enc.put("codec", kRunCodecVersion);

    const SimResult &sim = output.sim;
    enc.put("sim.cycles", static_cast<double>(sim.cycles));
    enc.put("sim.instructions",
            static_cast<double>(sim.instructions));
    enc.put("sim.ipc", sim.ipc);

    enc.put("sim.mem.accesses",
            static_cast<double>(sim.mem.accesses));
    enc.put("sim.mem.l1_hits", static_cast<double>(sim.mem.l1Hits));
    enc.put("sim.mem.prefetch_hits",
            static_cast<double>(sim.mem.prefetchHits));
    enc.put("sim.mem.l2_hits", static_cast<double>(sim.mem.l2Hits));
    enc.put("sim.mem.partial_misses",
            static_cast<double>(sim.mem.partialMisses));
    enc.put("sim.mem.offchip_reads",
            static_cast<double>(sim.mem.offchipReads));
    enc.put("sim.mem.offchip_writes",
            static_cast<double>(sim.mem.offchipWrites));

    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        enc.put(trafficKey(cls, "requests"),
                static_cast<double>(sim.traffic.requests[cls]));
        enc.put(trafficKey(cls, "bytes"),
                static_cast<double>(sim.traffic.bytes[cls]));
    }
    enc.put("sim.traffic.high_prio",
            static_cast<double>(sim.traffic.highPrioRequests));
    enc.put("sim.traffic.low_prio",
            static_cast<double>(sim.traffic.lowPrioRequests));
    enc.put("sim.traffic.busy_cycles",
            static_cast<double>(sim.traffic.busyCycles));

    enc.put("sim.mlp.count",
            static_cast<double>(sim.mlpPerCore.size()));
    for (std::size_t i = 0; i < sim.mlpPerCore.size(); ++i)
        enc.put("sim.mlp." + std::to_string(i), sim.mlpPerCore[i]);
    enc.put("sim.mean_mlp", sim.meanMlp);

    enc.put("sim.pf.count",
            static_cast<double>(sim.prefetchers.size()));
    for (std::size_t i = 0; i < sim.prefetchers.size(); ++i)
        enc.putPrefetcher("sim.pf." + std::to_string(i),
                          sim.prefetchers[i]);

    enc.put("sim.mem_utilization", sim.memUtilization);

    // Backend-specific scalars are sparse (zero values implicit, one
    // channel implicit) so records written by the default fixed
    // backend stay byte-identical to the pre-backend codec.
    if (sim.memChannels != 1) {
        enc.put("sim.mem_channels",
                static_cast<double>(sim.memChannels));
    }
    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        if (sim.rowBuffer.hits[cls] != 0) {
            enc.put(rowBufKey(cls, "hits"),
                    static_cast<double>(sim.rowBuffer.hits[cls]));
        }
        if (sim.rowBuffer.empties[cls] != 0) {
            enc.put(rowBufKey(cls, "empties"),
                    static_cast<double>(sim.rowBuffer.empties[cls]));
        }
        if (sim.rowBuffer.conflicts[cls] != 0) {
            enc.put(rowBufKey(cls, "conflicts"),
                    static_cast<double>(sim.rowBuffer.conflicts[cls]));
        }
    }

    enc.put("sim.coverage", sim.coverage);
    enc.put("sim.full_coverage", sim.fullCoverage);
    enc.put("sim.overhead_per_byte", sim.overheadPerDataByte);

    enc.putPrefetcher("stride", output.stride);
    enc.putPrefetcher("stms", output.stms);

    // StmsStats counters + the Fig. 6 stream-length histogram.
    forEachStmsCounter(output.stmsInternal,
                       [&](const char *name, const std::uint64_t &value) {
                           enc.put(std::string("stms_internal.") +
                                       name,
                                   static_cast<double>(value));
                       });
    const Log2Histogram &lengths = output.stmsInternal.streamLengths;
    enc.put("stms_internal.stream_lengths.buckets",
            static_cast<double>(lengths.numBuckets()));
    enc.put("stms_internal.stream_lengths.count",
            static_cast<double>(lengths.count()));
    enc.put("stms_internal.stream_lengths.sum",
            lengths.weightedSum());
    for (std::size_t i = 0; i < lengths.numBuckets(); ++i) {
        if (lengths.bucketCount(i) == 0)
            continue;  // Sparse: zero buckets are implicit.
        enc.put("stms_internal.stream_lengths.b" + std::to_string(i),
                static_cast<double>(lengths.bucketCount(i)));
    }

    enc.put("meta_bytes", static_cast<double>(output.stmsMetaBytes));
    enc.put("coverage", output.stmsCoverage);
    enc.put("full_coverage", output.stmsFullCoverage);
    enc.put("partial_coverage", output.stmsPartialCoverage);
    return std::move(enc.out);
}

bool
decodeRunOutput(
    const std::vector<std::pair<std::string, double>> &scalars,
    RunOutput &output, std::string &error)
{
    output = RunOutput{};
    Decoder dec;
    dec.values.reserve(scalars.size());
    for (const auto &[name, value] : scalars)
        dec.values.emplace(name, value);

    if (dec.get("codec") != kRunCodecVersion) {
        error = "run record written by an incompatible codec";
        return false;
    }

    SimResult &sim = output.sim;
    sim.cycles = dec.getU64("sim.cycles");
    sim.instructions = dec.getU64("sim.instructions");
    sim.ipc = dec.get("sim.ipc");

    sim.mem.accesses = dec.getU64("sim.mem.accesses");
    sim.mem.l1Hits = dec.getU64("sim.mem.l1_hits");
    sim.mem.prefetchHits = dec.getU64("sim.mem.prefetch_hits");
    sim.mem.l2Hits = dec.getU64("sim.mem.l2_hits");
    sim.mem.partialMisses = dec.getU64("sim.mem.partial_misses");
    sim.mem.offchipReads = dec.getU64("sim.mem.offchip_reads");
    sim.mem.offchipWrites = dec.getU64("sim.mem.offchip_writes");

    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        sim.traffic.requests[cls] =
            dec.getU64(trafficKey(cls, "requests"));
        sim.traffic.bytes[cls] = dec.getU64(trafficKey(cls, "bytes"));
    }
    sim.traffic.highPrioRequests = dec.getU64("sim.traffic.high_prio");
    sim.traffic.lowPrioRequests = dec.getU64("sim.traffic.low_prio");
    sim.traffic.busyCycles = dec.getU64("sim.traffic.busy_cycles");

    const auto num_mlp = dec.getCount("sim.mlp.count", 4096);
    if (!num_mlp) {
        error = "implausible sim.mlp.count in run record";
        return false;
    }
    sim.mlpPerCore.resize(*num_mlp);
    for (std::size_t i = 0; i < *num_mlp; ++i)
        sim.mlpPerCore[i] = dec.get("sim.mlp." + std::to_string(i));
    sim.meanMlp = dec.get("sim.mean_mlp");

    const auto num_pf = dec.getCount("sim.pf.count", 256);
    if (!num_pf) {
        error = "implausible sim.pf.count in run record";
        return false;
    }
    sim.prefetchers.resize(*num_pf);
    for (std::size_t i = 0; i < *num_pf; ++i)
        dec.getPrefetcher("sim.pf." + std::to_string(i),
                          sim.prefetchers[i]);

    sim.memUtilization = dec.get("sim.mem_utilization");

    sim.memChannels =
        static_cast<std::uint32_t>(dec.getU64("sim.mem_channels"));
    if (sim.memChannels == 0)
        sim.memChannels = 1;
    for (std::size_t cls = 0; cls < kNumTrafficClasses; ++cls) {
        sim.rowBuffer.hits[cls] = dec.getU64(rowBufKey(cls, "hits"));
        sim.rowBuffer.empties[cls] =
            dec.getU64(rowBufKey(cls, "empties"));
        sim.rowBuffer.conflicts[cls] =
            dec.getU64(rowBufKey(cls, "conflicts"));
    }

    sim.coverage = dec.get("sim.coverage");
    sim.fullCoverage = dec.get("sim.full_coverage");
    sim.overheadPerDataByte = dec.get("sim.overhead_per_byte");

    dec.getPrefetcher("stride", output.stride);
    dec.getPrefetcher("stms", output.stms);

    forEachStmsCounter(output.stmsInternal,
                       [&](const char *name, std::uint64_t &value) {
                           value = dec.getU64(
                               std::string("stms_internal.") + name);
                       });
    const auto histo_buckets =
        dec.getCount("stms_internal.stream_lengths.buckets", 4096);
    if (!histo_buckets) {
        error = "implausible stream_lengths.buckets in run record";
        return false;
    }
    const std::size_t num_buckets = *histo_buckets;
    if (num_buckets >= 2) {
        std::vector<std::uint64_t> buckets(num_buckets, 0);
        for (std::size_t i = 0; i < num_buckets; ++i)
            buckets[i] =
                dec.getU64("stms_internal.stream_lengths.b" +
                           std::to_string(i));
        output.stmsInternal.streamLengths = Log2Histogram(num_buckets);
        output.stmsInternal.streamLengths.restore(
            buckets, dec.getU64("stms_internal.stream_lengths.count"),
            dec.get("stms_internal.stream_lengths.sum"));
    }

    output.stmsMetaBytes = dec.getU64("meta_bytes");
    output.stmsCoverage = dec.get("coverage");
    output.stmsFullCoverage = dec.get("full_coverage");
    output.stmsPartialCoverage = dec.get("partial_coverage");
    return true;
}

} // namespace stms::results
