/**
 * @file
 * The persistent, append-only experiment archive.
 *
 * A store is one directory (per machine, typically outside the build
 * tree) holding:
 *
 *   records.jsonl   append-only JSON Lines, one ResultRecord each
 *   index.tsv       fingerprint dedupe index; trusted when
 *                   well-formed, rebuilt from records.jsonl when
 *                   missing or malformed (delete it — or run
 *                   `--results gc` — after hand-editing the records
 *                   file)
 *
 * Appends dedupe on exact fingerprint: re-running an identical
 * configuration adds nothing unless forced (--rerun). Loads tolerate
 * a truncated final line — the crash artifact an interrupted append
 * leaves behind — by ignoring it; every full-file write (index, gc
 * compaction) goes through atomicWriteFile() so no reader ever sees
 * a half-written file. The store is thread-safe: worker threads
 * append concurrently while a sweep runs.
 */

#ifndef STMS_RESULTS_STORE_HH
#define STMS_RESULTS_STORE_HH

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "results/record.hh"

namespace stms::results
{

/**
 * Write @p payload to @p path atomically: the bytes land in a
 * same-directory temp file which is fsync-free renamed over @p path,
 * so an interrupted write never leaves a truncated file behind.
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &payload);

/** `git describe --always --dirty` of the working tree, cached for
 *  the process ("unknown" outside a repo). The STMS_GIT_DESCRIBE
 *  environment variable overrides — CI and tests pin it. */
std::string gitDescribe();

/** Current UTC time as "YYYY-MM-DDThh:mm:ssZ". */
std::string utcTimestamp();

/** One open results directory. */
class ResultStore
{
  public:
    /** Open (creating if needed) the store at @p dir; nullptr +
     *  @p error when the directory cannot be created or read. */
    static std::unique_ptr<ResultStore> open(const std::string &dir,
                                             std::string &error);

    const std::string &dir() const { return dir_; }
    const std::string &recordsPath() const { return recordsPath_; }

    /** True when a record with @p fingerprint was ever appended. */
    bool contains(const Fingerprint &fingerprint) const;

    /**
     * Append @p record. Returns true when written; false when an
     * exact-fingerprint duplicate already exists and @p force is
     * unset (the dedupe path). Thread-safe.
     */
    bool append(const ResultRecord &record, bool force = false);

    /** Every record, in file order (malformed lines are skipped and
     *  counted in @p dropped when non-null). */
    std::vector<ResultRecord>
    loadAll(std::size_t *dropped = nullptr) const;

    /** Latest record per fingerprint (later appends win). */
    std::unordered_map<std::uint64_t, ResultRecord>
    loadLatest() const;

    /**
     * Latest record for @p fingerprint, or nullopt. Served from an
     * in-memory cache built on first use and kept current across
     * append()/gc(), so resuming a multi-experiment sweep parses
     * records.jsonl once, not once per experiment.
     */
    std::optional<ResultRecord>
    findLatest(const Fingerprint &fingerprint) const;

    /**
     * Compact records.jsonl down to the latest record per
     * fingerprint, dropping superseded duplicates and malformed
     * lines; rewrites file + index atomically. Returns the number of
     * lines dropped, or -1 with @p error set.
     */
    long gc(std::string &error);

    std::size_t size() const;

  private:
    ResultStore(std::string dir, std::string records_path,
                std::string index_path);

    bool loadOrRebuildIndex(std::string &error);
    bool rewriteIndexLocked();
    void ensureLatestCacheLocked() const;

    std::string dir_;
    std::string recordsPath_;
    std::string indexPath_;

    mutable std::mutex mutex_;
    std::unordered_set<std::uint64_t> index_;
    /** Lazily built latest-record-per-fingerprint cache; this
     *  process is the store's only writer, so append()/gc() keep it
     *  current instead of invalidating it. */
    mutable bool latestCacheValid_ = false;
    mutable std::unordered_map<std::uint64_t, ResultRecord>
        latestCache_;
};

/**
 * Load a diffable snapshot from @p path: a store directory (its
 * records.jsonl) or a bare .jsonl file (e.g. a committed baseline).
 * Malformed lines and a truncated tail are skipped.
 */
bool loadSnapshot(const std::string &path,
                  std::vector<ResultRecord> &out, std::string &error);

} // namespace stms::results

#endif // STMS_RESULTS_STORE_HH
