#include "results/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stms::results
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";  // JSON has no inf/nan.
    char buf[64];
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    // %.17g round-trips doubles exactly, which both the determinism
    // tests and the result store's scalar diffing rely on.
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *value = find(key);
    return value && value->isString() ? value->text : fallback;
}

double
JsonValue::getNumber(const std::string &key, double fallback) const
{
    const JsonValue *value = find(key);
    return value && value->isNumber() ? value->number : fallback;
}

namespace
{

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &reason)
    {
        error_ = "offset " + std::to_string(pos_) + ": " + reason;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r')
                break;
            ++pos_;
        }
    }

    bool
    expect(char ch)
    {
        if (pos_ >= text_.size() || text_[pos_] != ch)
            return fail(std::string("expected '") + ch + "'");
        ++pos_;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("bad literal (expected ") + word +
                        ")");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.text);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null", 4);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Object;
        ++pos_;  // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipSpace();
            if (!expect(':'))
                return false;
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Array;
        ++pos_;  // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char ch = text_[pos_++];
            if (ch == '"')
                return true;
            if (static_cast<unsigned char>(ch) < 0x20)
                return fail("raw control character in string");
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The store only ever emits \u00xx for control
                // characters; encode the general case as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return fail("expected a JSON value");
        if (!std::isfinite(value))
            return fail("non-finite number");
        out.type = JsonValue::Type::Number;
        out.number = value;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace stms::results
