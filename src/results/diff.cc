#include "results/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "results/json.hh"
#include "stats/table.hh"

namespace stms::results
{

bool
DiffTolerances::close(const std::string &metric, double a,
                      double b) const
{
    if (a == b)
        return true;  // Covers exact matches including infinities.
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    double rel = relTol;
    if (auto it = perMetricRel.find(metric); it != perMetricRel.end())
        rel = it->second;
    return std::fabs(a - b) <=
           absTol + rel * std::max(std::fabs(a), std::fabs(b));
}

DiffTolerances
tolerancesFromOptions(const Options &options)
{
    DiffTolerances tolerances;
    tolerances.absTol =
        options.getDouble("abs_tol", tolerances.absTol);
    tolerances.relTol =
        options.getDouble("rel_tol", tolerances.relTol);
    for (const auto &[key, value] : options.items()) {
        if (key.rfind("tol.", 0) != 0)
            continue;
        tolerances.perMetricRel[key.substr(4)] =
            std::strtod(value.c_str(), nullptr);
    }
    return tolerances;
}

namespace
{

/** Latest experiment-kind record per fingerprint, keeping an
 *  insertion order for deterministic output. */
std::vector<const ResultRecord *>
latestExperiments(const std::vector<ResultRecord> &records)
{
    std::unordered_map<std::uint64_t, std::size_t> position;
    std::vector<const ResultRecord *> out;
    for (const ResultRecord &record : records) {
        if (record.kind != kKindExperiment)
            continue;
        auto it = position.find(record.fingerprint.value);
        if (it == position.end()) {
            position.emplace(record.fingerprint.value, out.size());
            out.push_back(&record);
        } else {
            out[it->second] = &record;  // Later occurrence wins.
        }
    }
    return out;
}

} // namespace

DiffResult
diffSnapshots(const std::vector<ResultRecord> &before,
              const std::vector<ResultRecord> &after,
              const DiffTolerances &tolerances)
{
    DiffResult result;
    const auto before_latest = latestExperiments(before);
    const auto after_latest = latestExperiments(after);

    std::unordered_map<std::uint64_t, const ResultRecord *> after_map;
    for (const ResultRecord *record : after_latest)
        after_map.emplace(record->fingerprint.value, record);

    std::unordered_map<std::uint64_t, const ResultRecord *> before_map;
    for (const ResultRecord *record : before_latest)
        before_map.emplace(record->fingerprint.value, record);

    for (const ResultRecord *record : after_latest)
        if (!before_map.count(record->fingerprint.value))
            result.added.push_back(*record);

    for (const ResultRecord *old : before_latest) {
        auto it = after_map.find(old->fingerprint.value);
        if (it == after_map.end()) {
            result.removed.push_back(*old);
            continue;
        }
        ++result.matched;
        const ResultRecord &now = *it->second;

        RecordDiff drift;
        drift.fingerprint = old->fingerprint;
        drift.experiment = old->experiment;
        for (const auto &[metric, value] : old->scalars) {
            if (!now.hasScalar(metric)) {
                drift.metrics.push_back(
                    MetricChange{metric, value, 0.0, "only-before"});
                continue;
            }
            ++result.scalarsCompared;
            const double updated = now.scalar(metric);
            if (!tolerances.close(metric, value, updated))
                drift.metrics.push_back(
                    MetricChange{metric, value, updated, "changed"});
        }
        for (const auto &[metric, value] : now.scalars)
            if (!old->hasScalar(metric))
                drift.metrics.push_back(
                    MetricChange{metric, 0.0, value, "only-after"});
        if (!drift.metrics.empty())
            result.changed.push_back(std::move(drift));
    }
    return result;
}

std::string
renderDiff(const DiffResult &diff)
{
    std::string out;
    if (!diff.added.empty()) {
        Table table({"fingerprint", "experiment", "scalars"});
        for (const ResultRecord &record : diff.added)
            table.addRow({record.fingerprint.hex(), record.experiment,
                          std::to_string(record.scalars.size())});
        out += "added (new configurations; not a failure):\n" +
               table.toString() + "\n";
    }
    if (!diff.removed.empty()) {
        Table table({"fingerprint", "experiment", "scalars"});
        for (const ResultRecord &record : diff.removed)
            table.addRow({record.fingerprint.hex(), record.experiment,
                          std::to_string(record.scalars.size())});
        out += "removed (present in baseline, missing now):\n" +
               table.toString() + "\n";
    }
    if (!diff.changed.empty()) {
        Table table({"fingerprint", "experiment", "metric", "before",
                     "after", "rel-delta"});
        for (const RecordDiff &drift : diff.changed) {
            for (const MetricChange &change : drift.metrics) {
                const double mag = std::max(std::fabs(change.before),
                                            std::fabs(change.after));
                const double rel =
                    mag == 0.0
                        ? 0.0
                        : std::fabs(change.after - change.before) /
                              mag;
                table.addRow(
                    {drift.fingerprint.hex(), drift.experiment,
                     change.metric + (change.what == "changed"
                                          ? ""
                                          : " [" + change.what + "]"),
                     jsonNumber(change.before),
                     jsonNumber(change.after), jsonNumber(rel)});
            }
        }
        out += "changed (out of tolerance):\n" + table.toString() +
               "\n";
    }

    out += "diff: " + std::to_string(diff.matched) + " matched, " +
           std::to_string(diff.scalarsCompared) +
           " scalars compared, " +
           std::to_string(diff.added.size()) + " added, " +
           std::to_string(diff.removed.size()) + " removed, " +
           std::to_string(diff.changed.size()) + " changed -> " +
           (diff.clean() ? "CLEAN" : "DIRTY") + "\n";
    return out;
}

} // namespace stms::results
