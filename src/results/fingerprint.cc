#include "results/fingerprint.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.hh"
#include "results/json.hh"

namespace stms::results
{

std::string
Fingerprint::hex() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

bool
Fingerprint::parseHex(const std::string &text, Fingerprint &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (const char ch : text) {
        value <<= 4;
        if (ch >= '0' && ch <= '9')
            value |= static_cast<std::uint64_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            value |= static_cast<std::uint64_t>(ch - 'a' + 10);
        else
            return false;
    }
    out.value = value;
    return true;
}

std::string
normalizeParamValue(const std::string &value)
{
    std::size_t begin = 0;
    std::size_t end = value.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(value[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(value[end - 1])))
        --end;
    const std::string trimmed = value.substr(begin, end - begin);
    if (trimmed.empty())
        return trimmed;

    // Fully-numeric values get one canonical spelling. strtod must
    // consume every byte — "8K" and "0x10" stay verbatim so size
    // suffixes and workload names are never mangled.
    char *parse_end = nullptr;
    const double parsed = std::strtod(trimmed.c_str(), &parse_end);
    const bool all_consumed =
        parse_end == trimmed.c_str() + trimmed.size();
    const bool plain_decimal =
        trimmed.find_first_of("xXpP") == std::string::npos;
    if (all_consumed && plain_decimal && std::isfinite(parsed))
        return jsonNumber(parsed);
    return trimmed;
}

ParamList
normalizedParams(const ParamList &params)
{
    ParamList sorted = params;
    std::sort(sorted.begin(), sorted.end());
    for (auto &[key, value] : sorted)
        value = normalizeParamValue(value);
    return sorted;
}

namespace
{

void
appendParams(std::string &out, const ParamList &params)
{
    for (const auto &[key, value] : normalizedParams(params)) {
        out += "param.";
        out += key;
        out += '=';
        out += value;
        out += '\n';
    }
}

std::string
canonicalHeader(const char *kind, const std::string &experiment,
                int metric_schema)
{
    std::string out = "stms.results.v";
    out += std::to_string(kFingerprintSchema);
    out += "\nkind=";
    out += kind;
    out += "\nexperiment=";
    out += experiment;
    out += "\nschema=";
    out += std::to_string(metric_schema);
    out += '\n';
    return out;
}

} // namespace

std::string
canonicalExperimentText(const std::string &experiment,
                        int metric_schema, const ParamList &params)
{
    std::string out =
        canonicalHeader("experiment", experiment, metric_schema);
    appendParams(out, params);
    return out;
}

std::string
canonicalRunText(const std::string &experiment, int metric_schema,
                 const std::string &run_id, const ParamList &params)
{
    std::string out = canonicalHeader("run", experiment, metric_schema);
    out += "run=";
    out += run_id;
    out += '\n';
    appendParams(out, params);
    return out;
}

Fingerprint
fingerprintExperiment(const std::string &experiment, int metric_schema,
                      const ParamList &params)
{
    const std::string text =
        canonicalExperimentText(experiment, metric_schema, params);
    return Fingerprint{fnv1a64(text.data(), text.size())};
}

Fingerprint
fingerprintRun(const std::string &experiment, int metric_schema,
               const std::string &run_id, const ParamList &params)
{
    const std::string text =
        canonicalRunText(experiment, metric_schema, run_id, params);
    return Fingerprint{fnv1a64(text.data(), text.size())};
}

} // namespace stms::results
