/**
 * @file
 * Physical placement of predictor meta-data.
 *
 * The paper's predictor keeps its index table and per-core history
 * buffers in main memory (Sec. 4.1). For the fixed-latency model only
 * the byte counts matter, but the DRAM backend needs addresses to
 * model row-buffer and bank behavior of the meta-data streams — the
 * sequential history-buffer append/read stream is exactly the kind of
 * access pattern open-row DRAM rewards, which mem_tech_sweep measures.
 *
 * Meta structures live in a reserved region far above any workload
 * address (synthetic traces top out below 2^38 bytes), laid out as:
 *
 *   kMetaIndexBase    index-table buckets, 64 B apart
 *   kMetaHistoryBase  per-core history buffers, kMetaCoreStride apart
 *   kMetaTableBase    correlation-table rows for table prefetchers
 */

#ifndef STMS_PREFETCH_META_ADDR_HH
#define STMS_PREFETCH_META_ADDR_HH

#include "common/types.hh"

namespace stms
{

/** Base of the index-table region. */
inline constexpr Addr kMetaIndexBase = Addr(1) << 40;
/** Base of the history-buffer region. */
inline constexpr Addr kMetaHistoryBase = (Addr(1) << 40) + (Addr(1) << 39);
/** Base of the correlation-table region. */
inline constexpr Addr kMetaTableBase = (Addr(1) << 40) + (Addr(3) << 38);
/** Address stride between consecutive cores' history buffers. */
inline constexpr Addr kMetaCoreStride = Addr(1) << 34;

/** Address of index-table bucket @p bucket. */
constexpr Addr
metaIndexAddr(std::uint64_t bucket)
{
    return kMetaIndexBase + bucket * kBlockBytes;
}

/** Address of history block @p historyBlock of @p core's buffer. */
constexpr Addr
metaHistoryAddr(CoreId core, std::uint64_t historyBlock)
{
    return kMetaHistoryBase + core * kMetaCoreStride +
           historyBlock * kBlockBytes;
}

/** Address of correlation-table row @p row. */
constexpr Addr
metaTableAddr(std::uint64_t row)
{
    return kMetaTableBase + row * kBlockBytes;
}

} // namespace stms

#endif // STMS_PREFETCH_META_ADDR_HH
