#include "prefetch/correlation_table.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/log.hh"
#include "prefetch/meta_addr.hh"

namespace stms
{

CorrelationPrefetcher::CorrelationPrefetcher(
    const CorrelationConfig &config)
    : config_(config)
{
    stms_assert(config.depth > 0 && config.depth <= kMaxDepth,
                "correlation depth %u out of range", config.depth);
    stms_assert(config.ways > 0, "correlation table needs ways");
    sets_ = ceilPowerOfTwo(
        std::max<std::uint64_t>(1, config.tableEntries / config.ways));
    table_.resize(sets_ * config.ways);
}

void
CorrelationPrefetcher::attach(PrefetchPort &port, std::uint32_t num_cores,
                              std::uint32_t id)
{
    Prefetcher::attach(port, num_cores, id);
    recent_.assign(num_cores, {});
    lastLookupTick_.assign(num_cores, 0);
}

CorrelationPrefetcher::Entry *
CorrelationPrefetcher::find(Addr block)
{
    const std::uint64_t set = mixHash64(blockNumber(block)) & (sets_ - 1);
    Entry *base = &table_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (base[w].valid && base[w].trigger == block)
            return &base[w];
    return nullptr;
}

CorrelationPrefetcher::Entry &
CorrelationPrefetcher::allocate(Addr block)
{
    const std::uint64_t set = mixHash64(blockNumber(block)) & (sets_ - 1);
    Entry *base = &table_[set * config_.ways];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->trigger = block;
    victim->successors.clear();
    victim->valid = true;
    victim->lastUse = ++useClock_;
    return *victim;
}

void
CorrelationPrefetcher::update(CoreId core, Addr block)
{
    auto &window = recent_[core];
    window.push_back(block);
    if (window.size() < config_.depth + 1)
        return;

    // The oldest miss in the window correlates to the depth misses
    // that followed it.
    const Addr trigger = window.front();
    window.pop_front();

    Entry *entry = find(trigger);
    if (!entry)
        entry = &allocate(trigger);
    entry->successors.assign(window.begin(), window.end());
    entry->lastUse = ++useClock_;
    ++updates_;

    if (config_.offchipMeta) {
        // Read-modify-write of the off-chip table entry.
        const Addr row = metaTableAddr(blockNumber(trigger));
        port_->metaRequest(TrafficClass::MetaUpdate, row, 1, nullptr);
        port_->metaRequest(TrafficClass::MetaUpdate, row, 1, nullptr);
    }
}

void
CorrelationPrefetcher::firePrefetches(CoreId core,
                                      std::vector<Addr> successors)
{
    for (Addr successor : successors)
        port_->issuePrefetch(*this, core, successor);
}

void
CorrelationPrefetcher::lookupAndPrefetch(CoreId core, Addr block)
{
    ++lookups_;
    Entry *entry = find(block);
    if (entry) {
        ++lookupHits_;
        entry->lastUse = ++useClock_;
    }
    std::vector<Addr> successors =
        entry ? entry->successors : std::vector<Addr>{};

    if (config_.offchipMeta) {
        // One memory round trip before any prefetch can issue.
        port_->metaRequest(
            TrafficClass::MetaLookup, metaTableAddr(blockNumber(block)),
            1, [this, core, successors = std::move(successors)](Cycle) {
                firePrefetches(core, successors);
            });
    } else if (!successors.empty()) {
        firePrefetches(core, std::move(successors));
    }
}

void
CorrelationPrefetcher::onOffchipRead(CoreId core, Addr block)
{
    const Cycle now = port_->now();
    bool do_lookup = true;
    if (config_.epochMode) {
        // EBCP looks up once per off-chip miss epoch; we approximate an
        // epoch boundary as a gap of at least one memory latency since
        // the previous lookup.
        do_lookup = (now >= lastLookupTick_[core] + config_.epochGap) ||
                    lastLookupTick_[core] == 0;
    }
    if (do_lookup) {
        lastLookupTick_[core] = now;
        lookupAndPrefetch(core, block);
    }
    update(core, block);
}

} // namespace stms
