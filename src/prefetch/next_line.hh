/**
 * @file
 * Next-line prefetcher (Table 1 lists one in the instruction-fetch
 * unit).
 *
 * On every off-chip read miss, fetch the next @p degree sequential
 * blocks. The simplest possible prefetcher: useful as a sanity
 * baseline (it captures pure spatial locality and nothing else) and
 * as a reference point in tests.
 */

#ifndef STMS_PREFETCH_NEXT_LINE_HH
#define STMS_PREFETCH_NEXT_LINE_HH

#include <cstdint>
#include <string>

#include "prefetch/prefetcher.hh"

namespace stms
{

/** Next-line prefetcher configuration. */
struct NextLineConfig
{
    std::uint32_t degree = 1;  ///< Sequential blocks fetched per miss.
};

/** Fetch block N+1 (.. N+degree) whenever block N misses. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(const NextLineConfig &config = {});

    const std::string &name() const override { return name_; }
    void onOffchipRead(CoreId core, Addr block) override;

    std::uint64_t triggered() const { return triggered_; }
    void resetStats() override { triggered_ = 0; }

  private:
    NextLineConfig config_;
    std::string name_ = "next-line";
    std::uint64_t triggered_ = 0;
};

} // namespace stms

#endif // STMS_PREFETCH_NEXT_LINE_HH
