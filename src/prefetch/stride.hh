/**
 * @file
 * Stride prefetcher (the paper's base system includes one; Table 1:
 * 32-entry buffer, max 16 distinct strides).
 *
 * Classic address-delta stream detection: per core, a small table of
 * recently observed miss strides; when the same stride between
 * consecutive misses to a region repeats, the prefetcher runs ahead by
 * a configurable degree. All STMS coverage is reported in excess of
 * this prefetcher (Sec. 5.1), so it is active in every configuration.
 */

#ifndef STMS_PREFETCH_STRIDE_HH
#define STMS_PREFETCH_STRIDE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stms
{

/** Stride prefetcher configuration. */
struct StrideConfig
{
    std::uint32_t tableEntries = 16;  ///< Distinct strides tracked/core.
    std::uint32_t degree = 4;         ///< Blocks prefetched per match.
    std::uint32_t trainThreshold = 2; ///< Stride repeats before launch.
};

/** Per-core stride-detection table driving next-line style prefetch. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &config = {});

    const std::string &name() const override { return name_; }
    void attach(PrefetchPort &port, std::uint32_t num_cores,
                std::uint32_t id) override;

    void onOffchipRead(CoreId core, Addr block) override;

    std::uint64_t launches() const { return launches_; }
    void resetStats() override { launches_ = 0; }

  private:
    struct Entry
    {
        Addr lastBlock = kInvalidAddr;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    StrideConfig config_;
    std::string name_ = "stride";
    std::vector<std::vector<Entry>> tables_;
    std::uint64_t useClock_ = 0;
    std::uint64_t launches_ = 0;
};

} // namespace stms

#endif // STMS_PREFETCH_STRIDE_HH
