/**
 * @file
 * Prefetcher interface.
 *
 * Prefetchers observe the off-chip miss stream through hooks invoked by
 * the MemorySystem and issue prefetches back through a PrefetchPort.
 * Data prefetched on a core's behalf lands in that core's per-prefetcher
 * prefetch buffer (Jouppi-style, Sec. 4.2), never in the caches, so
 * erroneous prefetches cannot pollute them.
 */

#ifndef STMS_PREFETCH_PREFETCHER_HH
#define STMS_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <span>
#include <string>

#include "common/types.hh"

namespace stms
{

class Prefetcher;

/** Outcome of an issuePrefetch call. */
enum class IssueResult : std::uint8_t
{
    Issued,          ///< Memory request launched.
    AlreadyPresent,  ///< Block already cached/buffered/in flight.
    NoResources,     ///< Prefetch-buffer or MSHR space exhausted.
};

/**
 * Services the MemorySystem provides to prefetchers.
 *
 * metaRequest models predictor meta-data traffic (index-table lookups
 * and updates, history-buffer reads and writes); it always travels at
 * low priority, which the paper finds essential (Sec. 4.3).
 */
class PrefetchPort
{
  public:
    virtual ~PrefetchPort() = default;

    /** Launch a prefetch of @p block for @p core. */
    virtual IssueResult issuePrefetch(Prefetcher &owner, CoreId core,
                                      Addr block) = 0;

    /**
     * Issue predictor meta-data traffic of @p blocks cache blocks at
     * meta-data address @p addr (see kMetaIndexBase and friends in
     * meta_addr.hh — meta structures occupy their own physical region
     * so DRAM-timing backends can model their row/bank locality).
     * @p done fires when the access completes (null for posted writes).
     */
    virtual void metaRequest(TrafficClass cls, Addr addr,
                             std::uint32_t blocks, TimedCallback done) = 0;

    /** Current simulated time. */
    virtual Cycle now() const = 0;

    /** Number of additional prefetches @p core can absorb right now. */
    virtual std::uint32_t prefetchRoom(const Prefetcher &owner,
                                       CoreId core) const = 0;
};

/** Per-prefetcher issue/outcome statistics, kept by the MemorySystem. */
struct PrefetcherStats
{
    std::uint64_t issued = 0;      ///< Prefetches sent to memory.
    std::uint64_t useful = 0;      ///< Consumed while in the buffer.
    std::uint64_t partial = 0;     ///< Demanded while still in flight.
    std::uint64_t erroneous = 0;   ///< Evicted or discarded unused.
    std::uint64_t redundant = 0;   ///< Dropped: target already present.
    std::uint64_t rejected = 0;    ///< Dropped: no resources.

    double
    accuracy() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(useful + partial) /
                             static_cast<double>(issued);
    }
};

/**
 * Base class for all prefetchers.
 *
 * The MemorySystem invokes the on* hooks; implementations react by
 * calling back into the PrefetchPort. All hooks run at the tick
 * reported by port().now().
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual const std::string &name() const = 0;

    /** Bind to a memory system. Called once at registration. */
    virtual void
    attach(PrefetchPort &port, std::uint32_t num_cores, std::uint32_t id)
    {
        port_ = &port;
        numCores_ = num_cores;
        id_ = id;
    }

    /**
     * An off-chip demand read miss by @p core on @p block — the trigger
     * event for address-correlating prefetchers.
     */
    virtual void onOffchipRead(CoreId core, Addr block) = 0;

    /**
     * A demand access consumed @p block from this prefetcher's buffer
     * (fully covered) or merged with it in flight (partially covered,
     * @p partial = true).
     */
    virtual void
    onPrefetchUsed(CoreId core, Addr block, bool partial)
    {
        (void)core; (void)block; (void)partial;
    }

    /**
     * A demand miss was covered by a *different* prefetcher's buffer.
     * Temporal streaming logs these in the history buffer too: the
     * recorded miss sequence includes all prefetched hits (Sec. 4.2).
     */
    virtual void onForeignCovered(CoreId core, Addr block)
    {
        (void)core; (void)block;
    }

    /** A prefetched block arrived in @p core's buffer. */
    virtual void onPrefetchFill(CoreId core, Addr block)
    {
        (void)core; (void)block;
    }

    /** A prefetched block was evicted unused (erroneous prefetch). */
    virtual void onPrefetchUnused(CoreId core, Addr block)
    {
        (void)core; (void)block;
    }

    /**
     * Host-side hint: @p core's trace cursor just exposed a new chunk
     * whose first accesses are @p addrs. Implementations may warm
     * host caches for structures those accesses will probe (e.g.
     * software-prefetching index-table buckets). The hook must have
     * NO architectural effect — no stats, no state, no simulated
     * traffic — because whether and when it fires depends on chunk
     * boundaries, which must never change model output.
     */
    virtual void onAccessHint(CoreId core, std::span<const Addr> addrs)
    {
        (void)core; (void)addrs;
    }

    /** Reset internal statistics at the warmup barrier. */
    virtual void resetStats() {}

    std::uint32_t id() const { return id_; }

  protected:
    PrefetchPort *port_ = nullptr;
    std::uint32_t numCores_ = 0;
    std::uint32_t id_ = 0;
};

} // namespace stms

#endif // STMS_PREFETCH_PREFETCHER_HH
