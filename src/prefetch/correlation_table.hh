/**
 * @file
 * Fixed-depth set-associative correlation prefetcher — the single-table
 * organization of EBCP (Chou, MICRO'07) and ULMT (Solihin et al.,
 * ISCA'02) that the paper contrasts with STMS's split tables (Secs. 3
 * and 5.4).
 *
 * Each table entry maps a trigger miss address to a short, fixed-length
 * sequence of successor misses (the "prefetch depth", 3-6 in published
 * designs). With off-chip meta-data enabled, every lookup costs one
 * memory access and every update a read-modify-write, reproducing the
 * traffic structure of Fig. 1 (right); epoch mode performs lookups only
 * at off-chip miss epoch boundaries as EBCP does.
 */

#ifndef STMS_PREFETCH_CORRELATION_TABLE_HH
#define STMS_PREFETCH_CORRELATION_TABLE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stms
{

/** Fixed-depth correlation prefetcher configuration. */
struct CorrelationConfig
{
    std::uint64_t tableEntries = 1 << 20;  ///< Trigger entries.
    std::uint32_t ways = 8;                ///< Set associativity.
    std::uint32_t depth = 4;               ///< Successors per entry.
    bool offchipMeta = true;   ///< Meta-data lives in main memory.
    bool epochMode = false;    ///< EBCP: lookup once per miss epoch.
    /** Cycles with no lookup that end an epoch (≈ memory latency). */
    Cycle epochGap = 180;
};

/** Single-table, fixed-depth address-correlating prefetcher. */
class CorrelationPrefetcher : public Prefetcher
{
  public:
    explicit CorrelationPrefetcher(const CorrelationConfig &config = {});

    const std::string &name() const override { return name_; }
    void attach(PrefetchPort &port, std::uint32_t num_cores,
                std::uint32_t id) override;

    void onOffchipRead(CoreId core, Addr block) override;

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t lookupHits() const { return lookupHits_; }
    std::uint64_t updates() const { return updates_; }
    void resetStats() override { lookups_ = lookupHits_ = updates_ = 0; }

  private:
    static constexpr std::uint32_t kMaxDepth = 16;

    struct Entry
    {
        Addr trigger = kInvalidAddr;
        std::vector<Addr> successors;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Entry *find(Addr block);
    Entry &allocate(Addr block);
    void update(CoreId core, Addr block);
    void lookupAndPrefetch(CoreId core, Addr block);
    void firePrefetches(CoreId core, std::vector<Addr> successors);

    CorrelationConfig config_;
    std::string name_ = "correlation";
    std::uint64_t sets_ = 0;
    std::vector<Entry> table_;
    /** Last depth+1 misses per core (sliding successor window). */
    std::vector<std::deque<Addr>> recent_;
    std::vector<Cycle> lastLookupTick_;
    std::uint64_t useClock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t lookupHits_ = 0;
    std::uint64_t updates_ = 0;
};

} // namespace stms

#endif // STMS_PREFETCH_CORRELATION_TABLE_HH
