/**
 * @file
 * Fully-associative prefetch buffer (2 KB = 32 blocks per core).
 *
 * Prefetched blocks wait here until a demand access consumes them or
 * LRU pressure evicts them; an unused eviction is an erroneous
 * prefetch. Keeping prefetched data out of the caches avoids pollution
 * (Sec. 4.2, following Jouppi's victim/stream buffers).
 *
 * Storage is one flat MRU-first address array — at 32 entries that is
 * four cache lines scanned with the simd.hh first-match kernel, where
 * the old list+hash-map pair cost a heap node and a pointer chase per
 * block. Recency moves are the same shift-to-front the index buckets
 * use, so LRU order (and therefore every eviction) is bit-identical
 * to the list implementation.
 */

#ifndef STMS_PREFETCH_PREFETCH_BUFFER_HH
#define STMS_PREFETCH_PREFETCH_BUFFER_HH

#include <cstdint>
#include <optional>

#include "common/arena.hh"
#include "common/types.hh"

namespace stms
{

/** Fully-associative LRU buffer of prefetched block addresses. */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::uint32_t capacity = 32);

    PrefetchBuffer(PrefetchBuffer &&) = default;
    PrefetchBuffer &operator=(PrefetchBuffer &&) = default;

    /** Non-destructive presence check. */
    bool contains(Addr block) const;

    /**
     * Consume a block on a demand hit: removes it and frees the entry.
     * @return true if the block was present.
     */
    bool consume(Addr block);

    /**
     * Insert a freshly prefetched block. If the buffer is full the LRU
     * entry is evicted and returned so the caller can count it as an
     * erroneous prefetch.
     */
    std::optional<Addr> insert(Addr block);

    /** Drop a block without counting it as used (e.g., invalidation). */
    bool invalidate(Addr block);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const { return count_; }
    std::uint32_t room() const { return capacity_ - count_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t count_ = 0;
    /** blocks_[0, count_), MRU at slot 0; simd.hh scan padding. */
    ArenaBuffer<Addr> blocks_;
};

} // namespace stms

#endif // STMS_PREFETCH_PREFETCH_BUFFER_HH
