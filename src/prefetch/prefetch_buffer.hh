/**
 * @file
 * Fully-associative prefetch buffer (2 KB = 32 blocks per core).
 *
 * Prefetched blocks wait here until a demand access consumes them or
 * LRU pressure evicts them; an unused eviction is an erroneous
 * prefetch. Keeping prefetched data out of the caches avoids pollution
 * (Sec. 4.2, following Jouppi's victim/stream buffers).
 */

#ifndef STMS_PREFETCH_PREFETCH_BUFFER_HH
#define STMS_PREFETCH_PREFETCH_BUFFER_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace stms
{

/** Fully-associative LRU buffer of prefetched block addresses. */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::uint32_t capacity = 32);

    /** Non-destructive presence check. */
    bool contains(Addr block) const;

    /**
     * Consume a block on a demand hit: removes it and frees the entry.
     * @return true if the block was present.
     */
    bool consume(Addr block);

    /**
     * Insert a freshly prefetched block. If the buffer is full the LRU
     * entry is evicted and returned so the caller can count it as an
     * erroneous prefetch.
     */
    std::optional<Addr> insert(Addr block);

    /** Drop a block without counting it as used (e.g., invalidation). */
    bool invalidate(Addr block);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(lru_.size());
    }
    std::uint32_t room() const { return capacity_ - size(); }

  private:
    std::uint32_t capacity_;
    /** MRU at front. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> index_;
};

} // namespace stms

#endif // STMS_PREFETCH_PREFETCH_BUFFER_HH
