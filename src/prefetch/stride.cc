#include "prefetch/stride.hh"

#include <cstdlib>

#include "common/log.hh"

namespace stms
{

StridePrefetcher::StridePrefetcher(const StrideConfig &config)
    : config_(config)
{
    stms_assert(config.tableEntries > 0, "stride table needs entries");
}

void
StridePrefetcher::attach(PrefetchPort &port, std::uint32_t num_cores,
                         std::uint32_t id)
{
    Prefetcher::attach(port, num_cores, id);
    tables_.assign(num_cores,
                   std::vector<Entry>(config_.tableEntries));
}

void
StridePrefetcher::onOffchipRead(CoreId core, Addr block)
{
    const std::int64_t block_num =
        static_cast<std::int64_t>(blockNumber(block));
    auto &table = tables_[core];

    // Find the tracking entry closest to this miss (within a region).
    Entry *match = nullptr;
    std::int64_t best_distance = 64;  // Blocks; beyond this, no match.
    for (auto &entry : table) {
        if (!entry.valid)
            continue;
        const std::int64_t distance = std::llabs(
            block_num - static_cast<std::int64_t>(
                            blockNumber(entry.lastBlock)));
        if (distance < best_distance && distance != 0) {
            best_distance = distance;
            match = &entry;
        }
    }

    if (!match) {
        // Allocate the LRU entry for a new candidate stream.
        Entry *victim = &table[0];
        for (auto &entry : table) {
            if (!entry.valid) {
                victim = &entry;
                break;
            }
            if (entry.lastUse < victim->lastUse)
                victim = &entry;
        }
        *victim = Entry{block, 0, 0, ++useClock_, true};
        return;
    }

    const std::int64_t delta =
        block_num - static_cast<std::int64_t>(blockNumber(match->lastBlock));
    if (delta == match->stride && delta != 0) {
        if (match->confidence < 255)
            ++match->confidence;
    } else {
        match->stride = delta;
        match->confidence = 1;
    }
    match->lastBlock = block;
    match->lastUse = ++useClock_;

    if (match->confidence >= config_.trainThreshold && match->stride != 0) {
        ++launches_;
        for (std::uint32_t d = 1; d <= config_.degree; ++d) {
            const std::int64_t target =
                block_num + match->stride * static_cast<std::int64_t>(d);
            if (target <= 0)
                break;
            port_->issuePrefetch(
                *this, core,
                blockAddress(static_cast<Addr>(target)));
        }
    }
}

} // namespace stms
