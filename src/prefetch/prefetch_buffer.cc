#include "prefetch/prefetch_buffer.hh"

#include "common/log.hh"

namespace stms
{

PrefetchBuffer::PrefetchBuffer(std::uint32_t capacity)
    : capacity_(capacity)
{
    stms_assert(capacity > 0, "prefetch buffer needs capacity");
}

bool
PrefetchBuffer::contains(Addr block) const
{
    return index_.count(blockAlign(block)) != 0;
}

bool
PrefetchBuffer::consume(Addr block)
{
    block = blockAlign(block);
    auto it = index_.find(block);
    if (it == index_.end())
        return false;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
}

std::optional<Addr>
PrefetchBuffer::insert(Addr block)
{
    block = blockAlign(block);
    auto it = index_.find(block);
    if (it != index_.end()) {
        // Refresh recency of a duplicate fill.
        lru_.splice(lru_.begin(), lru_, it->second);
        return std::nullopt;
    }

    std::optional<Addr> evicted;
    if (lru_.size() >= capacity_) {
        const Addr victim = lru_.back();
        lru_.pop_back();
        index_.erase(victim);
        evicted = victim;
    }
    lru_.push_front(block);
    index_[block] = lru_.begin();
    return evicted;
}

bool
PrefetchBuffer::invalidate(Addr block)
{
    return consume(blockAlign(block));
}

} // namespace stms
