#include "prefetch/prefetch_buffer.hh"

#include <cstring>

#include "common/log.hh"
#include "common/simd.hh"

namespace stms
{

namespace
{

/** Slot of @p block in the MRU-first array, or simd::kNpos. */
std::size_t
slotOf(const ArenaBuffer<Addr> &blocks, std::uint32_t count,
       Addr block)
{
    return simd::findFirstEqual(blocks.data(), count, block);
}

} // namespace

PrefetchBuffer::PrefetchBuffer(std::uint32_t capacity)
    : capacity_(capacity),
      blocks_(capacity + simd::kScanPadU64)
{
    stms_assert(capacity > 0, "prefetch buffer needs capacity");
}

bool
PrefetchBuffer::contains(Addr block) const
{
    return slotOf(blocks_, count_, blockAlign(block)) != simd::kNpos;
}

bool
PrefetchBuffer::consume(Addr block)
{
    const std::size_t slot = slotOf(blocks_, count_, blockAlign(block));
    if (slot == simd::kNpos)
        return false;
    // Close the gap; entries behind the hit keep their LRU order.
    std::memmove(&blocks_[slot], &blocks_[slot + 1],
                 (count_ - slot - 1) * sizeof(Addr));
    --count_;
    return true;
}

std::optional<Addr>
PrefetchBuffer::insert(Addr block)
{
    block = blockAlign(block);
    const std::size_t slot = slotOf(blocks_, count_, block);
    if (slot != simd::kNpos) {
        // Refresh recency of a duplicate fill.
        std::memmove(&blocks_[1], &blocks_[0], slot * sizeof(Addr));
        blocks_[0] = block;
        return std::nullopt;
    }

    std::optional<Addr> evicted;
    std::uint32_t shifted = count_;
    if (count_ >= capacity_) {
        evicted = blocks_[count_ - 1];  // LRU victim.
        shifted = count_ - 1;
    } else {
        ++count_;
    }
    std::memmove(&blocks_[1], &blocks_[0], shifted * sizeof(Addr));
    blocks_[0] = block;
    return evicted;
}

bool
PrefetchBuffer::invalidate(Addr block)
{
    return consume(blockAlign(block));
}

} // namespace stms
