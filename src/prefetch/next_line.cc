#include "prefetch/next_line.hh"

#include "common/log.hh"

namespace stms
{

NextLinePrefetcher::NextLinePrefetcher(const NextLineConfig &config)
    : config_(config)
{
    stms_assert(config.degree > 0, "next-line degree must be >= 1");
}

void
NextLinePrefetcher::onOffchipRead(CoreId core, Addr block)
{
    ++triggered_;
    for (std::uint32_t d = 1; d <= config_.degree; ++d) {
        port_->issuePrefetch(
            *this, core,
            blockAlign(block) +
                static_cast<Addr>(d) * kBlockBytes);
    }
}

} // namespace stms
