#include "prefetch/markov.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/log.hh"

namespace stms
{

MarkovPrefetcher::MarkovPrefetcher(const MarkovConfig &config)
    : config_(config)
{
    stms_assert(config.ways > 0, "markov table needs ways");
    stms_assert(config.successors > 0 &&
                config.successors <= kMaxSuccessors,
                "markov successors out of range");
    sets_ = ceilPowerOfTwo(
        std::max<std::uint64_t>(1, config.tableEntries / config.ways));
    table_.resize(sets_ * config.ways);
}

void
MarkovPrefetcher::attach(PrefetchPort &port, std::uint32_t num_cores,
                         std::uint32_t id)
{
    Prefetcher::attach(port, num_cores, id);
    lastMiss_.assign(num_cores, kInvalidAddr);
}

MarkovPrefetcher::Entry *
MarkovPrefetcher::find(Addr block)
{
    const std::uint64_t set = mixHash64(blockNumber(block)) & (sets_ - 1);
    Entry *base = &table_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (base[w].valid && base[w].trigger == block)
            return &base[w];
    return nullptr;
}

MarkovPrefetcher::Entry &
MarkovPrefetcher::allocate(Addr block)
{
    const std::uint64_t set = mixHash64(blockNumber(block)) & (sets_ - 1);
    Entry *base = &table_[set * config_.ways];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    *victim = Entry{};
    victim->trigger = block;
    victim->valid = true;
    victim->lastUse = ++useClock_;
    return *victim;
}

void
MarkovPrefetcher::recordSuccessor(Addr trigger, Addr successor)
{
    Entry *entry = find(trigger);
    if (!entry)
        entry = &allocate(trigger);
    entry->lastUse = ++useClock_;

    // MRU-ordered successor list; duplicates move to the front.
    std::uint32_t found = entry->successorCount;
    for (std::uint32_t i = 0; i < entry->successorCount; ++i) {
        if (entry->successors[i] == successor) {
            found = i;
            break;
        }
    }
    if (found == entry->successorCount &&
        entry->successorCount < config_.successors) {
        ++entry->successorCount;
    }
    const std::uint32_t limit =
        std::min(found, config_.successors - 1);
    for (std::uint32_t i = limit; i > 0; --i)
        entry->successors[i] = entry->successors[i - 1];
    entry->successors[0] = successor;
}

void
MarkovPrefetcher::onOffchipRead(CoreId core, Addr block)
{
    if (lastMiss_[core] != kInvalidAddr)
        recordSuccessor(lastMiss_[core], block);
    lastMiss_[core] = block;

    ++lookups_;
    if (Entry *entry = find(block)) {
        ++hits_;
        entry->lastUse = ++useClock_;
        for (std::uint32_t i = 0; i < entry->successorCount; ++i)
            port_->issuePrefetch(*this, core, entry->successors[i]);
    }
}

} // namespace stms
