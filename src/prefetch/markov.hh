/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA'97) — the simplest
 * pair-wise address-correlating design (Sec. 2).
 *
 * A set-associative on-chip table maps a miss address to its most
 * recently observed successors; on a miss, all recorded successors are
 * prefetched. Included as the pair-wise baseline the paper contrasts
 * with temporal streaming: it predicts only one miss ahead, limiting
 * lookahead and memory-level parallelism.
 */

#ifndef STMS_PREFETCH_MARKOV_HH
#define STMS_PREFETCH_MARKOV_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stms
{

/** Markov prefetcher configuration. */
struct MarkovConfig
{
    std::uint64_t tableEntries = 64 * 1024;  ///< Total triggers tracked.
    std::uint32_t ways = 4;                  ///< Set associativity.
    std::uint32_t successors = 2;            ///< Successors per trigger.
};

/** Pair-wise correlating prefetcher with an on-chip table. */
class MarkovPrefetcher : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const MarkovConfig &config = {});

    const std::string &name() const override { return name_; }
    void attach(PrefetchPort &port, std::uint32_t num_cores,
                std::uint32_t id) override;

    void onOffchipRead(CoreId core, Addr block) override;

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    void resetStats() override { lookups_ = hits_ = 0; }

  private:
    static constexpr std::uint32_t kMaxSuccessors = 4;

    struct Entry
    {
        Addr trigger = kInvalidAddr;
        std::array<Addr, kMaxSuccessors> successors{};
        std::uint32_t successorCount = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Entry *find(Addr block);
    Entry &allocate(Addr block);
    void recordSuccessor(Addr trigger, Addr successor);

    MarkovConfig config_;
    std::string name_ = "markov";
    std::uint64_t sets_ = 0;
    std::vector<Entry> table_;
    std::vector<Addr> lastMiss_;
    std::uint64_t useClock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace stms

#endif // STMS_PREFETCH_MARKOV_HH
