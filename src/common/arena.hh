/**
 * @file
 * Per-run bump arena for the short-lived data-plane allocations
 * (docs/PERF.md).
 *
 * Every run constructs, fills, and tears down the same family of
 * structures — index-table key arrays, history windows, MSHR tables,
 * prefetch buffers, stream bookkeeping. Taking those from the global
 * heap makes `--pipeline --threads N` serialize on the allocator and
 * re-faults fresh pages every run. The arena replaces that with a
 * thread-local bump pointer: blocks are grabbed from the OS once,
 * handed out with two adds, and *reused in place* on reset, so run N+1
 * writes the same warm pages run N did and worker threads never touch
 * a shared allocator on the hot path.
 *
 * Contracts:
 *  - Thread isolation: an Arena is single-threaded by design (no
 *    locks). The thread-local "current" arena installed by
 *    ScopedRunArena is invisible to other threads.
 *  - Lifetime: memory from allocate() is valid until the owning
 *    arena's reset() or destruction. ScopedRunArena resets on scope
 *    exit, so nothing allocated under it may escape the scope —
 *    in this repo that scope is one runTrace() call, and every arena
 *    consumer lives inside the CmpSystem torn down before it ends.
 *  - Deterministic reuse: reset() rewinds to the first block and
 *    allocation walks blocks in creation order without backtracking,
 *    so an identical allocation sequence after a reset returns
 *    identical pointers (tests/common/arena_test.cc locks this in —
 *    it is what makes arena reuse invisible to the determinism
 *    gates).
 *  - Exhaustion: allocations past the byte budget (or over-aligned
 *    ones) fall back to the heap, are tracked, and are freed on
 *    reset(); callers never see the difference.
 */

#ifndef STMS_COMMON_ARENA_HH
#define STMS_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace stms
{

/** Chunked bump allocator; see the file comment for the contracts. */
class Arena
{
  public:
    /** Alignment every in-block allocation is rounded to (one cache
     *  line, so SoA scan arrays never straddle an extra line). */
    static constexpr std::size_t kAlign = 64;

    /** First block size; later blocks double up to kMaxBlockBytes. */
    static constexpr std::size_t kFirstBlockBytes = 256 * 1024;
    static constexpr std::size_t kMaxBlockBytes = 64ULL << 20;

    /** Default byte budget before heap fallback kicks in. */
    static constexpr std::size_t kDefaultBudgetBytes = 1ULL << 30;

    explicit Arena(std::size_t budget_bytes = kDefaultBudgetBytes)
        : budget_(budget_bytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena();

    /**
     * @p bytes of storage aligned to min(align, kAlign); uninitialized.
     * Never returns nullptr (asserts on OOM like the rest of the repo).
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Rewind to the first block (blocks are kept and reused in order)
     * and free any heap-fallback allocations. Everything previously
     * returned by allocate() is invalidated.
     */
    void reset();

    /**
     * reset(), then return every block to the OS. For measurement
     * isolation points (perf_suite's per-schedule RSS watermark) where
     * retained warm pages would be double-counted against a later
     * phase; normal run-to-run reuse never calls this.
     */
    void trim();

    /** Bytes handed out since the last reset (in-block only). */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Blocks currently owned (never shrinks until destruction). */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Heap-fallback allocations live since the last reset. */
    std::size_t overflowCount() const { return overflow_.size(); }

    /** Bytes reserved from the OS in blocks (excludes overflow). */
    std::size_t reservedBytes() const { return reserved_; }

  private:
    struct Block
    {
        std::byte *data;
        std::size_t size;
    };

    void *overflowAllocate(std::size_t bytes, std::size_t align);

    std::size_t budget_;
    std::vector<Block> blocks_;
    std::size_t cursorBlock_ = 0;  ///< Block currently bumping.
    std::size_t cursorOffset_ = 0;
    std::size_t allocated_ = 0;
    std::size_t reserved_ = 0;
    std::vector<std::pair<void *, std::size_t>> overflow_;
};

/** The calling thread's active arena, or nullptr (heap fallback). */
Arena *currentArena();

/**
 * Release the calling thread's cached run arena back to the OS. A
 * no-op while a ScopedRunArena is live on this thread (the storage is
 * in use). Only measurement code should need this; see Arena::trim().
 */
void trimThreadRunArena();

/**
 * Install @p arena as the calling thread's active arena for the
 * lifetime of this object; restores the previous one on destruction.
 * Building block for ScopedRunArena and the tests.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena *arena);
    ~ArenaScope();
    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    Arena *previous_;
};

/**
 * One run's arena scope (installed by runTrace). The outermost scope
 * on a thread installs that thread's cached run arena and resets it on
 * exit — so consecutive runs on a worker thread recycle the same warm
 * blocks. Nested scopes (a run inside a run would be a bug, but
 * experiments share helpers) are no-ops: the outermost owner resets.
 */
class ScopedRunArena
{
  public:
    ScopedRunArena();
    ~ScopedRunArena();
    ScopedRunArena(const ScopedRunArena &) = delete;
    ScopedRunArena &operator=(const ScopedRunArena &) = delete;

  private:
    Arena *installed_ = nullptr;  ///< Null when nested (no-op).
};

/**
 * RAII array of trivially-destructible @p T backed by the thread's
 * current arena when one is installed, the heap otherwise. The arena
 * path's deallocation is a no-op (reclaimed wholesale at reset), which
 * is exactly what makes per-run structures free to tear down.
 *
 * Storage is uninitialized either way; callers guard reads with their
 * own counts, same as the make_unique_for_overwrite idiom this
 * replaces.
 */
template <typename T>
class ArenaBuffer
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaBuffer requires trivial element types");

  public:
    ArenaBuffer() = default;
    explicit ArenaBuffer(std::size_t count) { reset(count); }

    ArenaBuffer(ArenaBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          heap_(std::exchange(other.heap_, false))
    {}

    ArenaBuffer &
    operator=(ArenaBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
            heap_ = std::exchange(other.heap_, false);
        }
        return *this;
    }

    ArenaBuffer(const ArenaBuffer &) = delete;
    ArenaBuffer &operator=(const ArenaBuffer &) = delete;

    ~ArenaBuffer() { release(); }

    /** Replace the contents with @p count uninitialized elements. */
    void
    reset(std::size_t count)
    {
        release();
        if (count == 0)
            return;
        if (Arena *arena = currentArena()) {
            data_ = static_cast<T *>(
                arena->allocate(count * sizeof(T), alignof(T)));
        } else {
            data_ = static_cast<T *>(
                ::operator new(count * sizeof(T)));
            heap_ = true;
        }
        size_ = count;
    }

    T &operator[](std::size_t index) { return data_[index]; }
    const T &operator[](std::size_t index) const { return data_[index]; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    void
    release()
    {
        if (heap_)
            ::operator delete(data_);
        data_ = nullptr;
        size_ = 0;
        heap_ = false;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
    bool heap_ = false;
};

/**
 * std::allocator drop-in bound to one explicit Arena (not the
 * thread-local current one): allocation must happen on the arena
 * owner's thread; deallocate() is a no-op, so containers handed to
 * *other* threads can be destroyed there without ever touching the
 * arena — the pipeline's chunk hand-off relies on exactly that.
 * A default-constructed (null-arena) allocator degrades to the heap.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {}

    T *
    allocate(std::size_t count)
    {
        if (arena_ != nullptr) {
            return static_cast<T *>(
                arena_->allocate(count * sizeof(T), alignof(T)));
        }
        return static_cast<T *>(::operator new(count * sizeof(T)));
    }

    void
    deallocate(T *pointer, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(pointer);
        // Arena storage is reclaimed wholesale at reset.
    }

    Arena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_ = nullptr;
};

} // namespace stms

#endif // STMS_COMMON_ARENA_HH
