#include "common/types.hh"

namespace stms
{

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::DemandRead: return "demand-read";
      case TrafficClass::DemandWriteback: return "demand-writeback";
      case TrafficClass::Prefetch: return "prefetch";
      case TrafficClass::MetaLookup: return "meta-lookup";
      case TrafficClass::MetaUpdate: return "meta-update";
      case TrafficClass::MetaRecord: return "meta-record";
      default: return "unknown";
    }
}

} // namespace stms
