#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace stms
{

Options
Options::fromArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (!opts.parseToken(argv[i]))
            stms_fatal("bad option '%s' (expected key=value)", argv[i]);
    }
    return opts;
}

bool
Options::parseToken(const std::string &token)
{
    std::size_t start = 0;
    while (start < token.size() && start < 2 && token[start] == '-')
        ++start;
    const auto eq = token.find('=', start);
    if (eq == std::string::npos || eq == start)
        return false;
    values_[token.substr(start, eq - start)] = token.substr(eq + 1);
    return true;
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Options::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t
Options::getUint(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return parseSize(it->second);
}

double
Options::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    stms_fatal("bad boolean value '%s' for key '%s'",
               it->second.c_str(), key.c_str());
}

void
Options::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

std::vector<std::string>
Options::keys() const
{
    std::vector<std::string> result;
    result.reserve(values_.size());
    for (const auto &[key, value] : values_)
        result.push_back(key);
    return result;
}

std::vector<std::pair<std::string, std::string>>
Options::items() const
{
    return {values_.begin(), values_.end()};
}

std::uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        return 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    std::uint64_t scale = 1;
    if (end && *end) {
        switch (std::toupper(static_cast<unsigned char>(*end))) {
          case 'K': scale = 1ULL << 10; break;
          case 'M': scale = 1ULL << 20; break;
          case 'G': scale = 1ULL << 30; break;
          case 'T': scale = 1ULL << 40; break;
          default:
            stms_fatal("bad size suffix in '%s'", text.c_str());
        }
    }
    return static_cast<std::uint64_t>(value * static_cast<double>(scale));
}

std::string
formatSize(std::uint64_t bytes)
{
    const char *suffixes[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < std::size(suffixes)) {
        value /= 1024.0;
        ++idx;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, suffixes[idx]);
    return buf;
}

} // namespace stms
