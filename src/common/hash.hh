/**
 * @file
 * Address hashing used by the STMS index table and baseline predictors.
 *
 * The index table hashes a physical block address to a bucket number
 * (Sec. 4.3). We use a strong 64-bit finalizer so that bucket occupancy
 * stays uniform even for the highly structured addresses synthetic
 * workloads produce.
 */

#ifndef STMS_COMMON_HASH_HH
#define STMS_COMMON_HASH_HH

#include <cstdint>

#include "common/types.hh"

namespace stms
{

/** MurmurHash3 64-bit finalizer; a bijective mixer. */
constexpr std::uint64_t
mixHash64(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key;
}

/** Hash a block address into [0, buckets). */
constexpr std::uint64_t
hashToBucket(Addr block_addr, std::uint64_t buckets)
{
    return mixHash64(block_addr) % buckets;
}

} // namespace stms

#endif // STMS_COMMON_HASH_HH
