/**
 * @file
 * Address hashing used by the STMS index table and baseline predictors.
 *
 * The index table hashes a physical block address to a bucket number
 * (Sec. 4.3). We use a strong 64-bit finalizer so that bucket occupancy
 * stays uniform even for the highly structured addresses synthetic
 * workloads produce.
 */

#ifndef STMS_COMMON_HASH_HH
#define STMS_COMMON_HASH_HH

#include <cstdint>

#include "common/types.hh"

namespace stms
{

/** MurmurHash3 64-bit finalizer; a bijective mixer. */
constexpr std::uint64_t
mixHash64(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key;
}

/** Hash a block address into [0, buckets). */
constexpr std::uint64_t
hashToBucket(Addr block_addr, std::uint64_t buckets)
{
    return mixHash64(block_addr) % buckets;
}

/** FNV-1a offset basis (the seed of an empty hash). */
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;

/**
 * 64-bit FNV-1a over a byte range. Used where a *stable* hash of
 * serialized text matters — the result store's configuration
 * fingerprints are FNV-1a values persisted to disk and compared
 * across builds and machines, so this function must never change.
 * Chain calls by passing the previous result as @p seed.
 */
constexpr std::uint64_t
fnv1a64(const char *data, std::size_t size,
        std::uint64_t seed = kFnv1aOffset)
{
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 0x100000001b3ULL;  // FNV prime.
    }
    return hash;
}

} // namespace stms

#endif // STMS_COMMON_HASH_HH
