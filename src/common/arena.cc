#include "common/arena.hh"

#include <algorithm>

#include "common/log.hh"

namespace stms
{

namespace
{

/** The calling thread's active arena (see ArenaScope). */
thread_local Arena *tls_current_arena = nullptr;

/**
 * The thread's cached run arena, shared by every ScopedRunArena the
 * thread ever opens — this is what carries warm blocks from one run
 * to the next on a pipeline worker.
 */
Arena &
threadRunArena()
{
    thread_local Arena arena;
    return arena;
}

} // namespace

Arena::~Arena()
{
    reset();
    for (const Block &block : blocks_)
        ::operator delete(block.data, std::align_val_t{kAlign});
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    stms_assert(bytes > 0, "arena allocation of zero bytes");
    if (align > kAlign)
        return overflowAllocate(bytes, align);

    // Walk blocks forward from the cursor; never backtrack, so a
    // repeated allocation sequence lands on identical addresses after
    // reset() (determinism contract in the file comment).
    while (cursorBlock_ < blocks_.size()) {
        const Block &block = blocks_[cursorBlock_];
        const std::size_t offset =
            (cursorOffset_ + (kAlign - 1)) & ~(kAlign - 1);
        if (offset + bytes <= block.size) {
            cursorOffset_ = offset + bytes;
            allocated_ += bytes;
            return block.data + offset;
        }
        ++cursorBlock_;
        cursorOffset_ = 0;
    }

    // Need a fresh block: geometric growth, big requests get a block
    // of their own size so one 64 MB table does not force a 64 MB
    // *pair* of blocks.
    std::size_t block_size = blocks_.empty()
                                 ? kFirstBlockBytes
                                 : blocks_.back().size * 2;
    block_size = std::min(block_size, kMaxBlockBytes);
    block_size = std::max(block_size, bytes);
    if (reserved_ + block_size > budget_) {
        // Over the preferred size: shrink to the remaining budget if
        // the request still fits (a tiny budget must not force every
        // allocation to the heap); otherwise serve from the heap.
        const std::size_t remaining = budget_ - std::min(reserved_, budget_);
        if (bytes > remaining)
            return overflowAllocate(bytes, align);
        block_size = remaining;
    }

    auto *data = static_cast<std::byte *>(
        ::operator new(block_size, std::align_val_t{kAlign}));
    blocks_.push_back(Block{data, block_size});
    reserved_ += block_size;
    cursorBlock_ = blocks_.size() - 1;
    cursorOffset_ = bytes;
    allocated_ += bytes;
    return data;
}

void *
Arena::overflowAllocate(std::size_t bytes, std::size_t align)
{
    void *pointer =
        align > alignof(std::max_align_t)
            ? ::operator new(bytes, std::align_val_t{align})
            : ::operator new(bytes);
    overflow_.emplace_back(pointer, align);
    return pointer;
}

void
Arena::trim()
{
    reset();
    for (const Block &block : blocks_)
        ::operator delete(block.data, std::align_val_t{kAlign});
    blocks_.clear();
    reserved_ = 0;
}

void
Arena::reset()
{
    cursorBlock_ = 0;
    cursorOffset_ = 0;
    allocated_ = 0;
    for (const auto &[pointer, align] : overflow_) {
        if (align > alignof(std::max_align_t))
            ::operator delete(pointer, std::align_val_t{align});
        else
            ::operator delete(pointer);
    }
    overflow_.clear();
}

Arena *
currentArena()
{
    return tls_current_arena;
}

void
trimThreadRunArena()
{
    Arena &arena = threadRunArena();
    if (tls_current_arena == &arena)
        return;  // A run is live on this thread; its storage is in use.
    arena.trim();
}

ArenaScope::ArenaScope(Arena *arena) : previous_(tls_current_arena)
{
    tls_current_arena = arena;
}

ArenaScope::~ArenaScope()
{
    tls_current_arena = previous_;
}

ScopedRunArena::ScopedRunArena()
{
    if (tls_current_arena != nullptr)
        return;  // Nested: the outermost scope owns install + reset.
    installed_ = &threadRunArena();
    tls_current_arena = installed_;
}

ScopedRunArena::~ScopedRunArena()
{
    if (installed_ == nullptr)
        return;
    tls_current_arena = nullptr;
    installed_->reset();
}

} // namespace stms
