/**
 * @file
 * Portable SIMD kernel layer for the hot scan loops (docs/PERF.md).
 *
 * Every data-plane structure that matters — index-table buckets,
 * history-buffer windows, prefetch buffers, MSHRs, stream issued
 * sets — bottoms out in the same primitive: find the first element of
 * a short contiguous u64 array equal to a key. This header owns that
 * primitive once, so each structure vectorizes by construction instead
 * of by hand-rolled intrinsics scattered through the tree.
 *
 * Bit-identity policy: the kernels implement *first-match-wins* over
 * the logical element order, exactly like the scalar loop they
 * replace. A vector compare examines several lanes at once, but the
 * reported index is always the lowest matching one, and lanes beyond
 * `count` are masked out of the result — so scalar and SIMD return the
 * same index for every input, including arrays holding duplicate or
 * garbage keys past the logical size. findFirstEqualScalar() is kept
 * as the executable reference the kernel tests compare against.
 *
 * Padded-read contract: the vector paths may LOAD (never use) up to
 * kScanLaneU64 - 1 elements past `count`. Callers must allocate scan
 * arrays with at least paddedScanCount(count) elements (or
 * kScanPadU64 spare tail slots). Every container in this repo that
 * feeds these kernels allocates through that helper; handing the
 * kernels a bare std::vector::data() is a bug (ASan container
 * annotations will rightly flag it).
 *
 * Dispatch rules: ISA selection is a compile-time ladder (NEON on
 * aarch64, SSE2 baseline on x86-64) plus one runtime probe for AVX2
 * via __builtin_cpu_supports, using per-function target attributes so
 * no TU is ever compiled with a raised global -march (a global arch
 * bump could change FP codegen elsewhere and break the repo's
 * byte-identity gates). Configuring with -DSTMS_SIMD=OFF defines
 * STMS_SIMD_DISABLED and pins every kernel to the scalar reference;
 * activeIsa() reports whichever path is live so benchmarks and the
 * BENCH trajectory can record it.
 */

#ifndef STMS_COMMON_SIMD_HH
#define STMS_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace stms::simd
{

/** Returned by the find kernels when no element matches. */
inline constexpr std::size_t kNpos = ~static_cast<std::size_t>(0);

/** Widest vector width used by any kernel, in u64 lanes (AVX2). */
inline constexpr std::size_t kScanLaneU64 = 4;

/** Spare tail elements a scan array must own past its logical size. */
inline constexpr std::size_t kScanPadU64 = kScanLaneU64 - 1;

/** Smallest allocation (in elements) that can hold @p count scannable
 *  elements under the padded-read contract. */
constexpr std::size_t
paddedScanCount(std::size_t count)
{
    return (count + kScanLaneU64 - 1) / kScanLaneU64 * kScanLaneU64;
}

/**
 * Reference kernel: index of the first element of keys[0, count)
 * equal to @p key, or kNpos. Reads exactly `count` elements — no
 * padding required. The SIMD paths must match this bit for bit.
 */
inline std::size_t
findFirstEqualScalar(const std::uint64_t *keys, std::size_t count,
                     std::uint64_t key)
{
    for (std::size_t i = 0; i < count; ++i) {
        if (keys[i] == key)
            return i;
    }
    return kNpos;
}

namespace detail
{

using FindFirstEqualFn = std::size_t (*)(const std::uint64_t *,
                                         std::size_t, std::uint64_t);

/** Resolved once at load time (simd.cc); zero until then, which the
 *  wrapper below treats as "fall back to scalar" so kernels stay
 *  correct even if called from another TU's static initializer. */
extern const FindFirstEqualFn kFindFirstEqualImpl;

} // namespace detail

/**
 * Index of the first element of keys[0, count) equal to @p key, or
 * kNpos. First-match-wins, bit-identical to findFirstEqualScalar().
 * The array must obey the padded-read contract above.
 */
inline std::size_t
findFirstEqual(const std::uint64_t *keys, std::size_t count,
               std::uint64_t key)
{
    const detail::FindFirstEqualFn impl = detail::kFindFirstEqualImpl;
    if (impl == nullptr)
        return findFirstEqualScalar(keys, count, key);
    return impl(keys, count, key);
}

/** Name of the kernel path selected at load time: "scalar", "sse2",
 *  "avx2", or "neon". */
const char *activeIsa();

} // namespace stms::simd

#endif // STMS_COMMON_SIMD_HH
