/**
 * @file
 * ISA-specific bodies of the scan kernels (see simd.hh for the
 * dispatch rules and the padded-read contract).
 */

#include "common/simd.hh"

#if !defined(STMS_SIMD_DISABLED)
#if defined(__x86_64__) || defined(__i386__)
#define STMS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define STMS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace stms::simd
{
namespace
{

#if defined(STMS_SIMD_X86)

/**
 * SSE2 two-lane scan. SSE2 has no 64-bit integer compare (that is
 * SSE4.1's _mm_cmpeq_epi64), so equality is built from the 32-bit
 * compare: a u64 lane matches iff both of its u32 halves match, i.e.
 * cmpeq_epi32 AND its half-swapped self (shuffle 0xB1 swaps the two
 * u32s within each u64). movemask_pd then yields one bit per u64 lane.
 */
std::size_t
findFirstEqualSse2(const std::uint64_t *keys, std::size_t count,
                   std::uint64_t key)
{
    const __m128i needle =
        _mm_set1_epi64x(static_cast<long long>(key));
    for (std::size_t i = 0; i < count; i += 2) {
        const __m128i lanes = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(keys + i));
        const __m128i eq32 = _mm_cmpeq_epi32(lanes, needle);
        const __m128i eq64 =
            _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0xB1));
        int mask = _mm_movemask_pd(_mm_castsi128_pd(eq64));
        const std::size_t remaining = count - i;
        if (remaining < 2)
            mask &= (1 << remaining) - 1;  // Drop padding lanes.
        if (mask != 0)
            return i + static_cast<std::size_t>(__builtin_ctz(
                           static_cast<unsigned>(mask)));
    }
    return kNpos;
}

/** AVX2 four-lane scan; one compare covers a 12-entry bucket in three
 *  steps. Compiled with a per-function target attribute so the rest
 *  of the TU (and the build) keeps the default -march. */
__attribute__((target("avx2"))) std::size_t
findFirstEqualAvx2(const std::uint64_t *keys, std::size_t count,
                   std::uint64_t key)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(key));
    for (std::size_t i = 0; i < count; i += 4) {
        const __m256i lanes = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        int mask = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(lanes, needle)));
        const std::size_t remaining = count - i;
        if (remaining < 4)
            mask &= (1 << remaining) - 1;  // Drop padding lanes.
        if (mask != 0)
            return i + static_cast<std::size_t>(__builtin_ctz(
                           static_cast<unsigned>(mask)));
    }
    return kNpos;
}

#elif defined(STMS_SIMD_NEON)

/** NEON two-lane scan (aarch64 baseline, no runtime probe needed). */
std::size_t
findFirstEqualNeon(const std::uint64_t *keys, std::size_t count,
                   std::uint64_t key)
{
    const uint64x2_t needle = vdupq_n_u64(key);
    for (std::size_t i = 0; i < count; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(keys + i), needle);
        const std::size_t remaining = count - i;
        if (vgetq_lane_u64(eq, 0) != 0)
            return i;
        if (remaining > 1 && vgetq_lane_u64(eq, 1) != 0)
            return i + 1;
    }
    return kNpos;
}

#endif

struct Resolved
{
    detail::FindFirstEqualFn fn;
    const char *isa;
};

Resolved
resolve()
{
#if defined(STMS_SIMD_X86)
    if (__builtin_cpu_supports("avx2"))
        return {&findFirstEqualAvx2, "avx2"};
    return {&findFirstEqualSse2, "sse2"};
#elif defined(STMS_SIMD_NEON)
    return {&findFirstEqualNeon, "neon"};
#else
    return {&findFirstEqualScalar, "scalar"};
#endif
}

const Resolved kResolved = resolve();

} // namespace

namespace detail
{
const FindFirstEqualFn kFindFirstEqualImpl = kResolved.fn;
} // namespace detail

const char *
activeIsa()
{
    return kResolved.isa;
}

} // namespace stms::simd
