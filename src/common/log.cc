#include "common/log.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <vector>

namespace stms
{

namespace
{

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

/** One lock serializes every stderr write AND guards the sticky-line
 *  hook, so a progress redraw can never interleave with a log line. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Whether a sticky status line is currently on screen. Guarded by
 *  sinkMutex(), like every other byte that reaches stderr. */
bool g_sticky_shown = false;

/** Caller must hold sinkMutex(). */
void
clearStickyLine()
{
    if (g_sticky_shown) {
        std::fputs("\r\x1b[2K", stderr);
        g_sticky_shown = false;
    }
}

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    clearStickyLine();
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_level.load(std::memory_order_relaxed));
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    if (text == "error")
        out = LogLevel::Error;
    else if (text == "warn")
        out = LogLevel::Warn;
    else if (text == "info")
        out = LogLevel::Info;
    else if (text == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

void
logStickyLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    clearStickyLine();
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
    g_sticky_shown = true;
}

void
logStickyDone()
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    clearStickyLine();
    std::fflush(stderr);
}

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        clearStickyLine();
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        clearStickyLine();
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    emit("info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    emit("debug: ", msg);
}

void
logRaw(const std::string &text)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    clearStickyLine();
    std::fputs(text.c_str(), stderr);
}

} // namespace stms
