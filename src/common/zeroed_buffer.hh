/**
 * @file
 * Lazily-zeroed flat storage for the big simulated-memory tables.
 *
 * The index table and history buffers model tens of megabytes of main
 * memory per run. Building them from std::vector::assign() memsets the
 * whole region up front — the profile showed ~40% of a short sweep's
 * wall time spent zero-filling pages most runs never touch. calloc()
 * instead hands back copy-on-write zero pages from the kernel: the
 * allocation is O(1), untouched buckets never fault in, and the
 * observable contents are bytewise identical (all-zero), so model
 * results cannot change.
 *
 * Restricted to trivially-copyable, trivially-destructible element
 * types whose all-zero byte pattern is a valid "empty" state (the
 * structures above guard every read behind a `valid` flag or a head
 * counter, so their zero state never leaks).
 */

#ifndef STMS_COMMON_ZEROED_BUFFER_HH
#define STMS_COMMON_ZEROED_BUFFER_HH

#include <cstddef>
#include <cstdlib>
#include <type_traits>
#include <utility>

#include "common/log.hh"

namespace stms
{

/** calloc-backed array of @p T, zero pages faulted in on first use. */
template <typename T>
class ZeroedBuffer
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ZeroedBuffer requires trivial element types");

  public:
    ZeroedBuffer() = default;

    explicit ZeroedBuffer(std::size_t count) { reset(count); }

    ZeroedBuffer(ZeroedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {}

    ZeroedBuffer &
    operator=(ZeroedBuffer &&other) noexcept
    {
        if (this != &other) {
            std::free(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ZeroedBuffer(const ZeroedBuffer &) = delete;
    ZeroedBuffer &operator=(const ZeroedBuffer &) = delete;

    ~ZeroedBuffer() { std::free(data_); }

    /** Replace the contents with @p count zeroed elements. */
    void
    reset(std::size_t count)
    {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
        if (count == 0)
            return;
        data_ = static_cast<T *>(std::calloc(count, sizeof(T)));
        stms_assert(data_ != nullptr,
                    "ZeroedBuffer: out of memory (%zu x %zu bytes)",
                    count, sizeof(T));
        size_ = count;
    }

    T &operator[](std::size_t index) { return data_[index]; }
    const T &operator[](std::size_t index) const { return data_[index]; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace stms

#endif // STMS_COMMON_ZEROED_BUFFER_HH
