/**
 * @file
 * A small key=value option store used by examples and bench binaries.
 *
 * Most configuration flows through plain structs with defaults copied
 * from Table 1 of the paper; Options exists so command-line users can
 * override individual knobs (`stms_quickstart workload=oltp-db2
 * sampling=0.125`).
 */

#ifndef STMS_COMMON_CONFIG_HH
#define STMS_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace stms
{

/** Parsed key=value command-line options with typed accessors. */
class Options
{
  public:
    Options() = default;

    /** Parse argv-style arguments of the form key=value. */
    static Options fromArgs(int argc, char **argv);

    /** Parse a single key=value token (leading "--" or "-" dashes are
     *  accepted and stripped); returns false on bad syntax. */
    bool parseToken(const std::string &token);

    bool has(const std::string &key) const;

    std::string get(const std::string &key,
                    const std::string &fallback) const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    void set(const std::string &key, const std::string &value);

    /** All keys, sorted; handy for help/diagnostic output. */
    std::vector<std::string> keys() const;

    /** All key/value pairs, key-sorted (the result store fingerprints
     *  and persists an experiment's options in this shape). */
    std::vector<std::pair<std::string, std::string>> items() const;

  private:
    std::map<std::string, std::string> values_;
};

/** Parse a size string like "64M", "8K", "512" into bytes. */
std::uint64_t parseSize(const std::string &text);

/** Render a byte count as a human-readable string ("64.0MB"). */
std::string formatSize(std::uint64_t bytes);

} // namespace stms

#endif // STMS_COMMON_CONFIG_HH
