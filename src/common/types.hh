/**
 * @file
 * Fundamental types shared by every STMS module.
 *
 * The simulator models physical addresses at cache-block granularity.
 * All timing is expressed in core clock cycles (the paper's system runs
 * at 4 GHz, so 1 cycle = 0.25 ns).
 */

#ifndef STMS_COMMON_TYPES_HH
#define STMS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

#include "common/inplace_function.hh"

namespace stms
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in core clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a core in the CMP (0-based). */
using CoreId = std::uint32_t;

/** Monotonically increasing history-buffer sequence number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no sequence number". */
inline constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();

/** Cache-block size in bytes (Table 1: 64-byte transfers). */
inline constexpr std::uint32_t kBlockBytes = 64;

/** log2 of the cache-block size. */
inline constexpr std::uint32_t kBlockShift = 6;

/** Core clock frequency in Hz (Table 1: 4 GHz). */
inline constexpr double kCoreFreqHz = 4.0e9;

/** Align a byte address down to its cache-block address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Block number of a byte address. */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Byte address of a block number. */
constexpr Addr
blockAddress(Addr block)
{
    return block << kBlockShift;
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; undefined for zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t value)
{
    std::uint32_t result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Smallest power of two >= @p value (value must be nonzero). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t value)
{
    std::uint64_t result = 1;
    while (result < value)
        result <<= 1;
    return result;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t numerator, std::uint64_t denominator)
{
    return (numerator + denominator - 1) / denominator;
}

/** Memory-traffic classes tracked by the memory controller (Sec. 5.5). */
enum class TrafficClass : std::uint8_t
{
    DemandRead,       ///< Demand-triggered cache-block fetch.
    DemandWriteback,  ///< Dirty-block writeback from the L2.
    Prefetch,         ///< Prefetched cache-block fetch (useful or not).
    MetaLookup,       ///< Index-table lookup + history-buffer read.
    MetaUpdate,       ///< Index-table read-modify-write traffic.
    MetaRecord,       ///< History-buffer append (block-packed writes).
    NumClasses,
};

/** Number of distinct traffic classes. */
inline constexpr std::size_t kNumTrafficClasses =
    static_cast<std::size_t>(TrafficClass::NumClasses);

/** Human-readable name of a traffic class. */
const char *trafficClassName(TrafficClass cls);

/** Priority of a memory request: demand beats everything else. */
enum class Priority : std::uint8_t
{
    High,  ///< Processor-initiated demand requests.
    Low,   ///< Prefetch and predictor meta-data traffic.
};

/**
 * Completion callback of a timed memory/meta request, carrying the
 * finish tick. Inline storage (no heap allocation per request): the
 * largest producer is the STMS lookup continuation at exactly 40
 * captured bytes, and the memory controller re-wraps a TimedCallback
 * plus a tick into a 64-byte EventQueue callback — both capacities
 * are sized so that chain never allocates.
 */
using TimedCallback = InplaceFunction<void(Cycle), 40>;

} // namespace stms

#endif // STMS_COMMON_TYPES_HH
