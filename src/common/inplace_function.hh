/**
 * @file
 * Move-only callable with guaranteed inline storage.
 *
 * std::function's small-buffer optimization tops out at 16 bytes on
 * libstdc++; the event queue's callbacks routinely capture 24-64 bytes
 * (this + address + record index, or a completion callback plus a
 * tick), so every scheduled event was a heap allocation on the
 * simulation hot path. InplaceFunction stores the callable inline —
 * construction of an oversized callable is a compile error, never a
 * silent allocation — making schedule/dispatch allocation-free.
 *
 * Move-only by design: event callbacks are consumed exactly once, and
 * requiring copyability would forbid capturing move-only state.
 */

#ifndef STMS_COMMON_INPLACE_FUNCTION_HH
#define STMS_COMMON_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace stms
{

template <typename Signature, std::size_t Capacity>
class InplaceFunction;

/** Fixed-capacity, move-only, allocation-free std::function stand-in. */
template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity>
{
  public:
    InplaceFunction() = default;
    InplaceFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InplaceFunction(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable exceeds InplaceFunction capacity; "
                      "raise the capacity at the use site");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callable");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        ops_ = &opsFor<Fn>;
    }

    InplaceFunction(InplaceFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Const like std::function's call operator; the target callable
     *  itself is invoked as non-const. */
    R
    operator()(Args... args) const
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *from, void *to) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor{
        [](void *self, Args &&...args) -> R {
            return (*static_cast<Fn *>(self))(
                std::forward<Args>(args)...);
        },
        [](void *from, void *to) noexcept {
            ::new (to) Fn(std::move(*static_cast<Fn *>(from)));
            static_cast<Fn *>(from)->~Fn();
        },
        [](void *self) noexcept { static_cast<Fn *>(self)->~Fn(); },
    };

    void
    moveFrom(InplaceFunction &other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(other.storage_, storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) mutable unsigned char storage_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace stms

#endif // STMS_COMMON_INPLACE_FUNCTION_HH
