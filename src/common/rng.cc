#include "common/rng.hh"

#include <algorithm>
#include <cmath>

namespace stms
{

ZipfSampler::ZipfSampler(std::size_t n, double skew)
{
    stms_assert(n > 0, "ZipfSampler over empty domain");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf_[i] = total;
    }
    for (auto &value : cdf_)
        value /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::mass(std::size_t i) const
{
    stms_assert(i < cdf_.size(), "ZipfSampler::mass out of range");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

} // namespace stms
