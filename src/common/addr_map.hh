/**
 * @file
 * Flat address-keyed map for small in-flight sets (MSHRs).
 *
 * The MSHR file holds at most a few dozen outstanding blocks — the
 * demand window plus each prefetcher's in-flight cap — but it is
 * probed on every post-L1 demand access and every prefetch issue, and
 * mutated (insert + extract) once per off-chip transfer. A hash map
 * pays a heap node per mutation and a pointer chase per probe at that
 * size; this structure keeps the keys in one padded array scanned
 * with the simd.hh first-match kernel and the values in a parallel
 * vector, so probes are a vector compare sweep and removal is a
 * swap-with-last. Keys are unique; no operation depends on iteration
 * order, which is what makes the swap-remove safe for the repo's
 * bit-identity gates.
 */

#ifndef STMS_COMMON_ADDR_MAP_HH
#define STMS_COMMON_ADDR_MAP_HH

#include <cstring>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/simd.hh"
#include "common/types.hh"

namespace stms
{

/** Flat {Addr -> V} map; V must be movable. */
template <typename V>
class FlatAddrMap
{
  public:
    static constexpr std::size_t kNpos = simd::kNpos;

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    /** Slot of @p key, or kNpos. Slots are invalidated by erase. */
    std::size_t
    indexOf(Addr key) const
    {
        return simd::findFirstEqual(keys_.data(), values_.size(), key);
    }

    bool contains(Addr key) const { return indexOf(key) != kNpos; }

    /** Value lookup; nullptr when absent. */
    V *
    find(Addr key)
    {
        const std::size_t slot = indexOf(key);
        return slot == kNpos ? nullptr : &values_[slot];
    }

    V &valueAt(std::size_t slot) { return values_[slot]; }

    /** Insert a new pair; @p key must not be present. */
    void
    emplace(Addr key, V &&value)
    {
        stms_assert(indexOf(key) == kNpos,
                    "duplicate flat-map key %llx",
                    static_cast<unsigned long long>(key));
        if (values_.size() + 1 > slots_)
            grow();
        keys_[values_.size()] = key;
        values_.push_back(std::move(value));
    }

    /** Move the value out of @p slot and swap-remove the pair. */
    V
    take(std::size_t slot)
    {
        V value = std::move(values_[slot]);
        const std::size_t last = values_.size() - 1;
        if (slot != last) {
            keys_[slot] = keys_[last];
            values_[slot] = std::move(values_[last]);
        }
        values_.pop_back();
        return value;
    }

  private:
    void
    grow()
    {
        const std::size_t grown = slots_ == 0 ? 16 : slots_ * 2;
        ArenaBuffer<Addr> keys(grown + simd::kScanPadU64);
        if (!values_.empty()) {
            std::memcpy(keys.data(), keys_.data(),
                        values_.size() * sizeof(Addr));
        }
        keys_ = std::move(keys);
        slots_ = grown;
        values_.reserve(grown);
    }

    /** Keys packed [0, size()); simd.hh scan padding at the tail. */
    ArenaBuffer<Addr> keys_;
    std::size_t slots_ = 0;
    std::vector<V> values_;
};

} // namespace stms

#endif // STMS_COMMON_ADDR_MAP_HH
