/**
 * @file
 * Deterministic random-number generation for the simulator.
 *
 * All stochastic behaviour (probabilistic index update, workload
 * synthesis, random replacement) draws from explicitly seeded Rng
 * instances so that every run is exactly repeatable. The generator is
 * xoshiro256**, seeded through splitmix64 as its author recommends.
 */

#ifndef STMS_COMMON_RNG_HH
#define STMS_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace stms
{

/** splitmix64 step, used for seeding and hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5742'4d53ULL) { reseed(seed); }

    /** Reset the generator state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        stms_assert(bound != 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t product = static_cast<__uint128_t>(next()) * bound;
        auto low = static_cast<std::uint64_t>(product);
        if (low < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                product = static_cast<__uint128_t>(next()) * bound;
                low = static_cast<std::uint64_t>(product);
            }
        }
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        stms_assert(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Geometric: number of failures before first success. */
    std::uint64_t
    geometric(double p)
    {
        stms_assert(p > 0.0 && p <= 1.0, "geometric p out of range");
        if (p >= 1.0)
            return 0;
        std::uint64_t count = 0;
        while (!chance(p) && count < (1ULL << 24))
            ++count;
        return count;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

/**
 * Zipf-distributed sampler over {0, .., n-1} with skew parameter s,
 * using a precomputed inverse-CDF table for O(log n) sampling.
 *
 * Workload generators use this to schedule temporal-stream recurrences:
 * a small set of hot streams recurs frequently while a long tail recurs
 * rarely, which is what produces the smooth coverage-vs-history-size
 * curves of the paper's commercial workloads (Fig. 5 left).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double skew);

    /** Draw one index in [0, size()). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

    /** Probability mass of index @p i. */
    double mass(std::size_t i) const;

  private:
    std::vector<double> cdf_;
};

} // namespace stms

#endif // STMS_COMMON_RNG_HH
