/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user error
 * (clean exit); warn()/inform() report status without stopping.
 */

#ifndef STMS_COMMON_LOG_HH
#define STMS_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace stms
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Format a printf-style message into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace stms

/** Abort: something happened that indicates a simulator bug. */
#define stms_panic(...) \
    ::stms::panicImpl(__FILE__, __LINE__, ::stms::logFormat(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to user error. */
#define stms_fatal(...) \
    ::stms::fatalImpl(__FILE__, __LINE__, ::stms::logFormat(__VA_ARGS__))

/** Report suspicious but survivable conditions. */
#define stms_warn(...) ::stms::warnImpl(::stms::logFormat(__VA_ARGS__))

/** Report normal operating status. */
#define stms_inform(...) ::stms::informImpl(::stms::logFormat(__VA_ARGS__))

/** Panic when a condition that must hold does not. */
#define stms_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond))                                                      \
            ::stms::panicImpl(__FILE__, __LINE__,                         \
                              ::stms::logFormat(__VA_ARGS__));            \
    } while (0)

#endif // STMS_COMMON_LOG_HH
