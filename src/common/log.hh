/**
 * @file
 * Error-reporting and logging helpers in the gem5 tradition.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user error
 * (clean exit); warn()/inform()/debug() report status without
 * stopping, gated by a process-wide LogLevel (driver flag
 * `--log-level`, default warn).
 *
 * All output goes to stderr through one serialized sink. A sticky
 * status line (the live sweep progress meter, telemetry/progress.hh)
 * renders through logStickyLine(): the sink remembers whether a
 * sticky line is on screen and erases it before any log line prints,
 * so a progress redraw can never interleave with — or be overwritten
 * by — regular logging. The meter simply redraws on its next tick.
 */

#ifndef STMS_COMMON_LOG_HH
#define STMS_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace stms
{

/** Severity gate for non-fatal log output (ordered, lower = louder). */
enum class LogLevel : int
{
    Error = 0,  ///< Only errors (panic/fatal always print).
    Warn = 1,   ///< + suspicious but survivable conditions (default).
    Info = 2,   ///< + normal operating status (store/shard summaries).
    Debug = 3,  ///< + per-run chatter (the old --verbose prints).
};

/** Process-wide log threshold (atomic; default LogLevel::Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Parse "error" | "warn" | "info" | "debug" (case-sensitive).
 *  Returns false and leaves @p out untouched on anything else. */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** Name of @p level ("warn", ...). */
const char *logLevelName(LogLevel level);

/** True when messages at @p level currently print. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/**
 * Draw (or replace) the sticky status line: erases the previous
 * sticky line, writes @p line to stderr without a trailing newline,
 * and flushes. Any later log output erases the line first, so logs
 * and the progress meter never interleave. Call logStickyDone() to
 * erase it for good (end of sweep, or before handing stderr back).
 */
void logStickyLine(const std::string &line);
void logStickyDone();

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/**
 * Serialized raw stderr write (no level prefix, no gating): the
 * escape hatch for preformatted user-facing status such as the
 * results-CLI listings, routed through the log sink so it still
 * cooperates with the sticky progress line.
 */
void logRaw(const std::string &text);

/** Format a printf-style message into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace stms

/** Abort: something happened that indicates a simulator bug. */
#define stms_panic(...) \
    ::stms::panicImpl(__FILE__, __LINE__, ::stms::logFormat(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to user error. */
#define stms_fatal(...) \
    ::stms::fatalImpl(__FILE__, __LINE__, ::stms::logFormat(__VA_ARGS__))

/** Report suspicious but survivable conditions (LogLevel::Warn). */
#define stms_warn(...)                                                \
    do {                                                              \
        if (::stms::logEnabled(::stms::LogLevel::Warn))               \
            ::stms::warnImpl(::stms::logFormat(__VA_ARGS__));         \
    } while (0)

/** Report normal operating status (LogLevel::Info). */
#define stms_inform(...)                                              \
    do {                                                              \
        if (::stms::logEnabled(::stms::LogLevel::Info))               \
            ::stms::informImpl(::stms::logFormat(__VA_ARGS__));       \
    } while (0)

/** Report per-run chatter (LogLevel::Debug; the old --verbose). */
#define stms_debug(...)                                               \
    do {                                                              \
        if (::stms::logEnabled(::stms::LogLevel::Debug))              \
            ::stms::debugImpl(::stms::logFormat(__VA_ARGS__));        \
    } while (0)

/** Panic when a condition that must hold does not. */
#define stms_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond))                                                      \
            ::stms::panicImpl(__FILE__, __LINE__,                         \
                              ::stms::logFormat(__VA_ARGS__));            \
    } while (0)

#endif // STMS_COMMON_LOG_HH
