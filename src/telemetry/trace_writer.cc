#include "telemetry/trace_writer.hh"

#include <algorithm>
#include <cstdio>

#include "results/json.hh"
#include "results/store.hh"

namespace stms::telemetry
{

namespace
{

std::atomic<TraceSink *> g_sink{nullptr};

/** Bumped once per TraceSink so a thread-local registration cached
 *  against a destroyed sink can never alias a new sink that happens
 *  to be allocated at the same address. */
std::atomic<std::uint64_t> g_generation{0};

struct TlsRegistration
{
    TraceSink *sink = nullptr;
    std::uint64_t generation = 0;
    void *buffer = nullptr;
};

thread_local TlsRegistration t_registration;

} // namespace

TraceSink *
traceSink()
{
    // Relaxed is the zero-cost-when-disabled contract: this load sits
    // on every instrumentation site. Safe because the CLI installs
    // the sink before the runner creates worker threads (thread
    // creation is the happens-before edge publishing the TraceSink)
    // and clears it only after execute() has joined them — no thread
    // can observe a half-constructed or destroyed sink.
    return g_sink.load(std::memory_order_relaxed);
}

void
installTraceSink(TraceSink *sink)
{
    g_sink.store(sink, std::memory_order_release);
}

TraceSink::TraceSink(std::string path)
    : path_(std::move(path)),
      // Relaxed: pure unique-ID allocation — nothing is published
      // through the counter, uniqueness is all that matters.
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_(std::chrono::steady_clock::now())
{
}

TraceSink::~TraceSink()
{
    // Never uninstalls itself: the owner clears the global pointer
    // (and joins emitting threads) before destruction.
}

std::uint64_t
TraceSink::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

TraceSink::ThreadBuffer &
TraceSink::local()
{
    if (t_registration.sink != this ||
        t_registration.generation != generation_) {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::make_unique<ThreadBuffer>());
        ThreadBuffer *buffer = buffers_.back().get();
        buffer->tid = static_cast<std::uint32_t>(buffers_.size());
        t_registration = {this, generation_, buffer};
    }
    return *static_cast<ThreadBuffer *>(t_registration.buffer);
}

void
TraceSink::span(const char *cat, const char *name, std::uint64_t tsUs,
                std::uint64_t durUs, std::string id)
{
    ThreadBuffer &buffer = local();
    TraceEvent event;
    event.phase = TraceEvent::Phase::Complete;
    event.tid = buffer.tid;
    event.tsUs = tsUs;
    event.durUs = durUs;
    event.cat = cat;
    event.name = name;
    event.arg = std::move(id);
    buffer.events.push_back(std::move(event));
    buffer.published.store(buffer.events.size(),
                           std::memory_order_relaxed);
}

void
TraceSink::counter(const char *track, double value)
{
    ThreadBuffer &buffer = local();
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.tid = buffer.tid;
    event.tsUs = nowUs();
    event.value = value;
    event.cat = "counter";
    event.name = track;
    buffer.events.push_back(std::move(event));
    buffer.published.store(buffer.events.size(),
                           std::memory_order_relaxed);
}

void
TraceSink::asyncBegin(const char *cat, std::uint64_t id,
                      std::string name)
{
    ThreadBuffer &buffer = local();
    TraceEvent event;
    event.phase = TraceEvent::Phase::AsyncBegin;
    event.tid = buffer.tid;
    event.tsUs = nowUs();
    event.asyncId = id;
    event.cat = cat;
    event.name = std::move(name);
    buffer.events.push_back(std::move(event));
    buffer.published.store(buffer.events.size(),
                           std::memory_order_relaxed);
}

void
TraceSink::asyncEnd(const char *cat, std::uint64_t id, std::string name)
{
    ThreadBuffer &buffer = local();
    TraceEvent event;
    event.phase = TraceEvent::Phase::AsyncEnd;
    event.tid = buffer.tid;
    event.tsUs = nowUs();
    event.asyncId = id;
    event.cat = cat;
    event.name = std::move(name);
    buffer.events.push_back(std::move(event));
    buffer.published.store(buffer.events.size(),
                           std::memory_order_relaxed);
}

void
TraceSink::threadName(std::string name)
{
    ThreadBuffer &buffer = local();
    // First name wins: repeated execute() calls on one thread (the
    // driver's main thread across experiments) emit one M event.
    if (buffer.named)
        return;
    buffer.named = true;
    TraceEvent event;
    event.phase = TraceEvent::Phase::ThreadName;
    event.tid = buffer.tid;
    event.name = std::move(name);
    buffer.events.push_back(std::move(event));
    buffer.published.store(buffer.events.size(),
                           std::memory_order_relaxed);
}

void
TraceSink::flushCurrentThread()
{
    if (t_registration.sink != this ||
        t_registration.generation != generation_)
        return;
    ThreadBuffer &buffer =
        *static_cast<ThreadBuffer *>(t_registration.buffer);
    if (buffer.events.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    done_.insert(done_.end(),
                 std::make_move_iterator(buffer.events.begin()),
                 std::make_move_iterator(buffer.events.end()));
    buffer.events.clear();
    buffer.published.store(0, std::memory_order_relaxed);
}

std::size_t
TraceSink::eventCount() const
{
    // The mutex pins buffers_ (registration appends) and done_; the
    // per-buffer counts are read through their atomics because the
    // owning threads append to events without the lock.
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = done_.size();
    for (const auto &buffer : buffers_)
        count += buffer->published.load(std::memory_order_relaxed);
    return count;
}

namespace
{

void
appendQuoted(std::string &out, const std::string &text)
{
    out += '"';
    out += results::jsonEscape(text);
    out += '"';
}

} // namespace

void
TraceSink::renderEvent(const TraceEvent &event, std::string &out) const
{
    char scratch[96];
    switch (event.phase) {
      case TraceEvent::Phase::ThreadName:
        std::snprintf(scratch, sizeof(scratch),
                      "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":",
                      event.tid);
        out += scratch;
        appendQuoted(out, event.name);
        out += "}}";
        return;
      case TraceEvent::Phase::Counter:
        std::snprintf(scratch, sizeof(scratch),
                      "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
                      "\"name\":",
                      event.tid,
                      static_cast<unsigned long long>(event.tsUs));
        out += scratch;
        appendQuoted(out, event.name);
        out += ",\"args\":{\"value\":";
        out += results::jsonNumber(event.value);
        out += "}}";
        return;
      case TraceEvent::Phase::AsyncBegin:
      case TraceEvent::Phase::AsyncEnd:
        std::snprintf(scratch, sizeof(scratch),
                      "{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%llu,\"id\":\"0x%llx\",\"cat\":",
                      event.phase == TraceEvent::Phase::AsyncBegin
                          ? 'b'
                          : 'e',
                      event.tid,
                      static_cast<unsigned long long>(event.tsUs),
                      static_cast<unsigned long long>(event.asyncId));
        out += scratch;
        appendQuoted(out, event.cat);
        out += ",\"name\":";
        appendQuoted(out, event.name);
        out += "}";
        return;
      case TraceEvent::Phase::Complete:
        break;
    }
    std::snprintf(scratch, sizeof(scratch),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
                  "\"dur\":%llu,\"cat\":",
                  event.tid,
                  static_cast<unsigned long long>(event.tsUs),
                  static_cast<unsigned long long>(event.durUs));
    out += scratch;
    appendQuoted(out, event.cat);
    out += ",\"name\":";
    appendQuoted(out, event.name);
    if (!event.arg.empty()) {
        out += ",\"args\":{\"id\":";
        appendQuoted(out, event.arg);
        out += "}";
    }
    out += "}";
}

bool
TraceSink::close(std::string &error)
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return true;
        closed_ = true;
        events = std::move(done_);
        for (auto &buffer : buffers_) {
            events.insert(events.end(),
                          std::make_move_iterator(
                              buffer->events.begin()),
                          std::make_move_iterator(buffer->events.end()));
            buffer->events.clear();
            buffer->published.store(0, std::memory_order_relaxed);
        }
    }

    // Metadata first, then strict timestamp order (stable, so
    // same-timestamp events keep their per-thread append order).
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         const bool a_meta =
                             a.phase == TraceEvent::Phase::ThreadName;
                         const bool b_meta =
                             b.phase == TraceEvent::Phase::ThreadName;
                         if (a_meta != b_meta)
                             return a_meta;
                         return a.tsUs < b.tsUs;
                     });

    std::string payload;
    payload.reserve(events.size() * 96 + 128);
    payload += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0)
            payload += ",\n";
        renderEvent(events[i], payload);
    }
    payload += "\n]}\n";

    if (!results::atomicWriteFile(path_, payload)) {
        error = "failed to write trace file '" + path_ + "'";
        return false;
    }
    return true;
}

} // namespace stms::telemetry
