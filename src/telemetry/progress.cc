#include "telemetry/progress.hh"

#include <cstdio>
#include <unistd.h>

#include "common/log.hh"

namespace stms::telemetry
{

namespace
{

constexpr auto kRedrawInterval = std::chrono::milliseconds(100);

std::string
formatRate(double recordsPerSecond)
{
    char buf[32];
    if (recordsPerSecond >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2fM rec/s",
                      recordsPerSecond / 1e6);
    } else if (recordsPerSecond >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.0fk rec/s",
                      recordsPerSecond / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f rec/s",
                      recordsPerSecond);
    }
    return buf;
}

std::string
formatEta(double seconds)
{
    char buf[32];
    const long total = seconds < 0 ? 0 : static_cast<long>(seconds);
    if (total >= 3600) {
        std::snprintf(buf, sizeof(buf), "%ld:%02ld:%02ld",
                      total / 3600, (total / 60) % 60, total % 60);
    } else {
        std::snprintf(buf, sizeof(buf), "%ld:%02ld", total / 60,
                      total % 60);
    }
    return buf;
}

} // namespace

bool
progressEnabled(ProgressMode mode)
{
    switch (mode) {
      case ProgressMode::On:
        return true;
      case ProgressMode::Off:
        return false;
      case ProgressMode::Auto:
        break;
    }
    return ::isatty(::fileno(stderr)) != 0;
}

ProgressMeter::ProgressMeter(bool enabled, std::string label,
                             std::size_t totalRuns, unsigned workers)
    : enabled_(enabled), label_(std::move(label)), total_(totalRuns),
      workers_(workers == 0 ? 1 : workers),
      start_(std::chrono::steady_clock::now()), lastDraw_(start_)
{
}

ProgressMeter::~ProgressMeter()
{
    finish();
}

void
ProgressMeter::noteRun(std::uint64_t records, double acquireSeconds,
                       double simulateSeconds, double encodeSeconds)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    records_ += records;
    acquireSeconds_ += acquireSeconds;
    simulateSeconds_ += simulateSeconds;
    encodeSeconds_ += encodeSeconds;
    maybeRedraw(done_ == total_);
}

void
ProgressMeter::finish()
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return;
    finished_ = true;
    if (drawn_)
        logStickyDone();
}

std::string
ProgressMeter::formatLocked() const
{
    // Caller holds mutex_.
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate = elapsed > 0 ? records_ / elapsed : 0.0;
    const double per_run = done_ > 0 ? elapsed / done_ : 0.0;
    const double eta = per_run * (total_ > done_ ? total_ - done_ : 0);
    // Utilization: how busy each stage kept the worker pool.
    const double budget = elapsed * workers_;
    const auto util = [budget](double seconds) {
        return budget > 0 ? 100.0 * seconds / budget : 0.0;
    };
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[%s] %zu/%zu runs | %s | ETA %s | "
                  "acq %.0f%% sim %.0f%% enc %.0f%%",
                  label_.c_str(), done_, total_, formatRate(rate).c_str(),
                  formatEta(eta).c_str(), util(acquireSeconds_),
                  util(simulateSeconds_), util(encodeSeconds_));
    return buf;
}

std::string
ProgressMeter::renderLine() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return formatLocked();
}

void
ProgressMeter::maybeRedraw(bool force)
{
    // Caller holds mutex_.
    const auto now = std::chrono::steady_clock::now();
    if (!force && drawn_ && now - lastDraw_ < kRedrawInterval)
        return;
    lastDraw_ = now;
    drawn_ = true;
    logStickyLine(formatLocked());
}

} // namespace stms::telemetry
