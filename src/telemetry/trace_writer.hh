/**
 * @file
 * Perfetto/Chrome trace-event JSON exporter (`--trace-out FILE`).
 *
 * The driver installs one TraceSink per process; instrumentation
 * sites test the global pointer (one relaxed atomic load when
 * disabled — the zero-cost contract gated by bench_report.py) and
 * append events to a thread-local buffer the owning thread writes
 * without locks. Buffers are registered with the sink once per
 * thread under a mutex and flushed at run boundaries; close() merges
 * and time-sorts everything, then writes a JSON object Perfetto and
 * chrome://tracing load directly.
 *
 * Only complete spans (ph "X"), counters (ph "C"), async run spans
 * (ph "b"/"e"), and thread-name metadata (ph "M") are emitted: a
 * crash aside, the file can never contain an unterminated duration
 * event, and the CI validator checks exactly that invariant plus
 * timestamp monotonicity (docs/OBSERVABILITY.md has the schema).
 */

#ifndef STMS_TELEMETRY_TRACE_WRITER_HH
#define STMS_TELEMETRY_TRACE_WRITER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stms::telemetry
{

/** One trace-event row; which fields matter depends on phase. */
struct TraceEvent
{
    enum class Phase : std::uint8_t
    {
        Complete,    ///< ph "X": span with ts + dur.
        Counter,     ///< ph "C": one sample on a counter track.
        AsyncBegin,  ///< ph "b": run-lifecycle open (cat+id match).
        AsyncEnd,    ///< ph "e": run-lifecycle close.
        ThreadName,  ///< ph "M": names the emitting thread's track.
    };

    Phase phase = Phase::Complete;
    std::uint32_t tid = 0;
    std::uint64_t tsUs = 0;
    std::uint64_t durUs = 0;    ///< Complete only.
    double value = 0.0;         ///< Counter only.
    std::uint64_t asyncId = 0;  ///< AsyncBegin/AsyncEnd pair key.
    const char *cat = "";       ///< Static-storage category string.
    std::string name;           ///< Span / counter-track / thread name.
    std::string arg;            ///< Optional args.id payload.
};

class TraceSink
{
  public:
    explicit TraceSink(std::string path);
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Microseconds since this sink was created (steady clock, so
     *  timestamps are globally monotonic across threads). */
    std::uint64_t nowUs() const;

    /** Record a completed span on the calling thread's track. */
    void span(const char *cat, const char *name, std::uint64_t tsUs,
              std::uint64_t durUs, std::string id = {});

    /** Record one sample on counter track @p track (tracks merge by
     *  name across threads, so shared structures — queues, caches —
     *  form a single coherent series). */
    void counter(const char *track, double value);

    /** Open/close a run-lifecycle async span; @p id pairs them. */
    void asyncBegin(const char *cat, std::uint64_t id, std::string name);
    void asyncEnd(const char *cat, std::uint64_t id, std::string name);

    /** Name the calling thread's track in the trace UI. */
    void threadName(std::string name);

    /** Move the calling thread's buffered events into the shared
     *  done-list (called at run boundaries; cheap when empty). */
    void flushCurrentThread();

    /** Flush metadata, merge + sort all buffers, write the JSON
     *  file. Idempotent; returns false with @p error on I/O failure.
     *  Must be called after worker threads that emitted events have
     *  been joined (the driver closes after execute() returns). */
    bool close(std::string &error);

    const std::string &path() const { return path_; }

    /** Total events recorded so far (tests; approximate while
     *  threads are still appending). */
    std::size_t eventCount() const;

  private:
    struct ThreadBuffer
    {
        std::uint32_t tid = 0;
        bool named = false;
        std::vector<TraceEvent> events;
        /** events.size(), republished after every owner-thread append
         *  so eventCount() can read it without touching the vector
         *  the owner mutates lock-free. Relaxed is enough: the count
         *  is documented approximate; the atomic only removes the
         *  data race, it does not promise freshness. */
        std::atomic<std::size_t> published{0};
    };

    ThreadBuffer &local();
    void renderEvent(const TraceEvent &event, std::string &out) const;

    std::string path_;
    std::uint64_t generation_ = 0;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::vector<TraceEvent> done_;
    bool closed_ = false;
};

/** The process-wide sink, or nullptr when tracing is disabled. Every
 *  instrumentation site guards on this single relaxed load. */
TraceSink *traceSink();

/** Install (or clear, with nullptr) the process-wide sink. The
 *  caller keeps ownership and must clear before destroying it. */
void installTraceSink(TraceSink *sink);

/** Emit a counter sample iff tracing is enabled. */
inline void
emitCounter(const char *track, double value)
{
    if (TraceSink *sink = traceSink())
        sink->counter(track, value);
}

/**
 * RAII span: captures the start timestamp when tracing is enabled
 * and emits a Complete event on destruction. When tracing is off the
 * constructor is one atomic load and the id string is never copied.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *cat, const char *name,
               std::string_view id = {})
    {
        if (TraceSink *sink = traceSink()) {
            sink_ = sink;
            cat_ = cat;
            name_ = name;
            id_.assign(id);
            startUs_ = sink->nowUs();
        }
    }

    ~ScopedSpan()
    {
        if (sink_) {
            sink_->span(cat_, name_, startUs_,
                        sink_->nowUs() - startUs_, std::move(id_));
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceSink *sink_ = nullptr;
    const char *cat_ = "";
    const char *name_ = "";
    std::string id_;
    std::uint64_t startUs_ = 0;
};

} // namespace stms::telemetry

#endif // STMS_TELEMETRY_TRACE_WRITER_HH
