/**
 * @file
 * Live sweep progress line: runs done/total, records/sec, ETA, and
 * per-stage utilization, redrawn in place on stderr.
 *
 * Rendering goes through the log sink's sticky line
 * (common/log.hh), so regular log output and the meter can never
 * interleave: any log line erases the meter first and the meter
 * redraws on its next completion tick. Enabled only when stderr is
 * a TTY (Auto) or forced via `--progress`; when disabled every call
 * is a no-op behind one branch. This line is the seed of the
 * ROADMAP's fleet-mode streaming progress/ETA.
 */

#ifndef STMS_TELEMETRY_PROGRESS_HH
#define STMS_TELEMETRY_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace stms::telemetry
{

/** How the driver decides whether to draw the progress line. */
enum class ProgressMode
{
    Auto,  ///< Draw iff stderr is a TTY (the default).
    On,    ///< Always draw (demos, pipes that render \r).
    Off,   ///< Never draw.
};

/** True when @p mode resolves to drawing on this process's stderr. */
bool progressEnabled(ProgressMode mode);

/**
 * One sweep's meter. Construct enabled=false for a zero-cost stub
 * (every method returns immediately); otherwise each completed run
 * updates the counters and redraws at most every ~100 ms.
 * Thread-safe: workers call noteRun() concurrently.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, std::string label,
                  std::size_t totalRuns, unsigned workers);
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    /** Record one finished run and maybe redraw. */
    void noteRun(std::uint64_t records, double acquireSeconds,
                 double simulateSeconds, double encodeSeconds);

    /** Final redraw + erase (also runs on destruction). */
    void finish();

    bool enabled() const { return enabled_; }

    /** The current line text (tests render without a TTY). */
    std::string renderLine() const;

  private:
    std::string formatLocked() const;
    void maybeRedraw(bool force);

    bool enabled_ = false;
    std::string label_;
    std::size_t total_ = 0;
    unsigned workers_ = 1;

    mutable std::mutex mutex_;
    std::size_t done_ = 0;
    std::uint64_t records_ = 0;
    double acquireSeconds_ = 0.0;
    double simulateSeconds_ = 0.0;
    double encodeSeconds_ = 0.0;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastDraw_;
    bool drawn_ = false;
    bool finished_ = false;
};

} // namespace stms::telemetry

#endif // STMS_TELEMETRY_PROGRESS_HH
