#include "telemetry/sampler.hh"

#include <atomic>

namespace stms::telemetry
{

namespace
{

/** Relaxed on both sides: the CLI stores this once during argument
 *  parsing, before the runner spawns any worker thread, and thread
 *  creation is the happens-before edge that publishes the value.
 *  Workers only ever read it. The atomic exists so a hypothetical
 *  mid-run write is a benign stale read, not UB. */
std::atomic<std::uint64_t> g_sample_every{0};

} // namespace

void
EpochSampler::configure(std::uint64_t every)
{
    every_ = every;
    series_.every = every;
}

void
EpochSampler::addCounter(std::string name, Probe probe)
{
    series_.columns.push_back(std::move(name));
    probes_.push_back(std::move(probe));
}

void
EpochSampler::sample(std::uint64_t accesses, std::uint64_t cycle)
{
    SampleSeries::Row row;
    row.accesses = accesses;
    row.cycle = cycle;
    row.values.reserve(probes_.size());
    for (const Probe &probe : probes_)
        row.values.push_back(probe());
    series_.rows.push_back(std::move(row));
}

void
EpochSampler::discardRows()
{
    series_.rows.clear();
}

SampleSeries
EpochSampler::take()
{
    SampleSeries out = std::move(series_);
    series_ = SampleSeries();
    series_.every = every_;
    series_.columns = out.columns;
    return out;
}

void
setGlobalSampleEvery(std::uint64_t every)
{
    g_sample_every.store(every, std::memory_order_relaxed);
}

std::uint64_t
globalSampleEvery()
{
    return g_sample_every.load(std::memory_order_relaxed);
}

} // namespace stms::telemetry
