/**
 * @file
 * Epoch sampler: periodic snapshots of simulator counters.
 *
 * `--sample-every N` snapshots a registry of probes (coverage,
 * accuracy, MLP, MSHR/queue depths, row-buffer hit rates) every N
 * accessed cycles into a per-run time series. The series rides the
 * fingerprint-excluded `timing` conventions: it renders only under
 * the report's `timing` key (so `--no-timing` output byte-compares
 * against an uninstrumented run), never enters the result-store
 * codec, and reads counters without mutating them — epochs are a
 * pure function of the access stream, hence deterministic for fixed
 * seeds regardless of threads or pipeline mode.
 *
 * The hot-path hook lives in MemorySystem (one compare against a
 * threshold parked at "never" when disabled — the same trick as the
 * prefetcher's IssueBarrier); this file only owns the registry, the
 * series container, and the sweep-wide `--sample-every` default.
 */

#ifndef STMS_TELEMETRY_SAMPLER_HH
#define STMS_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace stms::telemetry
{

/** One run's sampled time series (column-named rows). */
struct SampleSeries
{
    /** Epoch length in accessed cycles (0 = sampling was off). */
    std::uint64_t every = 0;

    /** Probe names, in row-value order. */
    std::vector<std::string> columns;

    struct Row
    {
        std::uint64_t accesses = 0;  ///< Access count at snapshot.
        std::uint64_t cycle = 0;     ///< Simulated cycle at snapshot.
        std::vector<double> values;  ///< One per column.
    };

    std::vector<Row> rows;

    bool empty() const { return rows.empty(); }
};

/**
 * Registry of named probes plus the accumulated series. Owned by
 * CmpSystem; single-threaded like the simulator itself.
 */
class EpochSampler
{
  public:
    using Probe = std::function<double()>;

    /** Arm with an epoch length (0 disables; probes may still be
     *  registered — they are simply never read). */
    void configure(std::uint64_t every);

    bool enabled() const { return every_ != 0; }
    std::uint64_t every() const { return every_; }

    /** Register a probe; order defines the column order. */
    void addCounter(std::string name, Probe probe);

    /** Snapshot every probe into a new row. */
    void sample(std::uint64_t accesses, std::uint64_t cycle);

    /** Discard rows collected so far (warmup boundary). */
    void discardRows();

    /** Move the series out (leaves the sampler empty). */
    SampleSeries take();

    const SampleSeries &series() const { return series_; }

  private:
    std::uint64_t every_ = 0;
    std::vector<Probe> probes_;
    SampleSeries series_;
};

/** Sweep-wide default epoch (the CLI's `--sample-every`), consumed
 *  by the runner chokepoint so nested runners — perf_suite's inner
 *  sweeps included — inherit it without threading a flag through
 *  every config. 0 = disabled. Never joins Options, so it can never
 *  perturb result-store fingerprints. */
void setGlobalSampleEvery(std::uint64_t every);
std::uint64_t globalSampleEvery();

} // namespace stms::telemetry

#endif // STMS_TELEMETRY_SAMPLER_HH
