/** @file Tests of the lock-striped sharded index table: bit-identical
 *  to IndexTable for every shard count, exact per-shard stat sums,
 *  and deterministic merged stats under concurrent hammering. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hash.hh"
#include "core/index_table.hh"
#include "core/sharded_index_table.hh"

namespace stms
{
namespace
{

/** Deterministic mixed op stream: 1 update per 3 ops, lookups probe
 *  earlier keys. Sub-block offsets exercise key normalization. */
struct StreamOp
{
    Addr block;
    SeqNum seq;
    bool isUpdate;
};

std::vector<StreamOp>
makeStream(std::uint64_t ops, std::uint64_t key_space)
{
    std::vector<StreamOp> stream;
    stream.reserve(ops);
    std::uint64_t updates = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const bool is_update = i % 3 == 0;
        const std::uint64_t pick =
            is_update ? updates : mixHash64(i) % (updates + 1);
        const Addr block =
            blockAddress(mixHash64(pick) % key_space) + (i % 64);
        stream.push_back(StreamOp{block, pick, is_update});
        updates += is_update ? 1 : 0;
    }
    return stream;
}

TEST(ShardedIndexTable, BitIdenticalToIndexTableForAnyShardCount)
{
    const auto stream = makeStream(50000, 1 << 14);
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
        IndexTable reference(1 << 18, 4);
        ShardedIndexTable sharded(1 << 18, 4, shards);
        for (const StreamOp &op : stream) {
            if (op.isUpdate) {
                reference.update(op.block, HistoryPointer{1, op.seq});
                sharded.update(op.block, HistoryPointer{1, op.seq});
                continue;
            }
            const auto expect = reference.lookup(op.block);
            const auto got = sharded.lookup(op.block);
            ASSERT_EQ(expect.has_value(), got.has_value())
                << "shards=" << shards;
            if (expect) {
                EXPECT_EQ(expect->core, got->core);
                EXPECT_EQ(expect->seq, got->seq);
            }
        }
        EXPECT_TRUE(reference.stats() == sharded.stats())
            << "shards=" << shards;
        EXPECT_EQ(reference.occupancy(), sharded.occupancy())
            << "shards=" << shards;
        EXPECT_EQ(reference.footprintBytes(),
                  sharded.footprintBytes());
    }
}

TEST(ShardedIndexTable, BucketAssignmentMatchesIndexTable)
{
    IndexTable reference(1 << 16, 12);
    ShardedIndexTable sharded(1 << 16, 12, 4);
    EXPECT_EQ(sharded.numBuckets(), reference.numBuckets());
    EXPECT_EQ(sharded.numShards(), 4u);
    for (Addr i = 0; i < 4096; ++i) {
        const Addr block = blockAddress(mixHash64(i));
        const std::uint64_t bucket = sharded.bucketOf(block);
        EXPECT_EQ(bucket, reference.bucketOf(block));
        // Shard s owns every global bucket b with b % shards == s.
        EXPECT_EQ(sharded.shardOf(block), bucket % 4);
    }
}

TEST(ShardedIndexTable, ShardStatsSumExactlyToAggregate)
{
    ShardedIndexTable table(1 << 16, 12, 8);
    const auto stream = makeStream(20000, 1 << 12);
    for (const StreamOp &op : stream) {
        if (op.isUpdate)
            table.update(op.block, HistoryPointer{0, op.seq});
        else
            table.lookup(op.block);
    }
    IndexTableStats summed;
    for (std::uint32_t s = 0; s < table.numShards(); ++s)
        summed += table.shardStats(s);
    EXPECT_TRUE(summed == table.stats());
    EXPECT_EQ(table.occupancy(), table.occupancyScan());
}

TEST(ShardedIndexTable, UnboundedShardedMatchesUnsharded)
{
    IndexTable reference(0);
    ShardedIndexTable sharded(0, 12, 4);
    EXPECT_TRUE(sharded.unbounded());
    for (Addr i = 0; i < 10000; ++i) {
        const Addr block = blockAddress(mixHash64(i) % 4096);
        reference.update(block, HistoryPointer{0, i});
        sharded.update(block, HistoryPointer{0, i});
    }
    for (Addr i = 0; i < 8192; ++i) {
        const Addr block = blockAddress(i);
        const auto expect = reference.lookup(block);
        const auto got = sharded.lookup(block);
        ASSERT_EQ(expect.has_value(), got.has_value());
        if (expect) {
            EXPECT_EQ(expect->seq, got->seq);
        }
    }
    EXPECT_TRUE(reference.stats() == sharded.stats());
    EXPECT_EQ(reference.occupancy(), sharded.occupancy());
    EXPECT_EQ(reference.footprintBytes(), sharded.footprintBytes());
}

/**
 * The contention-bench determinism contract: when ops are partitioned
 * by bucket owner (all ops on one global bucket execute on one
 * thread, in stream order), the merged stats of a concurrent run are
 * bit-identical to the serial run for any thread count.
 */
TEST(ShardedIndexTable, ConcurrentBucketOwnedOpsMatchSerialExactly)
{
    const auto stream = makeStream(60000, 1 << 13);
    const std::uint64_t total_bytes = 1 << 16;

    // Serial reference.
    ShardedIndexTable serial(total_bytes, 12, 4);
    for (const StreamOp &op : stream) {
        if (op.isUpdate)
            serial.update(op.block, HistoryPointer{0, op.seq});
        else
            serial.lookup(op.block);
    }

    for (std::uint32_t threads : {2u, 4u}) {
        ShardedIndexTable table(total_bytes, 12, 4);
        std::vector<std::vector<const StreamOp *>> work(threads);
        for (const StreamOp &op : stream) {
            const std::uint64_t bucket = table.bucketOf(op.block);
            work[mixHash64(bucket) % threads].push_back(&op);
        }
        std::vector<std::thread> pool;
        for (std::uint32_t t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (const StreamOp *op : work[t]) {
                    if (op->isUpdate) {
                        table.update(op->block,
                                     HistoryPointer{0, op->seq});
                    } else {
                        table.lookup(op->block);
                    }
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
        EXPECT_TRUE(table.stats() == serial.stats())
            << "threads=" << threads;
        EXPECT_EQ(table.occupancy(), serial.occupancy());
        EXPECT_EQ(table.occupancy(), table.occupancyScan());
    }
}

TEST(ShardedIndexTable, UnevenBucketCountDealsRemainderBuckets)
{
    // 10 buckets over 4 shards: shards 0 and 1 own 3 buckets, the
    // rest own 2. Every bucket must be reachable and stable.
    ShardedIndexTable table(10 * kBlockBytes, 2, 4);
    EXPECT_EQ(table.numBuckets(), 10u);
    for (Addr i = 0; i < 1000; ++i)
        table.update(blockAddress(i), HistoryPointer{0, i});
    EXPECT_EQ(table.occupancy(), table.occupancyScan());
    EXPECT_EQ(table.occupancy(), 10u * 2u);  // Every bucket full.
    std::uint64_t hits = 0;
    for (Addr i = 0; i < 1000; ++i)
        hits += table.lookup(blockAddress(i)).has_value() ? 1 : 0;
    EXPECT_EQ(hits, 10u * 2u);  // Exactly the retained pairs hit.
}

TEST(ShardedIndexTable, ResetStatsClearsEveryShard)
{
    ShardedIndexTable table(1 << 14, 12, 4);
    for (Addr i = 0; i < 100; ++i) {
        table.update(blockAddress(i), HistoryPointer{0, i});
        table.lookup(blockAddress(i));
    }
    EXPECT_GT(table.stats().lookups, 0u);
    table.resetStats();
    EXPECT_TRUE(table.stats() == IndexTableStats{});
    // Contents survive a stats reset.
    EXPECT_GT(table.occupancy(), 0u);
}

} // namespace
} // namespace stms
