/** @file Unit tests for the on-chip bucket buffer. */

#include <gtest/gtest.h>

#include "core/bucket_buffer.hh"

namespace stms
{
namespace
{

TEST(BucketBuffer, ProbeMissThenInsertThenHit)
{
    BucketBuffer buffer(4);
    EXPECT_FALSE(buffer.probe(7));
    bool writeback = false;
    buffer.insert(7, writeback);
    EXPECT_FALSE(writeback);
    EXPECT_TRUE(buffer.probe(7));
    EXPECT_EQ(buffer.stats().hits, 1u);
    EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BucketBuffer, CleanEvictionNeedsNoWriteback)
{
    BucketBuffer buffer(2);
    bool writeback = false;
    buffer.insert(1, writeback);
    buffer.insert(2, writeback);
    buffer.insert(3, writeback);  // Evicts 1 (clean).
    EXPECT_FALSE(writeback);
    EXPECT_FALSE(buffer.probe(1));
}

TEST(BucketBuffer, DirtyEvictionSignalsWriteback)
{
    BucketBuffer buffer(2);
    bool writeback = false;
    buffer.insert(1, writeback);
    buffer.markDirty(1);
    buffer.insert(2, writeback);
    buffer.insert(3, writeback);  // Evicts dirty bucket 1.
    EXPECT_TRUE(writeback);
    EXPECT_EQ(buffer.stats().writebacks, 1u);
}

TEST(BucketBuffer, ProbeRefreshesLru)
{
    BucketBuffer buffer(2);
    bool writeback = false;
    buffer.insert(1, writeback);
    buffer.insert(2, writeback);
    EXPECT_TRUE(buffer.probe(1));  // 2 becomes LRU.
    buffer.insert(3, writeback);
    EXPECT_TRUE(buffer.probe(1));
    EXPECT_FALSE(buffer.probe(2));
}

TEST(BucketBuffer, DuplicateInsertKeepsDirtiness)
{
    BucketBuffer buffer(2);
    bool writeback = false;
    buffer.insert(5, writeback);
    buffer.markDirty(5);
    buffer.insert(5, writeback);  // Re-insert must not lose dirty bit.
    buffer.insert(6, writeback);
    buffer.insert(7, writeback);  // Evicts 5.
    EXPECT_TRUE(writeback);
}

TEST(BucketBuffer, FlushDrainsAllDirty)
{
    BucketBuffer buffer(4);
    bool writeback = false;
    for (std::uint64_t b = 0; b < 4; ++b) {
        buffer.insert(b, writeback);
        buffer.markDirty(b);
    }
    EXPECT_EQ(buffer.flush(), 4u);
    EXPECT_EQ(buffer.flush(), 0u);  // Now clean.
}

TEST(BucketBuffer, SizeBounded)
{
    BucketBuffer buffer(3);
    bool writeback = false;
    for (std::uint64_t b = 0; b < 10; ++b)
        buffer.insert(b, writeback);
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.capacity(), 3u);
}

} // namespace
} // namespace stms
