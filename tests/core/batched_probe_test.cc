/** @file Bit-equality tests of the batched index-probe API: for both
 *  IndexTable and ShardedIndexTable (shard counts {1,2,3,4,8}),
 *  bounded and unbounded, lookupBatch/updateBatch must reproduce the
 *  element-wise scalar loop exactly — results, stats, occupancy, and
 *  subsequent table state — and prefetchBatch must be architecturally
 *  inert. The software prefetch is a host-cache hint only. */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/hash.hh"
#include "core/index_table.hh"
#include "core/sharded_index_table.hh"

namespace stms
{
namespace
{

/** Deterministic probe/update mix over a keyed address space; the
 *  sub-block offsets exercise key normalization inside the batch. */
struct Workload
{
    std::vector<Addr> updateBlocks;
    std::vector<HistoryPointer> updatePointers;
    std::vector<Addr> lookupBlocks;
};

Workload
makeWorkload(std::uint64_t ops, std::uint64_t key_space)
{
    Workload load;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr block =
            blockAddress(mixHash64(i) % key_space) + (i % 64);
        load.updateBlocks.push_back(block);
        load.updatePointers.push_back(
            HistoryPointer{static_cast<CoreId>(i % 4), i});
        // Lookups revisit earlier keys (some hit) and probe fresh
        // ones (some miss).
        load.lookupBlocks.push_back(
            blockAddress(mixHash64(i / 2) % key_space) + (i % 32));
    }
    return load;
}

/** Drive @p table element-wise — the reference the batch must match. */
template <typename TableT>
std::vector<std::optional<HistoryPointer>>
runScalar(TableT &table, const Workload &load)
{
    for (std::size_t i = 0; i < load.updateBlocks.size(); ++i)
        table.update(load.updateBlocks[i], load.updatePointers[i]);
    std::vector<std::optional<HistoryPointer>> results;
    results.reserve(load.lookupBlocks.size());
    for (const Addr block : load.lookupBlocks)
        results.push_back(table.lookup(block));
    return results;
}

/** Drive @p table through the batched API on the same op stream. */
template <typename TableT>
std::vector<std::optional<HistoryPointer>>
runBatched(TableT &table, const Workload &load)
{
    table.prefetchBatch(load.updateBlocks);  // Must be inert.
    table.updateBatch(load.updateBlocks, load.updatePointers);
    std::vector<std::optional<HistoryPointer>> results(
        load.lookupBlocks.size());
    table.lookupBatch(load.lookupBlocks, results);
    return results;
}

void
expectSameResults(
    const std::vector<std::optional<HistoryPointer>> &expect,
    const std::vector<std::optional<HistoryPointer>> &got)
{
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(expect[i].has_value(), got[i].has_value())
            << "probe " << i;
        if (expect[i]) {
            EXPECT_EQ(expect[i]->core, got[i]->core) << "probe " << i;
            EXPECT_EQ(expect[i]->seq, got[i]->seq) << "probe " << i;
        }
    }
}

TEST(BatchedProbe, IndexTableBatchMatchesScalarBounded)
{
    const Workload load = makeWorkload(20000, 1 << 12);
    IndexTable scalar(1 << 17, 4);
    IndexTable batched(1 << 17, 4);
    const auto expect = runScalar(scalar, load);
    const auto got = runBatched(batched, load);
    expectSameResults(expect, got);
    EXPECT_TRUE(scalar.stats() == batched.stats());
    EXPECT_EQ(scalar.occupancy(), batched.occupancy());
    EXPECT_EQ(scalar.occupancyScan(), batched.occupancyScan());
}

TEST(BatchedProbe, IndexTableBatchMatchesScalarUnbounded)
{
    const Workload load = makeWorkload(10000, 1 << 11);
    IndexTable scalar(0);
    IndexTable batched(0);
    const auto expect = runScalar(scalar, load);
    const auto got = runBatched(batched, load);
    expectSameResults(expect, got);
    EXPECT_TRUE(scalar.stats() == batched.stats());
    EXPECT_EQ(scalar.occupancy(), batched.occupancy());
}

TEST(BatchedProbe, ShardedBatchMatchesScalarForEveryShardCount)
{
    const Workload load = makeWorkload(20000, 1 << 12);
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
        ShardedIndexTable scalar(1 << 17, 4, shards);
        ShardedIndexTable batched(1 << 17, 4, shards);
        const auto expect = runScalar(scalar, load);
        const auto got = runBatched(batched, load);
        expectSameResults(expect, got);
        EXPECT_TRUE(scalar.stats() == batched.stats())
            << "shards=" << shards;
        EXPECT_EQ(scalar.occupancy(), batched.occupancy())
            << "shards=" << shards;
        // Per-shard stats must match too: the batch routes every
        // probe to the same shard as the scalar path.
        for (std::uint32_t s = 0; s < shards; ++s) {
            EXPECT_TRUE(scalar.shardStats(s) == batched.shardStats(s))
                << "shards=" << shards << " shard=" << s;
        }
    }
}

TEST(BatchedProbe, ShardedBatchMatchesScalarUnbounded)
{
    const Workload load = makeWorkload(10000, 1 << 11);
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        ShardedIndexTable scalar(0, 12, shards);
        ShardedIndexTable batched(0, 12, shards);
        const auto expect = runScalar(scalar, load);
        const auto got = runBatched(batched, load);
        expectSameResults(expect, got);
        EXPECT_TRUE(scalar.stats() == batched.stats())
            << "shards=" << shards;
        EXPECT_EQ(scalar.occupancy(), batched.occupancy());
    }
}

TEST(BatchedProbe, BatchMatchesScalarAgainstIndexTableAcrossShards)
{
    // Transitivity check pinned end to end: sharded batched probes
    // equal the *unsharded scalar* reference for every shard count.
    const Workload load = makeWorkload(15000, 1 << 12);
    IndexTable reference(1 << 17, 4);
    const auto expect = runScalar(reference, load);
    for (std::uint32_t shards : {1u, 3u, 8u}) {
        ShardedIndexTable sharded(1 << 17, 4, shards);
        const auto got = runBatched(sharded, load);
        expectSameResults(expect, got);
        EXPECT_TRUE(reference.stats() == sharded.stats())
            << "shards=" << shards;
        EXPECT_EQ(reference.occupancy(), sharded.occupancy());
    }
}

TEST(BatchedProbe, PrefetchBatchIsArchitecturallyInert)
{
    const Workload load = makeWorkload(5000, 1 << 10);
    IndexTable plain(1 << 16, 12);
    ShardedIndexTable sharded(1 << 16, 12, 4);
    runScalar(plain, load);
    runScalar(sharded, load);
    const IndexTableStats plain_before = plain.stats();
    const IndexTableStats sharded_before = sharded.stats();
    const std::uint64_t plain_pairs = plain.occupancy();
    const std::uint64_t sharded_pairs = sharded.occupancy();

    plain.prefetchBatch(load.lookupBlocks);
    sharded.prefetchBatch(load.lookupBlocks);

    EXPECT_TRUE(plain.stats() == plain_before);
    EXPECT_TRUE(sharded.stats() == sharded_before);
    EXPECT_EQ(plain.occupancy(), plain_pairs);
    EXPECT_EQ(sharded.occupancy(), sharded_pairs);
    // LRU order untouched: the same probes still hit identically.
    IndexTable replay(1 << 16, 12);
    runScalar(replay, load);
    for (const Addr block : load.lookupBlocks) {
        EXPECT_EQ(plain.lookup(block).has_value(),
                  replay.lookup(block).has_value());
    }
}

TEST(BatchedProbe, EmptyAndTinyBatchesAreSafe)
{
    IndexTable table(1 << 14, 12);
    ShardedIndexTable sharded(1 << 14, 12, 3);
    std::vector<Addr> none;
    std::vector<std::optional<HistoryPointer>> out;
    table.lookupBatch(none, out);
    table.updateBatch(none, {});
    table.prefetchBatch(none);
    sharded.lookupBatch(none, out);
    sharded.updateBatch(none, {});
    sharded.prefetchBatch(none);

    // A batch shorter than the probe-ahead distance (prefetch windows
    // degenerate but every element still probes once).
    const std::vector<Addr> few = {blockAddress(1), blockAddress(2)};
    const std::vector<HistoryPointer> pointers = {
        HistoryPointer{0, 10}, HistoryPointer{1, 11}};
    table.updateBatch(few, pointers);
    std::vector<std::optional<HistoryPointer>> results(few.size());
    table.lookupBatch(few, results);
    ASSERT_TRUE(results[0] && results[1]);
    EXPECT_EQ(results[0]->seq, 10u);
    EXPECT_EQ(results[1]->seq, 11u);
    EXPECT_EQ(table.stats().lookups, 2u);
    EXPECT_EQ(table.stats().updates, 2u);
}

} // namespace
} // namespace stms
