/** @file Unit tests for the bucketized hash index table. */

#include <gtest/gtest.h>

#include <vector>

#include "core/index_table.hh"

namespace stms
{
namespace
{

TEST(HistoryPointer, PackUnpackRoundTrip)
{
    for (CoreId core : {0u, 1u, 3u, 255u}) {
        for (SeqNum seq : {SeqNum{0}, SeqNum{12345},
                           (SeqNum{1} << 47) + 99}) {
            HistoryPointer original{core, seq};
            HistoryPointer copy =
                HistoryPointer::unpack(original.packed());
            EXPECT_EQ(copy.core, core);
            EXPECT_EQ(copy.seq, seq);
        }
    }
}

TEST(HistoryPointer, PackedMasksSeqAtThe48BitBoundary)
{
    // Regression: packed() used to OR seq unmasked into the low 48
    // bits, so a seq >= 2^48 silently corrupted the core field.
    const SeqNum boundary = HistoryPointer::kSeqMask;  // 2^48 - 1.
    HistoryPointer original{0xabcd, boundary};
    const HistoryPointer copy =
        HistoryPointer::unpack(original.packed());
    EXPECT_EQ(copy.core, 0xabcdu);
    EXPECT_EQ(copy.seq, boundary);
}

TEST(HistoryPointerDeathTest, PackedOverflowPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    HistoryPointer overflow{3, SeqNum{1} << HistoryPointer::kSeqBits};
    EXPECT_DEATH((void)overflow.packed(), "overflows");
}

TEST(IndexTable, BoundedAndUnboundedAgreeOnSubBlockOffsets)
{
    // Regression: bounded mode hashed blockNumber(block) but tagged
    // the raw byte address, while unbounded mode keyed the raw
    // address — two addresses inside one cache block aliased
    // differently between the modes. Both now key by block number.
    IndexTable bounded(1 << 16);
    IndexTable unbounded(0);
    const Addr base = blockAddress(777);
    for (IndexTable *table : {&bounded, &unbounded}) {
        table->update(base + 7, HistoryPointer{0, 42});
        // Any byte inside the block names the same miss stream.
        auto hit = table->lookup(base + 13);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->seq, 42u);
        // The neighboring block stays a distinct key.
        EXPECT_FALSE(table->lookup(base + kBlockBytes).has_value());
        EXPECT_EQ(table->occupancy(), 1u);
    }
}

TEST(IndexTable, LiveOccupancyMatchesScanUnderChurn)
{
    // Regression: occupancy() was an O(buckets x entries) scan that
    // benches polled per interval; it is now a live counter, with the
    // scan kept as this cross-check.
    IndexTable table(1 << 10, 4);  // 16 buckets: plenty of eviction.
    for (Addr i = 0; i < 2000; ++i) {
        table.update(blockAddress(i % 300), HistoryPointer{0, i});
        if (i % 3 == 0)
            table.lookup(blockAddress(i % 150));
        if (i % 97 == 0) {
            EXPECT_EQ(table.occupancy(), table.occupancyScan());
        }
    }
    EXPECT_EQ(table.occupancy(), table.occupancyScan());
    EXPECT_GT(table.stats().replacements, 0u);
}

TEST(IndexTable, HitReshufflePreservesRelativeOrderOfUntouched)
{
    // One bucket, four slots. After touching B, the untouched pairs
    // must keep their relative age (A still oldest, then C, then D),
    // so evictions under pressure come out A first, then C.
    IndexTable table(kBlockBytes, 4);
    for (Addr i = 1; i <= 4; ++i)  // A=1 B=2 C=3 D=4; MRU: D,C,B,A.
        table.update(blockAddress(i), HistoryPointer{0, i});
    EXPECT_TRUE(table.lookup(blockAddress(2)).has_value());  // B MRU.
    table.update(blockAddress(5), HistoryPointer{0, 5});  // Evicts A.
    EXPECT_FALSE(table.lookup(blockAddress(1)).has_value());
    table.update(blockAddress(6), HistoryPointer{0, 6});  // Evicts C.
    EXPECT_FALSE(table.lookup(blockAddress(3)).has_value());
    for (Addr i : {Addr{2}, Addr{4}, Addr{5}, Addr{6}})
        EXPECT_TRUE(table.lookup(blockAddress(i)).has_value()) << i;
}

TEST(IndexTable, UpdateRefreshMovesToMruWithoutOccupancyChange)
{
    IndexTable table(kBlockBytes, 3);
    for (Addr i = 1; i <= 3; ++i)  // MRU order: 3,2,1.
        table.update(blockAddress(i), HistoryPointer{0, i});
    EXPECT_EQ(table.occupancy(), 3u);
    table.update(blockAddress(1), HistoryPointer{0, 99});  // Refresh.
    EXPECT_EQ(table.occupancy(), 3u);
    EXPECT_EQ(table.stats().inserts, 3u);
    EXPECT_EQ(table.stats().replacements, 0u);
    // 1 is now MRU (order 1,3,2): the next insert evicts 2, not 1.
    table.update(blockAddress(4), HistoryPointer{0, 4});
    EXPECT_FALSE(table.lookup(blockAddress(2)).has_value());
    auto refreshed = table.lookup(blockAddress(1));
    ASSERT_TRUE(refreshed.has_value());
    EXPECT_EQ(refreshed->seq, 99u);
    EXPECT_EQ(table.occupancy(), 3u);
}

TEST(IndexTable, UpdateThenLookup)
{
    IndexTable table(1 << 20);
    table.update(blockAddress(42), HistoryPointer{1, 7});
    auto pointer = table.lookup(blockAddress(42));
    ASSERT_TRUE(pointer.has_value());
    EXPECT_EQ(pointer->core, 1u);
    EXPECT_EQ(pointer->seq, 7u);
    EXPECT_FALSE(table.lookup(blockAddress(43)).has_value());
}

TEST(IndexTable, UpdateRefreshesPointer)
{
    IndexTable table(1 << 20);
    table.update(blockAddress(42), HistoryPointer{0, 1});
    table.update(blockAddress(42), HistoryPointer{0, 99});
    auto pointer = table.lookup(blockAddress(42));
    ASSERT_TRUE(pointer.has_value());
    EXPECT_EQ(pointer->seq, 99u);
    EXPECT_EQ(table.occupancy(), 1u);
}

TEST(IndexTable, BucketLruEvictsOldest)
{
    // One bucket only: every address collides.
    IndexTable table(kBlockBytes, /*entries_per_bucket=*/4);
    EXPECT_EQ(table.numBuckets(), 1u);
    for (Addr i = 0; i < 5; ++i)
        table.update(blockAddress(i), HistoryPointer{0, i});
    // The first-inserted (LRU) pair must be gone; the rest remain.
    EXPECT_FALSE(table.lookup(blockAddress(0)).has_value());
    for (Addr i = 1; i < 5; ++i)
        EXPECT_TRUE(table.lookup(blockAddress(i)).has_value());
    EXPECT_EQ(table.stats().replacements, 1u);
}

TEST(IndexTable, LookupRefreshesLru)
{
    IndexTable table(kBlockBytes, 2);
    table.update(blockAddress(1), HistoryPointer{0, 1});
    table.update(blockAddress(2), HistoryPointer{0, 2});
    // Touch 1 so 2 becomes LRU, then insert 3.
    EXPECT_TRUE(table.lookup(blockAddress(1)).has_value());
    table.update(blockAddress(3), HistoryPointer{0, 3});
    EXPECT_TRUE(table.lookup(blockAddress(1)).has_value());
    EXPECT_FALSE(table.lookup(blockAddress(2)).has_value());
}

TEST(IndexTable, UnboundedNeverEvicts)
{
    IndexTable table(0);
    EXPECT_TRUE(table.unbounded());
    for (Addr i = 0; i < 100000; ++i)
        table.update(blockAddress(i), HistoryPointer{0, i});
    EXPECT_EQ(table.occupancy(), 100000u);
    for (Addr i : {Addr{0}, Addr{50000}, Addr{99999}})
        EXPECT_TRUE(table.lookup(blockAddress(i)).has_value());
}

TEST(IndexTable, StatsCountHitsAndMisses)
{
    IndexTable table(1 << 16);
    table.update(blockAddress(5), HistoryPointer{0, 5});
    table.lookup(blockAddress(5));
    table.lookup(blockAddress(6));
    EXPECT_EQ(table.stats().lookups, 2u);
    EXPECT_EQ(table.stats().lookupHits, 1u);
    EXPECT_EQ(table.stats().updates, 1u);
    EXPECT_EQ(table.stats().inserts, 1u);
    table.resetStats();
    EXPECT_EQ(table.stats().lookups, 0u);
}

TEST(IndexTable, FootprintMatchesConfiguredBytes)
{
    IndexTable table(16ULL << 20);
    EXPECT_EQ(table.footprintBytes(), 16ULL << 20);
    EXPECT_EQ(table.numBuckets(), (16ULL << 20) / kBlockBytes);
}

TEST(IndexTable, HashSpreadsAcrossBuckets)
{
    IndexTable table(1 << 16, 12);  // 1024 buckets.
    std::vector<std::uint64_t> used;
    for (Addr i = 0; i < 512; ++i)
        used.push_back(table.bucketOf(blockAddress(i * 64)));
    std::sort(used.begin(), used.end());
    const auto distinct = static_cast<std::size_t>(
        std::unique(used.begin(), used.end()) - used.begin());
    // 512 balls into 1024 bins: expect ~400+ distinct bins.
    EXPECT_GT(distinct, 350u);
}

TEST(IndexTable, FullLoadKeepsHitRateForHotSet)
{
    // In-bucket LRU should retain a recently re-touched working set
    // even under heavy insertion pressure (Sec. 5.3).
    IndexTable table(1 << 14, 12);
    std::vector<Addr> hot;
    for (Addr i = 0; i < 64; ++i)
        hot.push_back(blockAddress(1000000 + i));
    for (int round = 0; round < 50; ++round) {
        for (Addr addr : hot) {
            table.update(addr, HistoryPointer{0, 1});
            table.lookup(addr);
        }
        for (Addr i = 0; i < 200; ++i) {
            table.update(
                blockAddress(static_cast<Addr>(round) * 1000 + i),
                HistoryPointer{0, 2});
        }
    }
    int hits = 0;
    for (Addr addr : hot)
        hits += table.lookup(addr).has_value() ? 1 : 0;
    EXPECT_GT(hits, 48);  // >75% of the hot set survives.
}

} // namespace
} // namespace stms
