/** @file Unit tests for the bucketized hash index table. */

#include <gtest/gtest.h>

#include <vector>

#include "core/index_table.hh"

namespace stms
{
namespace
{

TEST(HistoryPointer, PackUnpackRoundTrip)
{
    for (CoreId core : {0u, 1u, 3u, 255u}) {
        for (SeqNum seq : {SeqNum{0}, SeqNum{12345},
                           (SeqNum{1} << 47) + 99}) {
            HistoryPointer original{core, seq};
            HistoryPointer copy =
                HistoryPointer::unpack(original.packed());
            EXPECT_EQ(copy.core, core);
            EXPECT_EQ(copy.seq, seq);
        }
    }
}

TEST(IndexTable, UpdateThenLookup)
{
    IndexTable table(1 << 20);
    table.update(blockAddress(42), HistoryPointer{1, 7});
    auto pointer = table.lookup(blockAddress(42));
    ASSERT_TRUE(pointer.has_value());
    EXPECT_EQ(pointer->core, 1u);
    EXPECT_EQ(pointer->seq, 7u);
    EXPECT_FALSE(table.lookup(blockAddress(43)).has_value());
}

TEST(IndexTable, UpdateRefreshesPointer)
{
    IndexTable table(1 << 20);
    table.update(blockAddress(42), HistoryPointer{0, 1});
    table.update(blockAddress(42), HistoryPointer{0, 99});
    auto pointer = table.lookup(blockAddress(42));
    ASSERT_TRUE(pointer.has_value());
    EXPECT_EQ(pointer->seq, 99u);
    EXPECT_EQ(table.occupancy(), 1u);
}

TEST(IndexTable, BucketLruEvictsOldest)
{
    // One bucket only: every address collides.
    IndexTable table(kBlockBytes, /*entries_per_bucket=*/4);
    EXPECT_EQ(table.numBuckets(), 1u);
    for (Addr i = 0; i < 5; ++i)
        table.update(blockAddress(i), HistoryPointer{0, i});
    // The first-inserted (LRU) pair must be gone; the rest remain.
    EXPECT_FALSE(table.lookup(blockAddress(0)).has_value());
    for (Addr i = 1; i < 5; ++i)
        EXPECT_TRUE(table.lookup(blockAddress(i)).has_value());
    EXPECT_EQ(table.stats().replacements, 1u);
}

TEST(IndexTable, LookupRefreshesLru)
{
    IndexTable table(kBlockBytes, 2);
    table.update(blockAddress(1), HistoryPointer{0, 1});
    table.update(blockAddress(2), HistoryPointer{0, 2});
    // Touch 1 so 2 becomes LRU, then insert 3.
    EXPECT_TRUE(table.lookup(blockAddress(1)).has_value());
    table.update(blockAddress(3), HistoryPointer{0, 3});
    EXPECT_TRUE(table.lookup(blockAddress(1)).has_value());
    EXPECT_FALSE(table.lookup(blockAddress(2)).has_value());
}

TEST(IndexTable, UnboundedNeverEvicts)
{
    IndexTable table(0);
    EXPECT_TRUE(table.unbounded());
    for (Addr i = 0; i < 100000; ++i)
        table.update(blockAddress(i), HistoryPointer{0, i});
    EXPECT_EQ(table.occupancy(), 100000u);
    for (Addr i : {Addr{0}, Addr{50000}, Addr{99999}})
        EXPECT_TRUE(table.lookup(blockAddress(i)).has_value());
}

TEST(IndexTable, StatsCountHitsAndMisses)
{
    IndexTable table(1 << 16);
    table.update(blockAddress(5), HistoryPointer{0, 5});
    table.lookup(blockAddress(5));
    table.lookup(blockAddress(6));
    EXPECT_EQ(table.stats().lookups, 2u);
    EXPECT_EQ(table.stats().lookupHits, 1u);
    EXPECT_EQ(table.stats().updates, 1u);
    EXPECT_EQ(table.stats().inserts, 1u);
    table.resetStats();
    EXPECT_EQ(table.stats().lookups, 0u);
}

TEST(IndexTable, FootprintMatchesConfiguredBytes)
{
    IndexTable table(16ULL << 20);
    EXPECT_EQ(table.footprintBytes(), 16ULL << 20);
    EXPECT_EQ(table.numBuckets(), (16ULL << 20) / kBlockBytes);
}

TEST(IndexTable, HashSpreadsAcrossBuckets)
{
    IndexTable table(1 << 16, 12);  // 1024 buckets.
    std::vector<std::uint64_t> used;
    for (Addr i = 0; i < 512; ++i)
        used.push_back(table.bucketOf(blockAddress(i * 64)));
    std::sort(used.begin(), used.end());
    const auto distinct = static_cast<std::size_t>(
        std::unique(used.begin(), used.end()) - used.begin());
    // 512 balls into 1024 bins: expect ~400+ distinct bins.
    EXPECT_GT(distinct, 350u);
}

TEST(IndexTable, FullLoadKeepsHitRateForHotSet)
{
    // In-bucket LRU should retain a recently re-touched working set
    // even under heavy insertion pressure (Sec. 5.3).
    IndexTable table(1 << 14, 12);
    std::vector<Addr> hot;
    for (Addr i = 0; i < 64; ++i)
        hot.push_back(blockAddress(1000000 + i));
    for (int round = 0; round < 50; ++round) {
        for (Addr addr : hot) {
            table.update(addr, HistoryPointer{0, 1});
            table.lookup(addr);
        }
        for (Addr i = 0; i < 200; ++i) {
            table.update(
                blockAddress(static_cast<Addr>(round) * 1000 + i),
                HistoryPointer{0, 2});
        }
    }
    int hits = 0;
    for (Addr addr : hot)
        hits += table.lookup(addr).has_value() ? 1 : 0;
    EXPECT_GT(hits, 48);  // >75% of the hot set survives.
}

} // namespace
} // namespace stms
