/** @file Unit tests for the circular history buffer. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/history_buffer.hh"

namespace stms
{
namespace
{

TEST(HistoryBuffer, AppendAssignsMonotonicSequences)
{
    HistoryBuffer buffer(16);
    for (SeqNum expected = 0; expected < 10; ++expected)
        EXPECT_EQ(buffer.append(blockAddress(expected)), expected);
    EXPECT_EQ(buffer.head(), 10u);
}

TEST(HistoryBuffer, ReadBackWithinRetention)
{
    HistoryBuffer buffer(8);
    for (Addr i = 0; i < 8; ++i)
        buffer.append(blockAddress(100 + i));
    for (SeqNum seq = 0; seq < 8; ++seq) {
        ASSERT_TRUE(buffer.valid(seq));
        EXPECT_EQ(buffer.at(seq).block, blockAddress(100 + seq));
    }
}

TEST(HistoryBuffer, WrapInvalidatesOldEntries)
{
    HistoryBuffer buffer(4);
    for (Addr i = 0; i < 10; ++i)
        buffer.append(blockAddress(i));
    EXPECT_FALSE(buffer.valid(0));
    EXPECT_FALSE(buffer.valid(5));
    EXPECT_TRUE(buffer.valid(6));
    EXPECT_TRUE(buffer.valid(9));
    EXPECT_FALSE(buffer.valid(10));  // Not yet written.
    EXPECT_EQ(buffer.at(9).block, blockAddress(9));
}

TEST(HistoryBuffer, UnboundedKeepsEverything)
{
    HistoryBuffer buffer(0);
    EXPECT_TRUE(buffer.unbounded());
    for (Addr i = 0; i < 10000; ++i)
        buffer.append(blockAddress(i));
    EXPECT_TRUE(buffer.valid(0));
    EXPECT_EQ(buffer.at(0).block, blockAddress(0));
    EXPECT_EQ(buffer.at(9999).block, blockAddress(9999));
}

TEST(HistoryBuffer, EndMarksStickUntilOverwrite)
{
    HistoryBuffer buffer(8);
    buffer.append(blockAddress(1));
    buffer.append(blockAddress(2));
    EXPECT_FALSE(buffer.at(1).endMark);
    EXPECT_TRUE(buffer.setEndMark(1));
    EXPECT_TRUE(buffer.at(1).endMark);
    // Overwriting the slot clears the mark.
    for (Addr i = 0; i < 8; ++i)
        buffer.append(blockAddress(10 + i));
    EXPECT_FALSE(buffer.at(9).endMark);
}

TEST(HistoryBuffer, EndMarkOnInvalidSeqRejected)
{
    HistoryBuffer buffer(4);
    buffer.append(blockAddress(1));
    EXPECT_FALSE(buffer.setEndMark(5));   // Beyond head.
    for (Addr i = 0; i < 6; ++i)
        buffer.append(blockAddress(i));
    EXPECT_FALSE(buffer.setEndMark(0));   // Aged out.
}

TEST(HistoryBuffer, BlockPackingSignalsWrites)
{
    HistoryBuffer buffer(64, /*entries_per_block=*/4);
    int completed = 0;
    for (int i = 0; i < 12; ++i) {
        buffer.append(blockAddress(static_cast<Addr>(i)));
        completed += buffer.lastAppendCompletedBlock() ? 1 : 0;
    }
    EXPECT_EQ(completed, 3);  // 12 appends / 4 per block.
}

TEST(HistoryBuffer, FootprintMatchesPacking)
{
    HistoryBuffer bounded(1200, 12);
    EXPECT_EQ(bounded.footprintBytes(), 100 * kBlockBytes);
    HistoryBuffer unbounded(0, 12);
    for (int i = 0; i < 24; ++i)
        unbounded.append(blockAddress(static_cast<Addr>(i)));
    EXPECT_EQ(unbounded.footprintBytes(), 2 * kBlockBytes);
}

TEST(HistoryBuffer, ReadWindowMatchesAtAcrossWrap)
{
    HistoryBuffer buffer(8);
    for (Addr i = 0; i < 13; ++i) {  // head at 13, slots wrapped
        buffer.append(blockAddress(200 + i));
        buffer.setEndMark(i);  // mark every entry; survivors checked
    }
    // Window [6, 13) straddles the circular wrap at slot 0.
    Addr blocks[8] = {};
    std::uint8_t marks[8] = {};
    buffer.readWindow(6, 7, blocks, marks);
    for (std::uint32_t i = 0; i < 7; ++i) {
        EXPECT_EQ(blocks[i], buffer.at(6 + i).block);
        EXPECT_EQ(marks[i] != 0, buffer.at(6 + i).endMark);
    }
}

TEST(HistoryBuffer, ReadWindowUnbounded)
{
    HistoryBuffer buffer(0);
    for (Addr i = 0; i < 5000; ++i)
        buffer.append(blockAddress(i));
    std::vector<Addr> blocks(4096);
    std::vector<std::uint8_t> marks(4096);
    buffer.readWindow(100, 4096, blocks.data(), marks.data());
    for (std::uint32_t i = 0; i < 4096; ++i)
        EXPECT_EQ(blocks[i], blockAddress(100 + i));
}

TEST(HistoryBuffer, ScanWindowFindsFirstOccurrence)
{
    HistoryBuffer buffer(16);
    for (Addr i = 0; i < 10; ++i)
        buffer.append(blockAddress(i % 4));  // duplicates everywhere
    // Earliest occurrence at or after `first` wins.
    EXPECT_EQ(buffer.scanWindow(0, blockAddress(2)), 2u);
    EXPECT_EQ(buffer.scanWindow(3, blockAddress(2)), 6u);
    EXPECT_EQ(buffer.scanWindow(7, blockAddress(2)), kInvalidSeq);
    EXPECT_EQ(buffer.scanWindow(0, blockAddress(99)), kInvalidSeq);
    // Scanning from head is legal and empty.
    EXPECT_EQ(buffer.scanWindow(buffer.head(), blockAddress(0)),
              kInvalidSeq);
}

TEST(HistoryBuffer, ScanWindowAcrossWrapMatchesLinearScan)
{
    HistoryBuffer buffer(8);
    for (Addr i = 0; i < 21; ++i)
        buffer.append(blockAddress(i % 5));
    const SeqNum oldest = buffer.head() - 8;
    for (Addr key = 0; key < 6; ++key) {
        // Reference: scalar walk via at().
        SeqNum expected = kInvalidSeq;
        for (SeqNum seq = oldest; seq < buffer.head(); ++seq) {
            if (buffer.at(seq).block == blockAddress(key)) {
                expected = seq;
                break;
            }
        }
        EXPECT_EQ(buffer.scanWindow(oldest, blockAddress(key)),
                  expected);
    }
}

TEST(HistoryBufferDeath, ReadingInvalidSeqPanics)
{
    HistoryBuffer buffer(4);
    buffer.append(blockAddress(1));
    EXPECT_DEATH(buffer.at(3), "invalid seq");
}

TEST(HistoryBufferDeath, WindowOutsideRetentionPanics)
{
    HistoryBuffer buffer(4);
    for (Addr i = 0; i < 6; ++i)
        buffer.append(blockAddress(i));
    Addr blocks[4];
    std::uint8_t marks[4];
    EXPECT_DEATH(buffer.readWindow(0, 2, blocks, marks),
                 "outside retained log");
    EXPECT_DEATH(buffer.readWindow(4, 4, blocks, marks),
                 "outside retained log");
}

} // namespace
} // namespace stms
