/** @file Unit tests for the circular history buffer. */

#include <gtest/gtest.h>

#include "core/history_buffer.hh"

namespace stms
{
namespace
{

TEST(HistoryBuffer, AppendAssignsMonotonicSequences)
{
    HistoryBuffer buffer(16);
    for (SeqNum expected = 0; expected < 10; ++expected)
        EXPECT_EQ(buffer.append(blockAddress(expected)), expected);
    EXPECT_EQ(buffer.head(), 10u);
}

TEST(HistoryBuffer, ReadBackWithinRetention)
{
    HistoryBuffer buffer(8);
    for (Addr i = 0; i < 8; ++i)
        buffer.append(blockAddress(100 + i));
    for (SeqNum seq = 0; seq < 8; ++seq) {
        ASSERT_TRUE(buffer.valid(seq));
        EXPECT_EQ(buffer.at(seq).block, blockAddress(100 + seq));
    }
}

TEST(HistoryBuffer, WrapInvalidatesOldEntries)
{
    HistoryBuffer buffer(4);
    for (Addr i = 0; i < 10; ++i)
        buffer.append(blockAddress(i));
    EXPECT_FALSE(buffer.valid(0));
    EXPECT_FALSE(buffer.valid(5));
    EXPECT_TRUE(buffer.valid(6));
    EXPECT_TRUE(buffer.valid(9));
    EXPECT_FALSE(buffer.valid(10));  // Not yet written.
    EXPECT_EQ(buffer.at(9).block, blockAddress(9));
}

TEST(HistoryBuffer, UnboundedKeepsEverything)
{
    HistoryBuffer buffer(0);
    EXPECT_TRUE(buffer.unbounded());
    for (Addr i = 0; i < 10000; ++i)
        buffer.append(blockAddress(i));
    EXPECT_TRUE(buffer.valid(0));
    EXPECT_EQ(buffer.at(0).block, blockAddress(0));
    EXPECT_EQ(buffer.at(9999).block, blockAddress(9999));
}

TEST(HistoryBuffer, EndMarksStickUntilOverwrite)
{
    HistoryBuffer buffer(8);
    buffer.append(blockAddress(1));
    buffer.append(blockAddress(2));
    EXPECT_FALSE(buffer.at(1).endMark);
    EXPECT_TRUE(buffer.setEndMark(1));
    EXPECT_TRUE(buffer.at(1).endMark);
    // Overwriting the slot clears the mark.
    for (Addr i = 0; i < 8; ++i)
        buffer.append(blockAddress(10 + i));
    EXPECT_FALSE(buffer.at(9).endMark);
}

TEST(HistoryBuffer, EndMarkOnInvalidSeqRejected)
{
    HistoryBuffer buffer(4);
    buffer.append(blockAddress(1));
    EXPECT_FALSE(buffer.setEndMark(5));   // Beyond head.
    for (Addr i = 0; i < 6; ++i)
        buffer.append(blockAddress(i));
    EXPECT_FALSE(buffer.setEndMark(0));   // Aged out.
}

TEST(HistoryBuffer, BlockPackingSignalsWrites)
{
    HistoryBuffer buffer(64, /*entries_per_block=*/4);
    int completed = 0;
    for (int i = 0; i < 12; ++i) {
        buffer.append(blockAddress(static_cast<Addr>(i)));
        completed += buffer.lastAppendCompletedBlock() ? 1 : 0;
    }
    EXPECT_EQ(completed, 3);  // 12 appends / 4 per block.
}

TEST(HistoryBuffer, FootprintMatchesPacking)
{
    HistoryBuffer bounded(1200, 12);
    EXPECT_EQ(bounded.footprintBytes(), 100 * kBlockBytes);
    HistoryBuffer unbounded(0, 12);
    for (int i = 0; i < 24; ++i)
        unbounded.append(blockAddress(static_cast<Addr>(i)));
    EXPECT_EQ(unbounded.footprintBytes(), 2 * kBlockBytes);
}

TEST(HistoryBufferDeath, ReadingInvalidSeqPanics)
{
    HistoryBuffer buffer(4);
    buffer.append(blockAddress(1));
    EXPECT_DEATH(buffer.at(3), "invalid seq");
}

} // namespace
} // namespace stms
