/** @file Unit and statistical tests for the probabilistic sampler. */

#include <gtest/gtest.h>

#include "core/sampler.hh"

namespace stms
{
namespace
{

TEST(Sampler, AlwaysAndNever)
{
    UpdateSampler always(1.0);
    UpdateSampler never(0.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always.shouldUpdate());
        EXPECT_FALSE(never.shouldUpdate());
    }
    EXPECT_DOUBLE_EQ(always.observedRate(), 1.0);
    EXPECT_DOUBLE_EQ(never.observedRate(), 0.0);
}

class SamplerRates : public ::testing::TestWithParam<double>
{
};

TEST_P(SamplerRates, ObservedRateConvergesToProbability)
{
    const double p = GetParam();
    UpdateSampler sampler(p, 1234);
    constexpr int trials = 200000;
    for (int i = 0; i < trials; ++i)
        sampler.shouldUpdate();
    EXPECT_EQ(sampler.offered(), static_cast<std::uint64_t>(trials));
    EXPECT_NEAR(sampler.observedRate(), p, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SamplerRates,
                         ::testing::Values(0.01, 0.0625, 0.125, 0.25,
                                           0.5, 0.9));

TEST(Sampler, DeterministicForSeed)
{
    UpdateSampler a(0.125, 42), b(0.125, 42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.shouldUpdate(), b.shouldUpdate());
}

TEST(Sampler, ResetClearsCountsOnly)
{
    UpdateSampler sampler(0.5, 7);
    for (int i = 0; i < 100; ++i)
        sampler.shouldUpdate();
    sampler.resetStats();
    EXPECT_EQ(sampler.offered(), 0u);
    EXPECT_EQ(sampler.taken(), 0u);
    EXPECT_DOUBLE_EQ(sampler.probability(), 0.5);
}

TEST(SamplerDeath, RejectsOutOfRangeProbability)
{
    EXPECT_DEATH(UpdateSampler(-0.1), "out of");
    EXPECT_DEATH(UpdateSampler(1.5), "out of");
}

} // namespace
} // namespace stms
