/** @file Unit tests for the STMS prefetcher driven through a scripted
 *  port (no simulator in the loop). */

#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <vector>

#include "core/stms.hh"

namespace stms
{
namespace
{

/** Scripted environment: records prefetches, optionally delays
 *  meta-data completions until released. */
class ScriptedPort : public PrefetchPort
{
  public:
    IssueResult
    issuePrefetch(Prefetcher &, CoreId, Addr block) override
    {
        issued.push_back(block);
        return IssueResult::Issued;
    }

    void
    metaRequest(TrafficClass cls, Addr, std::uint32_t blocks,
                TimedCallback done) override
    {
        metaBlocks[static_cast<std::size_t>(cls)] += blocks;
        ++metaRequests;
        if (!done)
            return;
        if (delayMeta)
            pending.push_back(std::move(done));
        else
            done(now_);
    }

    Cycle now() const override { return now_; }
    std::uint32_t prefetchRoom(const Prefetcher &,
                               CoreId) const override
    {
        return room;
    }

    /** Complete the oldest delayed meta request. */
    void
    releaseOne()
    {
        ASSERT_FALSE(pending.empty());
        auto done = std::move(pending.front());
        pending.pop_front();
        done(now_);
    }

    std::vector<Addr> issued;
    std::array<std::uint64_t, kNumTrafficClasses> metaBlocks{};
    std::uint64_t metaRequests = 0;
    std::deque<TimedCallback> pending;
    bool delayMeta = false;
    std::uint32_t room = 16;
    Cycle now_ = 0;
};

StmsConfig
unitConfig()
{
    StmsConfig config;
    config.samplingProbability = 1.0;  // Deterministic updates.
    config.historyEntriesPerCore = 1024;
    config.indexBytes = 1 << 16;
    config.streamsPerCore = 2;
    return config;
}

/** Feed a miss sequence (uncovered misses). */
void
misses(StmsPrefetcher &stms, std::initializer_list<Addr> blocks,
       CoreId core = 0)
{
    for (Addr block : blocks)
        stms.onOffchipRead(core, blockAddress(block));
}

TEST(Stms, RecurringSequenceGetsStreamed)
{
    ScriptedPort port;
    StmsPrefetcher stms(unitConfig());
    stms.attach(port, 1, 0);

    misses(stms, {1, 2, 3, 4, 5});       // First occurrence: learn.
    port.issued.clear();
    misses(stms, {1});                    // Recurrence: trigger.
    // The stream engine must prefetch the successors of 1.
    ASSERT_GE(port.issued.size(), 4u);
    EXPECT_EQ(port.issued[0], blockAddress(2));
    EXPECT_EQ(port.issued[1], blockAddress(3));
    EXPECT_EQ(stms.stats().lookupHits, 1u);
    EXPECT_EQ(stms.stats().streamsStarted, 1u);
}

TEST(Stms, ConsumptionPumpsFurtherPrefetches)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.rampBase = 2;
    config.rampStep = 1;
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);

    Addr first[12];
    for (Addr i = 0; i < 12; ++i)
        first[i] = i + 1;
    misses(stms, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
    port.issued.clear();
    misses(stms, {1});
    const std::size_t initial = port.issued.size();
    EXPECT_LE(initial, 2u);  // Ramp limits the fresh stream.
    // Consume a prefetched block: window widens, more issue.
    stms.onPrefetchUsed(0, blockAddress(2), false);
    EXPECT_GT(port.issued.size(), initial);
    EXPECT_GT(stms.stats().consumed, 0u);
    (void)first;
}

TEST(Stms, SamplingZeroNeverIndexes)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.samplingProbability = 0.0;
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);
    misses(stms, {1, 2, 3, 1, 2, 3, 1, 2, 3});
    EXPECT_EQ(stms.stats().lookupHits, 0u);
    EXPECT_TRUE(port.issued.empty());
    EXPECT_EQ(stms.indexTable().occupancy(), 0u);
}

TEST(Stms, IndexShardingIsInvisibleToTheModel)
{
    // The sharded index table partitions locks, not buckets: the same
    // miss sequence must produce identical prefetches and stats for
    // every shard count (asserted bit-exactly here, gated in CI).
    std::vector<Addr> sequence;
    for (Addr round = 0; round < 3; ++round)
        for (Addr i = 0; i < 64; ++i)
            sequence.push_back((i * 37 + round) % 64 + 1);

    auto run = [&](std::uint32_t shards) {
        ScriptedPort port;
        StmsConfig config = unitConfig();
        config.indexShards = shards;
        StmsPrefetcher stms(config);
        stms.attach(port, 1, 0);
        for (Addr block : sequence)
            stms.onOffchipRead(0, blockAddress(block));
        return std::make_tuple(port.issued, stms.stats().lookupHits,
                               stms.stats().streamsStarted,
                               stms.indexTable().occupancy());
    };

    const auto reference = run(1);
    EXPECT_EQ(std::get<3>(reference),
              std::get<3>(run(1)));  // Self-consistent.
    for (std::uint32_t shards : {2u, 4u, 8u})
        EXPECT_TRUE(reference == run(shards)) << "shards=" << shards;
}

TEST(Stms, OffchipLookupCostsOneBlockReadEach)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.bucketBufferBuckets = 1;  // Effectively no buffering.
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);
    misses(stms, {10, 20, 30});
    // Each miss looked up the index: >= 3 MetaLookup block reads
    // (bucket reads; history reads would add more on hits).
    EXPECT_GE(port.metaBlocks[static_cast<std::size_t>(
                  TrafficClass::MetaLookup)],
              3u);
}

TEST(Stms, IdealModeGeneratesNoMetaTraffic)
{
    ScriptedPort port;
    StmsPrefetcher stms(makeIdealTmsConfig());
    stms.attach(port, 1, 0);
    misses(stms, {1, 2, 3, 4, 1, 2, 3, 4});
    EXPECT_EQ(port.metaRequests, 0u);
    EXPECT_FALSE(port.issued.empty());  // Still prefetches data.
}

TEST(Stms, HistoryRecordTrafficIsPacked)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.samplingProbability = 0.0;  // Isolate record traffic.
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);
    for (Addr i = 0; i < 120; ++i)
        stms.onOffchipRead(0, blockAddress(1000 + i));
    // One block write per 12 logged misses.
    EXPECT_EQ(port.metaBlocks[static_cast<std::size_t>(
                  TrafficClass::MetaRecord)],
              10u);
}

TEST(Stms, LookupLatencyDelaysStreamStart)
{
    ScriptedPort port;
    port.delayMeta = true;
    StmsConfig config = unitConfig();
    config.bucketBufferBuckets = 1;
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);

    misses(stms, {1, 2, 3, 4});
    // Drain the learning misses' lookups so the pipe is free.
    while (!port.pending.empty())
        port.releaseOne();
    port.issued.clear();
    misses(stms, {1});
    EXPECT_TRUE(port.issued.empty());  // Bucket read in flight.
    // Release the bucket read, then the history read.
    while (!port.pending.empty())
        port.releaseOne();
    EXPECT_FALSE(port.issued.empty());
}

TEST(Stms, CrossCoreStreamLocatedThroughSharedIndex)
{
    ScriptedPort port;
    StmsPrefetcher stms(unitConfig());
    stms.attach(port, 2, 0);
    // Core 0 records the sequence.
    misses(stms, {1, 2, 3, 4, 5}, /*core=*/0);
    port.issued.clear();
    // Core 1 misses on the same trigger: the shared index table must
    // locate core 0's history and stream it to core 1.
    misses(stms, {1}, /*core=*/1);
    ASSERT_GE(port.issued.size(), 2u);
    EXPECT_EQ(port.issued[0], blockAddress(2));
}

TEST(Stms, KillViaUnusedStreakWritesEndMark)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.killThreshold = 2;
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);

    misses(stms, {1, 2, 3, 4, 5, 6});
    port.issued.clear();
    misses(stms, {1});                 // Stream starts: issues 2,3,...
    stms.onPrefetchUsed(0, blockAddress(2), false);
    // Kill the stream via two unused evictions -> end mark after 2.
    stms.onPrefetchUnused(0, blockAddress(3));
    stms.onPrefetchUnused(0, blockAddress(4));
    EXPECT_GE(stms.stats().endMarksWritten, 1u);
    EXPECT_GE(stms.stats().streamsEnded, 1u);
    // The annotation sits on the entry after the last consumed one.
    EXPECT_TRUE(stms.historyBuffer(0).at(2).endMark);
}

TEST(Stms, EndMarkPausesAndExplicitRequestResumes)
{
    ScriptedPort port;
    StmsPrefetcher stms(unitConfig());
    stms.attach(port, 1, 0);

    misses(stms, {1, 2, 3, 4, 5, 6});
    // Annotate the entry holding block 3 (seq 2) as a stream end.
    ASSERT_TRUE(stms.historyBufferMutable(0).setEndMark(2));

    port.issued.clear();
    misses(stms, {1});  // Lookup precedes logging: points at seq 0.
    // The engine prefetches 2 and pauses at the annotated entry (3).
    EXPECT_GE(stms.stats().pauses, 1u);
    ASSERT_EQ(port.issued.size(), 1u);
    EXPECT_EQ(port.issued[0], blockAddress(2));

    // Explicitly demanding the annotated address resumes streaming.
    misses(stms, {3});
    EXPECT_GE(stms.stats().resumes, 1u);
    EXPECT_GE(port.issued.size(), 3u);  // 4, 5, ... follow.
}

TEST(Stms, StaleIndexPointerDetected)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.historyEntriesPerCore = 8;  // Tiny retention.
    StmsPrefetcher stms(config);
    stms.attach(port, 1, 0);
    misses(stms, {1, 2, 3});
    // Push the trigger's entry out of the retention window.
    for (Addr i = 0; i < 16; ++i)
        stms.onOffchipRead(0, blockAddress(100 + i));
    port.issued.clear();
    misses(stms, {1});
    EXPECT_GE(stms.stats().stalePointers, 1u);
}

TEST(Stms, SharedHistoryAblationUsesOneBuffer)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.sharedHistory = true;
    StmsPrefetcher stms(config);
    stms.attach(port, 4, 0);
    misses(stms, {1, 2}, 0);
    misses(stms, {3, 4}, 3);
    // All four appends landed in the single shared buffer.
    EXPECT_EQ(stms.historyBuffer(0).head(), 4u);
    EXPECT_EQ(stms.historyBuffer(3).head(), 4u);
}

TEST(Stms, MetaFootprintCountsIndexAndHistory)
{
    ScriptedPort port;
    StmsConfig config = unitConfig();
    config.indexBytes = 1 << 16;
    config.historyEntriesPerCore = 1200;
    StmsPrefetcher stms(config);
    stms.attach(port, 2, 0);
    // index + 2 cores x ceil(1200/12) blocks.
    EXPECT_EQ(stms.metaFootprintBytes(),
              (1ULL << 16) + 2 * 100 * kBlockBytes);
}

TEST(Stms, ResetStatsPreservesLearnedState)
{
    ScriptedPort port;
    StmsPrefetcher stms(unitConfig());
    stms.attach(port, 1, 0);
    misses(stms, {1, 2, 3, 4});
    stms.resetStats();
    EXPECT_EQ(stms.stats().logged, 0u);
    port.issued.clear();
    misses(stms, {1});  // Learned index survives the reset.
    EXPECT_FALSE(port.issued.empty());
}

} // namespace
} // namespace stms
