/** @file Unit tests for the Markov (pair-wise) prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/markov.hh"

namespace stms
{
namespace
{

class RecordingPort : public PrefetchPort
{
  public:
    IssueResult
    issuePrefetch(Prefetcher &, CoreId, Addr block) override
    {
        issued.push_back(block);
        return IssueResult::Issued;
    }
    void metaRequest(TrafficClass, Addr, std::uint32_t,
                     TimedCallback done) override
    {
        if (done)
            done(0);
    }
    Cycle now() const override { return 0; }
    std::uint32_t prefetchRoom(const Prefetcher &,
                               CoreId) const override
    {
        return 16;
    }

    std::vector<Addr> issued;
};

TEST(Markov, LearnsPairwiseSuccessor)
{
    RecordingPort port;
    MarkovPrefetcher markov;
    markov.attach(port, 1, 0);
    const Addr a = blockAddress(10), b = blockAddress(999);
    markov.onOffchipRead(0, a);
    markov.onOffchipRead(0, b);  // Learn A -> B.
    port.issued.clear();
    markov.onOffchipRead(0, a);  // Trigger on A again.
    ASSERT_EQ(port.issued.size(), 1u);
    EXPECT_EQ(port.issued[0], b);
}

TEST(Markov, TracksMultipleSuccessorsMruFirst)
{
    RecordingPort port;
    MarkovConfig config;
    config.successors = 2;
    MarkovPrefetcher markov(config);
    markov.attach(port, 1, 0);
    const Addr a = blockAddress(10);
    const Addr b = blockAddress(20), c = blockAddress(30);
    markov.onOffchipRead(0, a);
    markov.onOffchipRead(0, b);  // A -> B
    markov.onOffchipRead(0, a);
    markov.onOffchipRead(0, c);  // A -> C (now MRU)
    port.issued.clear();
    markov.onOffchipRead(0, a);
    ASSERT_EQ(port.issued.size(), 2u);
    EXPECT_EQ(port.issued[0], c);
    EXPECT_EQ(port.issued[1], b);
}

TEST(Markov, SuccessorListCapacityBounded)
{
    RecordingPort port;
    MarkovConfig config;
    config.successors = 2;
    MarkovPrefetcher markov(config);
    markov.attach(port, 1, 0);
    const Addr a = blockAddress(10);
    for (int i = 1; i <= 5; ++i) {
        markov.onOffchipRead(0, a);
        markov.onOffchipRead(0, blockAddress(100 + i));
    }
    port.issued.clear();
    markov.onOffchipRead(0, a);
    EXPECT_EQ(port.issued.size(), 2u);  // Only 2 retained.
}

TEST(Markov, PerCoreMissChains)
{
    RecordingPort port;
    MarkovPrefetcher markov;
    markov.attach(port, 2, 0);
    // Core 0 sees A then B; core 1 sees C in between — per-core
    // chaining must learn A->B, not A->C or C->B.
    markov.onOffchipRead(0, blockAddress(1));
    markov.onOffchipRead(1, blockAddress(50));
    markov.onOffchipRead(0, blockAddress(2));
    port.issued.clear();
    markov.onOffchipRead(0, blockAddress(1));
    ASSERT_GE(port.issued.size(), 1u);
    EXPECT_EQ(port.issued[0], blockAddress(2));
}

TEST(Markov, HitRateStatsAccumulate)
{
    RecordingPort port;
    MarkovPrefetcher markov;
    markov.attach(port, 1, 0);
    markov.onOffchipRead(0, blockAddress(1));
    markov.onOffchipRead(0, blockAddress(2));
    markov.onOffchipRead(0, blockAddress(1));
    EXPECT_EQ(markov.lookups(), 3u);
    EXPECT_EQ(markov.hits(), 1u);
    markov.resetStats();
    EXPECT_EQ(markov.lookups(), 0u);
}

TEST(Markov, TableEvictsLruTriggers)
{
    RecordingPort port;
    MarkovConfig config;
    config.tableEntries = 8;  // Tiny table: 2 sets x 4 ways.
    config.ways = 4;
    MarkovPrefetcher markov(config);
    markov.attach(port, 1, 0);
    // Train many triggers; early ones must age out without crashing.
    for (int i = 0; i < 100; ++i) {
        markov.onOffchipRead(0, blockAddress(1000 + 2 * i));
        markov.onOffchipRead(0, blockAddress(1001 + 2 * i));
    }
    SUCCEED();
}

} // namespace
} // namespace stms
