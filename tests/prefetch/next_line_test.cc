/** @file Unit tests for the next-line prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/next_line.hh"

namespace stms
{
namespace
{

class RecordingPort : public PrefetchPort
{
  public:
    IssueResult
    issuePrefetch(Prefetcher &, CoreId, Addr block) override
    {
        issued.push_back(block);
        return IssueResult::Issued;
    }
    void metaRequest(TrafficClass, Addr, std::uint32_t,
                     TimedCallback done) override
    {
        if (done)
            done(0);
    }
    Cycle now() const override { return 0; }
    std::uint32_t prefetchRoom(const Prefetcher &,
                               CoreId) const override
    {
        return 16;
    }

    std::vector<Addr> issued;
};

TEST(NextLine, FetchesSuccessorBlock)
{
    RecordingPort port;
    NextLinePrefetcher pf;
    pf.attach(port, 1, 0);
    pf.onOffchipRead(0, 0x1000);
    ASSERT_EQ(port.issued.size(), 1u);
    EXPECT_EQ(port.issued[0], 0x1000u + kBlockBytes);
}

TEST(NextLine, DegreeControlsRunAhead)
{
    RecordingPort port;
    NextLineConfig config;
    config.degree = 4;
    NextLinePrefetcher pf(config);
    pf.attach(port, 1, 0);
    pf.onOffchipRead(0, blockAddress(100));
    ASSERT_EQ(port.issued.size(), 4u);
    for (std::uint32_t d = 0; d < 4; ++d)
        EXPECT_EQ(port.issued[d], blockAddress(101 + d));
}

TEST(NextLine, SubBlockAddressesAlignFirst)
{
    RecordingPort port;
    NextLinePrefetcher pf;
    pf.attach(port, 1, 0);
    pf.onOffchipRead(0, 0x1038);  // Mid-block.
    ASSERT_EQ(port.issued.size(), 1u);
    EXPECT_EQ(port.issued[0], 0x1040u);
}

TEST(NextLine, CountsTriggers)
{
    RecordingPort port;
    NextLinePrefetcher pf;
    pf.attach(port, 1, 0);
    for (int i = 0; i < 5; ++i)
        pf.onOffchipRead(0, blockAddress(static_cast<Addr>(i * 10)));
    EXPECT_EQ(pf.triggered(), 5u);
    pf.resetStats();
    EXPECT_EQ(pf.triggered(), 0u);
}

} // namespace
} // namespace stms
